/root/repo/target/release/deps/table2_specs-05746f217f2ba6b8.d: crates/bench/src/bin/table2_specs.rs

/root/repo/target/release/deps/table2_specs-05746f217f2ba6b8: crates/bench/src/bin/table2_specs.rs

crates/bench/src/bin/table2_specs.rs:
