/root/repo/target/release/deps/spack_rs-4d159f3fcf3e12dd.d: src/lib.rs

/root/repo/target/release/deps/libspack_rs-4d159f3fcf3e12dd.rlib: src/lib.rs

/root/repo/target/release/deps/libspack_rs-4d159f3fcf3e12dd.rmeta: src/lib.rs

src/lib.rs:
