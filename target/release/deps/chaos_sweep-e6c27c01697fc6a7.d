/root/repo/target/release/deps/chaos_sweep-e6c27c01697fc6a7.d: crates/bench/src/bin/chaos_sweep.rs

/root/repo/target/release/deps/chaos_sweep-e6c27c01697fc6a7: crates/bench/src/bin/chaos_sweep.rs

crates/bench/src/bin/chaos_sweep.rs:
