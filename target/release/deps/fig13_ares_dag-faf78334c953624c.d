/root/repo/target/release/deps/fig13_ares_dag-faf78334c953624c.d: crates/bench/src/bin/fig13_ares_dag.rs

/root/repo/target/release/deps/fig13_ares_dag-faf78334c953624c: crates/bench/src/bin/fig13_ares_dag.rs

crates/bench/src/bin/fig13_ares_dag.rs:
