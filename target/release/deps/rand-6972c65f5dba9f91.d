/root/repo/target/release/deps/rand-6972c65f5dba9f91.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-6972c65f5dba9f91.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-6972c65f5dba9f91.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
