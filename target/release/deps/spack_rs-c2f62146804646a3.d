/root/repo/target/release/deps/spack_rs-c2f62146804646a3.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/release/deps/spack_rs-c2f62146804646a3: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
