/root/repo/target/release/deps/chaos_sweep-e206f42ccb52795d.d: crates/bench/src/bin/chaos_sweep.rs

/root/repo/target/release/deps/chaos_sweep-e206f42ccb52795d: crates/bench/src/bin/chaos_sweep.rs

crates/bench/src/bin/chaos_sweep.rs:
