/root/repo/target/release/deps/sched_scaling-5af842b6b86e923f.d: crates/bench/src/bin/sched_scaling.rs

/root/repo/target/release/deps/sched_scaling-5af842b6b86e923f: crates/bench/src/bin/sched_scaling.rs

crates/bench/src/bin/sched_scaling.rs:
