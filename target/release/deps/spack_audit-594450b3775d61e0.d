/root/repo/target/release/deps/spack_audit-594450b3775d61e0.d: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/release/deps/libspack_audit-594450b3775d61e0.rlib: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/release/deps/libspack_audit-594450b3775d61e0.rmeta: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

crates/audit/src/lib.rs:
crates/audit/src/cycles.rs:
crates/audit/src/passes.rs:
crates/audit/src/report.rs:
