/root/repo/target/release/deps/spack_store-990b4db0f3559256.d: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs

/root/repo/target/release/deps/libspack_store-990b4db0f3559256.rlib: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs

/root/repo/target/release/deps/libspack_store-990b4db0f3559256.rmeta: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs

crates/store/src/lib.rs:
crates/store/src/database.rs:
crates/store/src/error.rs:
crates/store/src/extensions.rs:
crates/store/src/fstree.rs:
crates/store/src/layout.rs:
crates/store/src/lmod.rs:
crates/store/src/modules.rs:
crates/store/src/views.rs:
