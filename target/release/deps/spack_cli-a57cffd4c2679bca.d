/root/repo/target/release/deps/spack_cli-a57cffd4c2679bca.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-a57cffd4c2679bca.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-a57cffd4c2679bca.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
