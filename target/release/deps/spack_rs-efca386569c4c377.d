/root/repo/target/release/deps/spack_rs-efca386569c4c377.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/release/deps/spack_rs-efca386569c4c377: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
