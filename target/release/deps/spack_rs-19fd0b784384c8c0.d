/root/repo/target/release/deps/spack_rs-19fd0b784384c8c0.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/release/deps/spack_rs-19fd0b784384c8c0: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
