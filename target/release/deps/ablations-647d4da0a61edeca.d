/root/repo/target/release/deps/ablations-647d4da0a61edeca.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-647d4da0a61edeca: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
