/root/repo/target/release/deps/spack_cli-eb4375b897d4d4c6.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-eb4375b897d4d4c6.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-eb4375b897d4d4c6.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
