/root/repo/target/release/deps/spack_concretize-55829c61dbd7f657.d: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

/root/repo/target/release/deps/libspack_concretize-55829c61dbd7f657.rlib: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

/root/repo/target/release/deps/libspack_concretize-55829c61dbd7f657.rmeta: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

crates/concretize/src/lib.rs:
crates/concretize/src/backtrack.rs:
crates/concretize/src/concretizer.rs:
crates/concretize/src/config.rs:
crates/concretize/src/error.rs:
crates/concretize/src/features.rs:
crates/concretize/src/providers.rs:
