/root/repo/target/release/deps/spack_cli-425d9296374ef198.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-425d9296374ef198.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libspack_cli-425d9296374ef198.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
