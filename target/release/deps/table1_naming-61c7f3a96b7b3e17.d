/root/repo/target/release/deps/table1_naming-61c7f3a96b7b3e17.d: crates/bench/src/bin/table1_naming.rs

/root/repo/target/release/deps/table1_naming-61c7f3a96b7b3e17: crates/bench/src/bin/table1_naming.rs

crates/bench/src/bin/table1_naming.rs:
