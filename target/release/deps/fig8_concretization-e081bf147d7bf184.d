/root/repo/target/release/deps/fig8_concretization-e081bf147d7bf184.d: crates/bench/src/bin/fig8_concretization.rs

/root/repo/target/release/deps/fig8_concretization-e081bf147d7bf184: crates/bench/src/bin/fig8_concretization.rs

crates/bench/src/bin/fig8_concretization.rs:
