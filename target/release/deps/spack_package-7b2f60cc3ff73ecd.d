/root/repo/target/release/deps/spack_package-7b2f60cc3ff73ecd.d: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

/root/repo/target/release/deps/libspack_package-7b2f60cc3ff73ecd.rlib: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

/root/repo/target/release/deps/libspack_package-7b2f60cc3ff73ecd.rmeta: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

crates/package/src/lib.rs:
crates/package/src/directive.rs:
crates/package/src/multimethod.rs:
crates/package/src/package.rs:
crates/package/src/recipe.rs:
crates/package/src/repo.rs:
crates/package/src/url.rs:
