/root/repo/target/release/deps/table3_ares-3aa0f0271e87a480.d: crates/bench/src/bin/table3_ares.rs

/root/repo/target/release/deps/table3_ares-3aa0f0271e87a480: crates/bench/src/bin/table3_ares.rs

crates/bench/src/bin/table3_ares.rs:
