/root/repo/target/release/deps/spack_rs-4b7f199e406c317b.d: src/lib.rs

/root/repo/target/release/deps/libspack_rs-4b7f199e406c317b.rlib: src/lib.rs

/root/repo/target/release/deps/libspack_rs-4b7f199e406c317b.rmeta: src/lib.rs

src/lib.rs:
