/root/repo/target/release/deps/spack_bench-b666928889d8b06d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspack_bench-b666928889d8b06d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspack_bench-b666928889d8b06d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
