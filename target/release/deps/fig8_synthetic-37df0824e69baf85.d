/root/repo/target/release/deps/fig8_synthetic-37df0824e69baf85.d: crates/bench/src/bin/fig8_synthetic.rs

/root/repo/target/release/deps/fig8_synthetic-37df0824e69baf85: crates/bench/src/bin/fig8_synthetic.rs

crates/bench/src/bin/fig8_synthetic.rs:
