/root/repo/target/release/deps/baseline_filecount-068ad3c9e2c13abd.d: crates/bench/src/bin/baseline_filecount.rs

/root/repo/target/release/deps/baseline_filecount-068ad3c9e2c13abd: crates/bench/src/bin/baseline_filecount.rs

crates/bench/src/bin/baseline_filecount.rs:
