/root/repo/target/release/deps/spack_bench-1ccf17d99ee86ecd.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspack_bench-1ccf17d99ee86ecd.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libspack_bench-1ccf17d99ee86ecd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
