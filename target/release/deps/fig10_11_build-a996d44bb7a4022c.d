/root/repo/target/release/deps/fig10_11_build-a996d44bb7a4022c.d: crates/bench/src/bin/fig10_11_build.rs

/root/repo/target/release/deps/fig10_11_build-a996d44bb7a4022c: crates/bench/src/bin/fig10_11_build.rs

crates/bench/src/bin/fig10_11_build.rs:
