/root/repo/target/release/deps/spack_rs-3a8cdc6a04926769.d: src/lib.rs

/root/repo/target/release/deps/libspack_rs-3a8cdc6a04926769.rlib: src/lib.rs

/root/repo/target/release/deps/libspack_rs-3a8cdc6a04926769.rmeta: src/lib.rs

src/lib.rs:
