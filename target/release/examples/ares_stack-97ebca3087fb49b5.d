/root/repo/target/release/examples/ares_stack-97ebca3087fb49b5.d: examples/ares_stack.rs

/root/repo/target/release/examples/ares_stack-97ebca3087fb49b5: examples/ares_stack.rs

examples/ares_stack.rs:
