/root/repo/target/release/examples/quickstart-e87dbd06f16c41ad.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e87dbd06f16c41ad: examples/quickstart.rs

examples/quickstart.rs:
