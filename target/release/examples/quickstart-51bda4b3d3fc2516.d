/root/repo/target/release/examples/quickstart-51bda4b3d3fc2516.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-51bda4b3d3fc2516: examples/quickstart.rs

examples/quickstart.rs:
