/root/repo/target/release/examples/audit_repo-4ad63dc7ecc1941a.d: examples/audit_repo.rs

/root/repo/target/release/examples/audit_repo-4ad63dc7ecc1941a: examples/audit_repo.rs

examples/audit_repo.rs:
