/root/repo/target/debug/libproptest.rlib: /root/repo/shims/proptest/src/lib.rs /root/repo/shims/proptest/src/regex_gen.rs
