/root/repo/target/debug/deps/fig10_11_build-810a0fc29bb08857.d: crates/bench/src/bin/fig10_11_build.rs

/root/repo/target/debug/deps/fig10_11_build-810a0fc29bb08857: crates/bench/src/bin/fig10_11_build.rs

crates/bench/src/bin/fig10_11_build.rs:
