/root/repo/target/debug/deps/table3_ares-35b218efaee0cc6c.d: crates/bench/src/bin/table3_ares.rs

/root/repo/target/debug/deps/table3_ares-35b218efaee0cc6c: crates/bench/src/bin/table3_ares.rs

crates/bench/src/bin/table3_ares.rs:
