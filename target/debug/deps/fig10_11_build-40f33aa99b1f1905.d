/root/repo/target/debug/deps/fig10_11_build-40f33aa99b1f1905.d: crates/bench/src/bin/fig10_11_build.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_11_build-40f33aa99b1f1905.rmeta: crates/bench/src/bin/fig10_11_build.rs Cargo.toml

crates/bench/src/bin/fig10_11_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
