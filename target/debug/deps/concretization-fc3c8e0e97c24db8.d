/root/repo/target/debug/deps/concretization-fc3c8e0e97c24db8.d: crates/bench/benches/concretization.rs Cargo.toml

/root/repo/target/debug/deps/libconcretization-fc3c8e0e97c24db8.rmeta: crates/bench/benches/concretization.rs Cargo.toml

crates/bench/benches/concretization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
