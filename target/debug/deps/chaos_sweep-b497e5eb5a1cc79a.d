/root/repo/target/debug/deps/chaos_sweep-b497e5eb5a1cc79a.d: crates/bench/src/bin/chaos_sweep.rs

/root/repo/target/debug/deps/chaos_sweep-b497e5eb5a1cc79a: crates/bench/src/bin/chaos_sweep.rs

crates/bench/src/bin/chaos_sweep.rs:
