/root/repo/target/debug/deps/version_props-0299bb7be3575184.d: crates/spec/tests/version_props.rs

/root/repo/target/debug/deps/version_props-0299bb7be3575184: crates/spec/tests/version_props.rs

crates/spec/tests/version_props.rs:
