/root/repo/target/debug/deps/features-e34e89b937a8dc9f.d: crates/concretize/tests/features.rs Cargo.toml

/root/repo/target/debug/deps/libfeatures-e34e89b937a8dc9f.rmeta: crates/concretize/tests/features.rs Cargo.toml

crates/concretize/tests/features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
