/root/repo/target/debug/deps/spack_audit-42dea120c0695c9c.d: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/debug/deps/libspack_audit-42dea120c0695c9c.rlib: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/debug/deps/libspack_audit-42dea120c0695c9c.rmeta: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

crates/audit/src/lib.rs:
crates/audit/src/cycles.rs:
crates/audit/src/passes.rs:
crates/audit/src/report.rs:
