/root/repo/target/debug/deps/ablations-2bb0615eda10d1e5.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-2bb0615eda10d1e5: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
