/root/repo/target/debug/deps/spack_rs-3b0f1b13c02f4173.d: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-3b0f1b13c02f4173.rlib: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-3b0f1b13c02f4173.rmeta: src/lib.rs

src/lib.rs:
