/root/repo/target/debug/deps/spack_rs-47f639935e16ba0c.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-47f639935e16ba0c: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
