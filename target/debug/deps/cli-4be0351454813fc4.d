/root/repo/target/debug/deps/cli-4be0351454813fc4.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-4be0351454813fc4.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_spack-rs=placeholder:spack-rs
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
