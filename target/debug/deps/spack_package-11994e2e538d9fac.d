/root/repo/target/debug/deps/spack_package-11994e2e538d9fac.d: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libspack_package-11994e2e538d9fac.rmeta: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs Cargo.toml

crates/package/src/lib.rs:
crates/package/src/directive.rs:
crates/package/src/multimethod.rs:
crates/package/src/package.rs:
crates/package/src/recipe.rs:
crates/package/src/repo.rs:
crates/package/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
