/root/repo/target/debug/deps/wrappers-5bae413fe94d3ed6.d: crates/bench/benches/wrappers.rs Cargo.toml

/root/repo/target/debug/deps/libwrappers-5bae413fe94d3ed6.rmeta: crates/bench/benches/wrappers.rs Cargo.toml

crates/bench/benches/wrappers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
