/root/repo/target/debug/deps/spack_bench-822bab9aaf937841.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_bench-822bab9aaf937841.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
