/root/repo/target/debug/deps/builtin_clean-8558239c29f836b2.d: crates/audit/tests/builtin_clean.rs

/root/repo/target/debug/deps/builtin_clean-8558239c29f836b2: crates/audit/tests/builtin_clean.rs

crates/audit/tests/builtin_clean.rs:
