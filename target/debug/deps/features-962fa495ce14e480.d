/root/repo/target/debug/deps/features-962fa495ce14e480.d: crates/concretize/tests/features.rs

/root/repo/target/debug/deps/features-962fa495ce14e480: crates/concretize/tests/features.rs

crates/concretize/tests/features.rs:
