/root/repo/target/debug/deps/hashing-2a02d658f9c66b02.d: crates/bench/benches/hashing.rs

/root/repo/target/debug/deps/hashing-2a02d658f9c66b02: crates/bench/benches/hashing.rs

crates/bench/benches/hashing.rs:
