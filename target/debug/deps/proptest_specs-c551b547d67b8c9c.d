/root/repo/target/debug/deps/proptest_specs-c551b547d67b8c9c.d: tests/proptest_specs.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_specs-c551b547d67b8c9c.rmeta: tests/proptest_specs.rs Cargo.toml

tests/proptest_specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
