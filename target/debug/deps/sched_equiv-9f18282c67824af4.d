/root/repo/target/debug/deps/sched_equiv-9f18282c67824af4.d: crates/buildenv/tests/sched_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libsched_equiv-9f18282c67824af4.rmeta: crates/buildenv/tests/sched_equiv.rs Cargo.toml

crates/buildenv/tests/sched_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
