/root/repo/target/debug/deps/end_to_end-3e359c9d4c5d5d53.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3e359c9d4c5d5d53: tests/end_to_end.rs

tests/end_to_end.rs:
