/root/repo/target/debug/deps/spack_cli-deb72781afcb1e2f.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/spack_cli-deb72781afcb1e2f: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
