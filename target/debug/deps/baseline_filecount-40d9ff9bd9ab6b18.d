/root/repo/target/debug/deps/baseline_filecount-40d9ff9bd9ab6b18.d: crates/bench/src/bin/baseline_filecount.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_filecount-40d9ff9bd9ab6b18.rmeta: crates/bench/src/bin/baseline_filecount.rs Cargo.toml

crates/bench/src/bin/baseline_filecount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
