/root/repo/target/debug/deps/spack_cli-4a03f58bc5b904a6.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/spack_cli-4a03f58bc5b904a6: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
