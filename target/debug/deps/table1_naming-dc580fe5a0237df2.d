/root/repo/target/debug/deps/table1_naming-dc580fe5a0237df2.d: crates/bench/src/bin/table1_naming.rs

/root/repo/target/debug/deps/table1_naming-dc580fe5a0237df2: crates/bench/src/bin/table1_naming.rs

crates/bench/src/bin/table1_naming.rs:
