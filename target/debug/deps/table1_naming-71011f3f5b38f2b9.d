/root/repo/target/debug/deps/table1_naming-71011f3f5b38f2b9.d: crates/bench/src/bin/table1_naming.rs

/root/repo/target/debug/deps/table1_naming-71011f3f5b38f2b9: crates/bench/src/bin/table1_naming.rs

crates/bench/src/bin/table1_naming.rs:
