/root/repo/target/debug/deps/ablations-6a904cfe52602f19.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6a904cfe52602f19: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
