/root/repo/target/debug/deps/fig8_synthetic-d901dac871ea96c7.d: crates/bench/src/bin/fig8_synthetic.rs

/root/repo/target/debug/deps/fig8_synthetic-d901dac871ea96c7: crates/bench/src/bin/fig8_synthetic.rs

crates/bench/src/bin/fig8_synthetic.rs:
