/root/repo/target/debug/deps/sched_scaling-4723b1c50c59a25e.d: crates/bench/src/bin/sched_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsched_scaling-4723b1c50c59a25e.rmeta: crates/bench/src/bin/sched_scaling.rs Cargo.toml

crates/bench/src/bin/sched_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
