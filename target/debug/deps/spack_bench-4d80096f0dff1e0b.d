/root/repo/target/debug/deps/spack_bench-4d80096f0dff1e0b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-4d80096f0dff1e0b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-4d80096f0dff1e0b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
