/root/repo/target/debug/deps/spack_buildenv-1ea1f0858429b591.d: crates/buildenv/src/lib.rs crates/buildenv/src/buildsys.rs crates/buildenv/src/compilers.rs crates/buildenv/src/faults.rs crates/buildenv/src/fetch.rs crates/buildenv/src/pipeline.rs crates/buildenv/src/platform.rs crates/buildenv/src/simfs.rs crates/buildenv/src/wrapper.rs

/root/repo/target/debug/deps/libspack_buildenv-1ea1f0858429b591.rlib: crates/buildenv/src/lib.rs crates/buildenv/src/buildsys.rs crates/buildenv/src/compilers.rs crates/buildenv/src/faults.rs crates/buildenv/src/fetch.rs crates/buildenv/src/pipeline.rs crates/buildenv/src/platform.rs crates/buildenv/src/simfs.rs crates/buildenv/src/wrapper.rs

/root/repo/target/debug/deps/libspack_buildenv-1ea1f0858429b591.rmeta: crates/buildenv/src/lib.rs crates/buildenv/src/buildsys.rs crates/buildenv/src/compilers.rs crates/buildenv/src/faults.rs crates/buildenv/src/fetch.rs crates/buildenv/src/pipeline.rs crates/buildenv/src/platform.rs crates/buildenv/src/simfs.rs crates/buildenv/src/wrapper.rs

crates/buildenv/src/lib.rs:
crates/buildenv/src/buildsys.rs:
crates/buildenv/src/compilers.rs:
crates/buildenv/src/faults.rs:
crates/buildenv/src/fetch.rs:
crates/buildenv/src/pipeline.rs:
crates/buildenv/src/platform.rs:
crates/buildenv/src/simfs.rs:
crates/buildenv/src/wrapper.rs:
