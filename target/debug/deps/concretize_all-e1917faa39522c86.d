/root/repo/target/debug/deps/concretize_all-e1917faa39522c86.d: crates/repo-builtin/tests/concretize_all.rs

/root/repo/target/debug/deps/concretize_all-e1917faa39522c86: crates/repo-builtin/tests/concretize_all.rs

crates/repo-builtin/tests/concretize_all.rs:
