/root/repo/target/debug/deps/spack_package-96964c17a52a3c46.d: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

/root/repo/target/debug/deps/spack_package-96964c17a52a3c46: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

crates/package/src/lib.rs:
crates/package/src/directive.rs:
crates/package/src/multimethod.rs:
crates/package/src/package.rs:
crates/package/src/recipe.rs:
crates/package/src/repo.rs:
crates/package/src/url.rs:
