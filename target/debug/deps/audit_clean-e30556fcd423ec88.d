/root/repo/target/debug/deps/audit_clean-e30556fcd423ec88.d: tests/audit_clean.rs

/root/repo/target/debug/deps/audit_clean-e30556fcd423ec88: tests/audit_clean.rs

tests/audit_clean.rs:
