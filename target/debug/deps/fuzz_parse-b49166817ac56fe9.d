/root/repo/target/debug/deps/fuzz_parse-b49166817ac56fe9.d: crates/spec/tests/fuzz_parse.rs

/root/repo/target/debug/deps/fuzz_parse-b49166817ac56fe9: crates/spec/tests/fuzz_parse.rs

crates/spec/tests/fuzz_parse.rs:
