/root/repo/target/debug/deps/baseline_filecount-9522e61cb378dcec.d: crates/bench/src/bin/baseline_filecount.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_filecount-9522e61cb378dcec.rmeta: crates/bench/src/bin/baseline_filecount.rs Cargo.toml

crates/bench/src/bin/baseline_filecount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
