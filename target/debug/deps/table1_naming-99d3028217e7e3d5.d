/root/repo/target/debug/deps/table1_naming-99d3028217e7e3d5.d: crates/bench/src/bin/table1_naming.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_naming-99d3028217e7e3d5.rmeta: crates/bench/src/bin/table1_naming.rs Cargo.toml

crates/bench/src/bin/table1_naming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
