/root/repo/target/debug/deps/cli-11b58c288e962fc4.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-11b58c288e962fc4: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_spack-rs=/root/repo/target/debug/spack-rs
