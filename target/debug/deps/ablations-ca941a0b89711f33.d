/root/repo/target/debug/deps/ablations-ca941a0b89711f33.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ca941a0b89711f33.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
