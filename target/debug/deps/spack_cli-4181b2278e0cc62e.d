/root/repo/target/debug/deps/spack_cli-4181b2278e0cc62e.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-4181b2278e0cc62e.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-4181b2278e0cc62e.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
