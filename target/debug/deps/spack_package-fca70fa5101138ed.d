/root/repo/target/debug/deps/spack_package-fca70fa5101138ed.d: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libspack_package-fca70fa5101138ed.rmeta: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs Cargo.toml

crates/package/src/lib.rs:
crates/package/src/directive.rs:
crates/package/src/multimethod.rs:
crates/package/src/package.rs:
crates/package/src/recipe.rs:
crates/package/src/repo.rs:
crates/package/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
