/root/repo/target/debug/deps/rand-c8f7f5b1a71a7193.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-c8f7f5b1a71a7193.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
