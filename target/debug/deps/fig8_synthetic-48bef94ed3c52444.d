/root/repo/target/debug/deps/fig8_synthetic-48bef94ed3c52444.d: crates/bench/src/bin/fig8_synthetic.rs

/root/repo/target/debug/deps/fig8_synthetic-48bef94ed3c52444: crates/bench/src/bin/fig8_synthetic.rs

crates/bench/src/bin/fig8_synthetic.rs:
