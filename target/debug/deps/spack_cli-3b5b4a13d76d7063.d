/root/repo/target/debug/deps/spack_cli-3b5b4a13d76d7063.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/spack_cli-3b5b4a13d76d7063: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
