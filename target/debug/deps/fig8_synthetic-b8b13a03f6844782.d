/root/repo/target/debug/deps/fig8_synthetic-b8b13a03f6844782.d: crates/bench/src/bin/fig8_synthetic.rs

/root/repo/target/debug/deps/fig8_synthetic-b8b13a03f6844782: crates/bench/src/bin/fig8_synthetic.rs

crates/bench/src/bin/fig8_synthetic.rs:
