/root/repo/target/debug/deps/spack_rs-7f1222c24fe2276c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_rs-7f1222c24fe2276c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
