/root/repo/target/debug/deps/concretize_all-448fe2fd5f7708e6.d: crates/repo-builtin/tests/concretize_all.rs Cargo.toml

/root/repo/target/debug/deps/libconcretize_all-448fe2fd5f7708e6.rmeta: crates/repo-builtin/tests/concretize_all.rs Cargo.toml

crates/repo-builtin/tests/concretize_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
