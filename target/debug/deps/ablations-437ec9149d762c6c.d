/root/repo/target/debug/deps/ablations-437ec9149d762c6c.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-437ec9149d762c6c: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
