/root/repo/target/debug/deps/spack_rs-f60a0145524ef447.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-f60a0145524ef447: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
