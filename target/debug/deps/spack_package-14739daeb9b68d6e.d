/root/repo/target/debug/deps/spack_package-14739daeb9b68d6e.d: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

/root/repo/target/debug/deps/libspack_package-14739daeb9b68d6e.rlib: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

/root/repo/target/debug/deps/libspack_package-14739daeb9b68d6e.rmeta: crates/package/src/lib.rs crates/package/src/directive.rs crates/package/src/multimethod.rs crates/package/src/package.rs crates/package/src/recipe.rs crates/package/src/repo.rs crates/package/src/url.rs

crates/package/src/lib.rs:
crates/package/src/directive.rs:
crates/package/src/multimethod.rs:
crates/package/src/package.rs:
crates/package/src/recipe.rs:
crates/package/src/repo.rs:
crates/package/src/url.rs:
