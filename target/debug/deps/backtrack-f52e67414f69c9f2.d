/root/repo/target/debug/deps/backtrack-f52e67414f69c9f2.d: crates/concretize/tests/backtrack.rs

/root/repo/target/debug/deps/backtrack-f52e67414f69c9f2: crates/concretize/tests/backtrack.rs

crates/concretize/tests/backtrack.rs:
