/root/repo/target/debug/deps/spack_rs-f3e04dc3bb394ebd.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-f3e04dc3bb394ebd: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
