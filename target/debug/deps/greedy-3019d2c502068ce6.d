/root/repo/target/debug/deps/greedy-3019d2c502068ce6.d: crates/concretize/tests/greedy.rs

/root/repo/target/debug/deps/greedy-3019d2c502068ce6: crates/concretize/tests/greedy.rs

crates/concretize/tests/greedy.rs:
