/root/repo/target/debug/deps/spec_parsing-582e72d4d79341b2.d: crates/bench/benches/spec_parsing.rs

/root/repo/target/debug/deps/spec_parsing-582e72d4d79341b2: crates/bench/benches/spec_parsing.rs

crates/bench/benches/spec_parsing.rs:
