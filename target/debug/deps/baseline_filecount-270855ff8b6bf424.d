/root/repo/target/debug/deps/baseline_filecount-270855ff8b6bf424.d: crates/bench/src/bin/baseline_filecount.rs

/root/repo/target/debug/deps/baseline_filecount-270855ff8b6bf424: crates/bench/src/bin/baseline_filecount.rs

crates/bench/src/bin/baseline_filecount.rs:
