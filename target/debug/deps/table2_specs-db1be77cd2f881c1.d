/root/repo/target/debug/deps/table2_specs-db1be77cd2f881c1.d: crates/bench/src/bin/table2_specs.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_specs-db1be77cd2f881c1.rmeta: crates/bench/src/bin/table2_specs.rs Cargo.toml

crates/bench/src/bin/table2_specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
