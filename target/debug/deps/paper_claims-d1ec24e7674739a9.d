/root/repo/target/debug/deps/paper_claims-d1ec24e7674739a9.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d1ec24e7674739a9: tests/paper_claims.rs

tests/paper_claims.rs:
