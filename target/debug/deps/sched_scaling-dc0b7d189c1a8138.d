/root/repo/target/debug/deps/sched_scaling-dc0b7d189c1a8138.d: crates/bench/src/bin/sched_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsched_scaling-dc0b7d189c1a8138.rmeta: crates/bench/src/bin/sched_scaling.rs Cargo.toml

crates/bench/src/bin/sched_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
