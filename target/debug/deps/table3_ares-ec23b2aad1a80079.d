/root/repo/target/debug/deps/table3_ares-ec23b2aad1a80079.d: crates/bench/src/bin/table3_ares.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_ares-ec23b2aad1a80079.rmeta: crates/bench/src/bin/table3_ares.rs Cargo.toml

crates/bench/src/bin/table3_ares.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
