/root/repo/target/debug/deps/end_to_end-fd64b741c905dcac.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fd64b741c905dcac: tests/end_to_end.rs

tests/end_to_end.rs:
