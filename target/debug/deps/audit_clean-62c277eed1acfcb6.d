/root/repo/target/debug/deps/audit_clean-62c277eed1acfcb6.d: tests/audit_clean.rs

/root/repo/target/debug/deps/audit_clean-62c277eed1acfcb6: tests/audit_clean.rs

tests/audit_clean.rs:
