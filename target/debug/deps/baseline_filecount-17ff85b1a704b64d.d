/root/repo/target/debug/deps/baseline_filecount-17ff85b1a704b64d.d: crates/bench/src/bin/baseline_filecount.rs

/root/repo/target/debug/deps/baseline_filecount-17ff85b1a704b64d: crates/bench/src/bin/baseline_filecount.rs

crates/bench/src/bin/baseline_filecount.rs:
