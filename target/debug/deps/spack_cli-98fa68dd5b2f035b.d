/root/repo/target/debug/deps/spack_cli-98fa68dd5b2f035b.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/spack_cli-98fa68dd5b2f035b: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
