/root/repo/target/debug/deps/rand-1a6491ab5a0e091e.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1a6491ab5a0e091e.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1a6491ab5a0e091e.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
