/root/repo/target/debug/deps/fig13_ares_dag-28f2d8ef40e684a3.d: crates/bench/src/bin/fig13_ares_dag.rs

/root/repo/target/debug/deps/fig13_ares_dag-28f2d8ef40e684a3: crates/bench/src/bin/fig13_ares_dag.rs

crates/bench/src/bin/fig13_ares_dag.rs:
