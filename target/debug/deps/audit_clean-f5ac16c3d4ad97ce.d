/root/repo/target/debug/deps/audit_clean-f5ac16c3d4ad97ce.d: tests/audit_clean.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_clean-f5ac16c3d4ad97ce.rmeta: tests/audit_clean.rs Cargo.toml

tests/audit_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
