/root/repo/target/debug/deps/spack_spec-2b81ad4758ba9a06.d: crates/spec/src/lib.rs crates/spec/src/dag.rs crates/spec/src/error.rs crates/spec/src/format.rs crates/spec/src/hash.rs crates/spec/src/lex.rs crates/spec/src/parse.rs crates/spec/src/serial.rs crates/spec/src/sha.rs crates/spec/src/spec.rs crates/spec/src/version.rs

/root/repo/target/debug/deps/libspack_spec-2b81ad4758ba9a06.rlib: crates/spec/src/lib.rs crates/spec/src/dag.rs crates/spec/src/error.rs crates/spec/src/format.rs crates/spec/src/hash.rs crates/spec/src/lex.rs crates/spec/src/parse.rs crates/spec/src/serial.rs crates/spec/src/sha.rs crates/spec/src/spec.rs crates/spec/src/version.rs

/root/repo/target/debug/deps/libspack_spec-2b81ad4758ba9a06.rmeta: crates/spec/src/lib.rs crates/spec/src/dag.rs crates/spec/src/error.rs crates/spec/src/format.rs crates/spec/src/hash.rs crates/spec/src/lex.rs crates/spec/src/parse.rs crates/spec/src/serial.rs crates/spec/src/sha.rs crates/spec/src/spec.rs crates/spec/src/version.rs

crates/spec/src/lib.rs:
crates/spec/src/dag.rs:
crates/spec/src/error.rs:
crates/spec/src/format.rs:
crates/spec/src/hash.rs:
crates/spec/src/lex.rs:
crates/spec/src/parse.rs:
crates/spec/src/serial.rs:
crates/spec/src/sha.rs:
crates/spec/src/spec.rs:
crates/spec/src/version.rs:
