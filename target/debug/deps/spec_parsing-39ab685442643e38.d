/root/repo/target/debug/deps/spec_parsing-39ab685442643e38.d: crates/bench/benches/spec_parsing.rs Cargo.toml

/root/repo/target/debug/deps/libspec_parsing-39ab685442643e38.rmeta: crates/bench/benches/spec_parsing.rs Cargo.toml

crates/bench/benches/spec_parsing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
