/root/repo/target/debug/deps/fig8_synthetic-6d45fc9f361b8679.d: crates/bench/src/bin/fig8_synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_synthetic-6d45fc9f361b8679.rmeta: crates/bench/src/bin/fig8_synthetic.rs Cargo.toml

crates/bench/src/bin/fig8_synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
