/root/repo/target/debug/deps/spack_rs-1bbc7b11b9cc3ef4.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-1bbc7b11b9cc3ef4: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
