/root/repo/target/debug/deps/spack_rs-490f0a4711cebe30.d: src/lib.rs

/root/repo/target/debug/deps/spack_rs-490f0a4711cebe30: src/lib.rs

src/lib.rs:
