/root/repo/target/debug/deps/cli-efc5812b99449e6e.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-efc5812b99449e6e: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_spack-rs=/root/repo/target/debug/spack-rs
