/root/repo/target/debug/deps/spack_rs-acf35e2954c1e9b0.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-acf35e2954c1e9b0: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
