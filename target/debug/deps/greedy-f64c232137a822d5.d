/root/repo/target/debug/deps/greedy-f64c232137a822d5.d: crates/concretize/tests/greedy.rs Cargo.toml

/root/repo/target/debug/deps/libgreedy-f64c232137a822d5.rmeta: crates/concretize/tests/greedy.rs Cargo.toml

crates/concretize/tests/greedy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
