/root/repo/target/debug/deps/spack_audit-810b39a657d68c9a.d: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libspack_audit-810b39a657d68c9a.rmeta: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/cycles.rs:
crates/audit/src/passes.rs:
crates/audit/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
