/root/repo/target/debug/deps/spack_rs-44c2750cee8835a7.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-44c2750cee8835a7: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
