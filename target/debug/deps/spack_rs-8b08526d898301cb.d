/root/repo/target/debug/deps/spack_rs-8b08526d898301cb.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-8b08526d898301cb: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
