/root/repo/target/debug/deps/builtin_clean-1d9595534607ef9b.d: crates/audit/tests/builtin_clean.rs

/root/repo/target/debug/deps/builtin_clean-1d9595534607ef9b: crates/audit/tests/builtin_clean.rs

crates/audit/tests/builtin_clean.rs:
