/root/repo/target/debug/deps/end_to_end-8008739a810c0b75.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8008739a810c0b75: tests/end_to_end.rs

tests/end_to_end.rs:
