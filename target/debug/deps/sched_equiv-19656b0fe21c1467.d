/root/repo/target/debug/deps/sched_equiv-19656b0fe21c1467.d: crates/buildenv/tests/sched_equiv.rs

/root/repo/target/debug/deps/sched_equiv-19656b0fe21c1467: crates/buildenv/tests/sched_equiv.rs

crates/buildenv/tests/sched_equiv.rs:
