/root/repo/target/debug/deps/fig13_ares_dag-de4fe20b0286cb9e.d: crates/bench/src/bin/fig13_ares_dag.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_ares_dag-de4fe20b0286cb9e.rmeta: crates/bench/src/bin/fig13_ares_dag.rs Cargo.toml

crates/bench/src/bin/fig13_ares_dag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
