/root/repo/target/debug/deps/spack_bench-9da2210cd463dfb8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/spack_bench-9da2210cd463dfb8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
