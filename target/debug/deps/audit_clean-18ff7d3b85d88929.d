/root/repo/target/debug/deps/audit_clean-18ff7d3b85d88929.d: tests/audit_clean.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_clean-18ff7d3b85d88929.rmeta: tests/audit_clean.rs Cargo.toml

tests/audit_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
