/root/repo/target/debug/deps/fig8_concretization-9ae3adc707c21a5f.d: crates/bench/src/bin/fig8_concretization.rs

/root/repo/target/debug/deps/fig8_concretization-9ae3adc707c21a5f: crates/bench/src/bin/fig8_concretization.rs

crates/bench/src/bin/fig8_concretization.rs:
