/root/repo/target/debug/deps/fig13_ares_dag-b680768ebd08aeee.d: crates/bench/src/bin/fig13_ares_dag.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_ares_dag-b680768ebd08aeee.rmeta: crates/bench/src/bin/fig13_ares_dag.rs Cargo.toml

crates/bench/src/bin/fig13_ares_dag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
