/root/repo/target/debug/deps/spack_repo_builtin-44fba83da83050be.d: crates/repo-builtin/src/lib.rs crates/repo-builtin/src/helpers.rs crates/repo-builtin/src/apps.rs crates/repo-builtin/src/ares.rs crates/repo-builtin/src/blas.rs crates/repo-builtin/src/buildtools.rs crates/repo-builtin/src/compression.rs crates/repo-builtin/src/corelibs.rs crates/repo-builtin/src/io.rs crates/repo-builtin/src/lang.rs crates/repo-builtin/src/mathlibs.rs crates/repo-builtin/src/mpi.rs crates/repo-builtin/src/mpileaks.rs crates/repo-builtin/src/netlibs.rs crates/repo-builtin/src/perf.rs crates/repo-builtin/src/python.rs crates/repo-builtin/src/systools.rs crates/repo-builtin/src/tools.rs crates/repo-builtin/src/viz.rs

/root/repo/target/debug/deps/spack_repo_builtin-44fba83da83050be: crates/repo-builtin/src/lib.rs crates/repo-builtin/src/helpers.rs crates/repo-builtin/src/apps.rs crates/repo-builtin/src/ares.rs crates/repo-builtin/src/blas.rs crates/repo-builtin/src/buildtools.rs crates/repo-builtin/src/compression.rs crates/repo-builtin/src/corelibs.rs crates/repo-builtin/src/io.rs crates/repo-builtin/src/lang.rs crates/repo-builtin/src/mathlibs.rs crates/repo-builtin/src/mpi.rs crates/repo-builtin/src/mpileaks.rs crates/repo-builtin/src/netlibs.rs crates/repo-builtin/src/perf.rs crates/repo-builtin/src/python.rs crates/repo-builtin/src/systools.rs crates/repo-builtin/src/tools.rs crates/repo-builtin/src/viz.rs

crates/repo-builtin/src/lib.rs:
crates/repo-builtin/src/helpers.rs:
crates/repo-builtin/src/apps.rs:
crates/repo-builtin/src/ares.rs:
crates/repo-builtin/src/blas.rs:
crates/repo-builtin/src/buildtools.rs:
crates/repo-builtin/src/compression.rs:
crates/repo-builtin/src/corelibs.rs:
crates/repo-builtin/src/io.rs:
crates/repo-builtin/src/lang.rs:
crates/repo-builtin/src/mathlibs.rs:
crates/repo-builtin/src/mpi.rs:
crates/repo-builtin/src/mpileaks.rs:
crates/repo-builtin/src/netlibs.rs:
crates/repo-builtin/src/perf.rs:
crates/repo-builtin/src/python.rs:
crates/repo-builtin/src/systools.rs:
crates/repo-builtin/src/tools.rs:
crates/repo-builtin/src/viz.rs:
