/root/repo/target/debug/deps/fig8_concretization-a4b12f7d8a3d6213.d: crates/bench/src/bin/fig8_concretization.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_concretization-a4b12f7d8a3d6213.rmeta: crates/bench/src/bin/fig8_concretization.rs Cargo.toml

crates/bench/src/bin/fig8_concretization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
