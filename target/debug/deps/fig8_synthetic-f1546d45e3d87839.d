/root/repo/target/debug/deps/fig8_synthetic-f1546d45e3d87839.d: crates/bench/src/bin/fig8_synthetic.rs

/root/repo/target/debug/deps/fig8_synthetic-f1546d45e3d87839: crates/bench/src/bin/fig8_synthetic.rs

crates/bench/src/bin/fig8_synthetic.rs:
