/root/repo/target/debug/deps/audit_clean-92ab57d02e63be7a.d: tests/audit_clean.rs

/root/repo/target/debug/deps/audit_clean-92ab57d02e63be7a: tests/audit_clean.rs

tests/audit_clean.rs:
