/root/repo/target/debug/deps/spack_rs-c6b27ffd6653d2f7.d: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-c6b27ffd6653d2f7.rlib: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-c6b27ffd6653d2f7.rmeta: src/lib.rs

src/lib.rs:
