/root/repo/target/debug/deps/fig8_concretization-e569ce8fa7823d22.d: crates/bench/src/bin/fig8_concretization.rs

/root/repo/target/debug/deps/fig8_concretization-e569ce8fa7823d22: crates/bench/src/bin/fig8_concretization.rs

crates/bench/src/bin/fig8_concretization.rs:
