/root/repo/target/debug/deps/table3_ares-ed8c7223d8e8a3b7.d: crates/bench/src/bin/table3_ares.rs

/root/repo/target/debug/deps/table3_ares-ed8c7223d8e8a3b7: crates/bench/src/bin/table3_ares.rs

crates/bench/src/bin/table3_ares.rs:
