/root/repo/target/debug/deps/baseline_filecount-c79c5f15624e3293.d: crates/bench/src/bin/baseline_filecount.rs

/root/repo/target/debug/deps/baseline_filecount-c79c5f15624e3293: crates/bench/src/bin/baseline_filecount.rs

crates/bench/src/bin/baseline_filecount.rs:
