/root/repo/target/debug/deps/hashing-ee276f8c5abc0c51.d: crates/bench/benches/hashing.rs Cargo.toml

/root/repo/target/debug/deps/libhashing-ee276f8c5abc0c51.rmeta: crates/bench/benches/hashing.rs Cargo.toml

crates/bench/benches/hashing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
