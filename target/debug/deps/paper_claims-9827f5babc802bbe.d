/root/repo/target/debug/deps/paper_claims-9827f5babc802bbe.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9827f5babc802bbe: tests/paper_claims.rs

tests/paper_claims.rs:
