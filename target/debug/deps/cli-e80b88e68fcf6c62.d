/root/repo/target/debug/deps/cli-e80b88e68fcf6c62.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-e80b88e68fcf6c62.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_spack-rs=placeholder:spack-rs
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
