/root/repo/target/debug/deps/proptest_specs-636f8b6c580d5acf.d: tests/proptest_specs.rs

/root/repo/target/debug/deps/proptest_specs-636f8b6c580d5acf: tests/proptest_specs.rs

tests/proptest_specs.rs:
