/root/repo/target/debug/deps/spack_bench-3ece9a1c2cad6cd1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_bench-3ece9a1c2cad6cd1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
