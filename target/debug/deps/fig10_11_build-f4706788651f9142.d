/root/repo/target/debug/deps/fig10_11_build-f4706788651f9142.d: crates/bench/src/bin/fig10_11_build.rs

/root/repo/target/debug/deps/fig10_11_build-f4706788651f9142: crates/bench/src/bin/fig10_11_build.rs

crates/bench/src/bin/fig10_11_build.rs:
