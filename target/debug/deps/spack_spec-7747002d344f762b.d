/root/repo/target/debug/deps/spack_spec-7747002d344f762b.d: crates/spec/src/lib.rs crates/spec/src/dag.rs crates/spec/src/error.rs crates/spec/src/format.rs crates/spec/src/hash.rs crates/spec/src/lex.rs crates/spec/src/parse.rs crates/spec/src/serial.rs crates/spec/src/sha.rs crates/spec/src/spec.rs crates/spec/src/version.rs Cargo.toml

/root/repo/target/debug/deps/libspack_spec-7747002d344f762b.rmeta: crates/spec/src/lib.rs crates/spec/src/dag.rs crates/spec/src/error.rs crates/spec/src/format.rs crates/spec/src/hash.rs crates/spec/src/lex.rs crates/spec/src/parse.rs crates/spec/src/serial.rs crates/spec/src/sha.rs crates/spec/src/spec.rs crates/spec/src/version.rs Cargo.toml

crates/spec/src/lib.rs:
crates/spec/src/dag.rs:
crates/spec/src/error.rs:
crates/spec/src/format.rs:
crates/spec/src/hash.rs:
crates/spec/src/lex.rs:
crates/spec/src/parse.rs:
crates/spec/src/serial.rs:
crates/spec/src/sha.rs:
crates/spec/src/spec.rs:
crates/spec/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
