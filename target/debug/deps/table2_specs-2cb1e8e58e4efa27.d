/root/repo/target/debug/deps/table2_specs-2cb1e8e58e4efa27.d: crates/bench/src/bin/table2_specs.rs

/root/repo/target/debug/deps/table2_specs-2cb1e8e58e4efa27: crates/bench/src/bin/table2_specs.rs

crates/bench/src/bin/table2_specs.rs:
