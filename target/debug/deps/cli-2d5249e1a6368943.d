/root/repo/target/debug/deps/cli-2d5249e1a6368943.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-2d5249e1a6368943: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_spack-rs=/root/repo/target/debug/spack-rs
