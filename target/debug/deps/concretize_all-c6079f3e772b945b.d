/root/repo/target/debug/deps/concretize_all-c6079f3e772b945b.d: crates/repo-builtin/tests/concretize_all.rs

/root/repo/target/debug/deps/concretize_all-c6079f3e772b945b: crates/repo-builtin/tests/concretize_all.rs

crates/repo-builtin/tests/concretize_all.rs:
