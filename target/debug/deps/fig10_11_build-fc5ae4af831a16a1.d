/root/repo/target/debug/deps/fig10_11_build-fc5ae4af831a16a1.d: crates/bench/src/bin/fig10_11_build.rs

/root/repo/target/debug/deps/fig10_11_build-fc5ae4af831a16a1: crates/bench/src/bin/fig10_11_build.rs

crates/bench/src/bin/fig10_11_build.rs:
