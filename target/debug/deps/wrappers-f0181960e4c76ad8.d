/root/repo/target/debug/deps/wrappers-f0181960e4c76ad8.d: crates/bench/benches/wrappers.rs

/root/repo/target/debug/deps/wrappers-f0181960e4c76ad8: crates/bench/benches/wrappers.rs

crates/bench/benches/wrappers.rs:
