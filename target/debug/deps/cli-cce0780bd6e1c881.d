/root/repo/target/debug/deps/cli-cce0780bd6e1c881.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-cce0780bd6e1c881: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_spack-rs=/root/repo/target/debug/spack-rs
