/root/repo/target/debug/deps/ablations-7a5ae0a1f5b4aa1f.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-7a5ae0a1f5b4aa1f.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
