/root/repo/target/debug/deps/concretization-1a54dd9ffc322193.d: crates/bench/benches/concretization.rs Cargo.toml

/root/repo/target/debug/deps/libconcretization-1a54dd9ffc322193.rmeta: crates/bench/benches/concretization.rs Cargo.toml

crates/bench/benches/concretization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
