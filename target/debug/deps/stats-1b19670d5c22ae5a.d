/root/repo/target/debug/deps/stats-1b19670d5c22ae5a.d: crates/concretize/tests/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstats-1b19670d5c22ae5a.rmeta: crates/concretize/tests/stats.rs Cargo.toml

crates/concretize/tests/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
