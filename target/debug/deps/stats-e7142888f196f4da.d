/root/repo/target/debug/deps/stats-e7142888f196f4da.d: crates/concretize/tests/stats.rs

/root/repo/target/debug/deps/stats-e7142888f196f4da: crates/concretize/tests/stats.rs

crates/concretize/tests/stats.rs:
