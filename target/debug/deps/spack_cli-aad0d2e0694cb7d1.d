/root/repo/target/debug/deps/spack_cli-aad0d2e0694cb7d1.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-aad0d2e0694cb7d1.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-aad0d2e0694cb7d1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
