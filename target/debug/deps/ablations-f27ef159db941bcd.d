/root/repo/target/debug/deps/ablations-f27ef159db941bcd.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-f27ef159db941bcd: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
