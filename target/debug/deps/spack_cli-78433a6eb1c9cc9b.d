/root/repo/target/debug/deps/spack_cli-78433a6eb1c9cc9b.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-78433a6eb1c9cc9b.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-78433a6eb1c9cc9b.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
