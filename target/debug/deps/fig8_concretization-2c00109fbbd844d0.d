/root/repo/target/debug/deps/fig8_concretization-2c00109fbbd844d0.d: crates/bench/src/bin/fig8_concretization.rs

/root/repo/target/debug/deps/fig8_concretization-2c00109fbbd844d0: crates/bench/src/bin/fig8_concretization.rs

crates/bench/src/bin/fig8_concretization.rs:
