/root/repo/target/debug/deps/spack_rs-e6c75c5868407c15.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_rs-e6c75c5868407c15.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
