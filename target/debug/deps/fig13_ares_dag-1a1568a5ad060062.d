/root/repo/target/debug/deps/fig13_ares_dag-1a1568a5ad060062.d: crates/bench/src/bin/fig13_ares_dag.rs

/root/repo/target/debug/deps/fig13_ares_dag-1a1568a5ad060062: crates/bench/src/bin/fig13_ares_dag.rs

crates/bench/src/bin/fig13_ares_dag.rs:
