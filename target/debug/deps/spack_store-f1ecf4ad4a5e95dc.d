/root/repo/target/debug/deps/spack_store-f1ecf4ad4a5e95dc.d: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs Cargo.toml

/root/repo/target/debug/deps/libspack_store-f1ecf4ad4a5e95dc.rmeta: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/database.rs:
crates/store/src/error.rs:
crates/store/src/extensions.rs:
crates/store/src/fstree.rs:
crates/store/src/layout.rs:
crates/store/src/lmod.rs:
crates/store/src/modules.rs:
crates/store/src/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
