/root/repo/target/debug/deps/spack_bench-0a29f6d0d0be7db3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/spack_bench-0a29f6d0d0be7db3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
