/root/repo/target/debug/deps/spack_concretize-59acf92ce6f1ed26.d: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

/root/repo/target/debug/deps/libspack_concretize-59acf92ce6f1ed26.rlib: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

/root/repo/target/debug/deps/libspack_concretize-59acf92ce6f1ed26.rmeta: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

crates/concretize/src/lib.rs:
crates/concretize/src/backtrack.rs:
crates/concretize/src/concretizer.rs:
crates/concretize/src/config.rs:
crates/concretize/src/error.rs:
crates/concretize/src/features.rs:
crates/concretize/src/providers.rs:
