/root/repo/target/debug/deps/fig8_concretization-92188b41f16cf740.d: crates/bench/src/bin/fig8_concretization.rs

/root/repo/target/debug/deps/fig8_concretization-92188b41f16cf740: crates/bench/src/bin/fig8_concretization.rs

crates/bench/src/bin/fig8_concretization.rs:
