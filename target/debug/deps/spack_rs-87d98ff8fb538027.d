/root/repo/target/debug/deps/spack_rs-87d98ff8fb538027.d: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-87d98ff8fb538027.rlib: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-87d98ff8fb538027.rmeta: src/lib.rs

src/lib.rs:
