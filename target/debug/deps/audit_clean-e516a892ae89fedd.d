/root/repo/target/debug/deps/audit_clean-e516a892ae89fedd.d: tests/audit_clean.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_clean-e516a892ae89fedd.rmeta: tests/audit_clean.rs Cargo.toml

tests/audit_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
