/root/repo/target/debug/deps/fig13_ares_dag-c09e2736e890b464.d: crates/bench/src/bin/fig13_ares_dag.rs

/root/repo/target/debug/deps/fig13_ares_dag-c09e2736e890b464: crates/bench/src/bin/fig13_ares_dag.rs

crates/bench/src/bin/fig13_ares_dag.rs:
