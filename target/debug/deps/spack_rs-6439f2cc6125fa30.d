/root/repo/target/debug/deps/spack_rs-6439f2cc6125fa30.d: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-6439f2cc6125fa30.rlib: src/lib.rs

/root/repo/target/debug/deps/libspack_rs-6439f2cc6125fa30.rmeta: src/lib.rs

src/lib.rs:
