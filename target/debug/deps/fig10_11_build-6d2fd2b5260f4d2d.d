/root/repo/target/debug/deps/fig10_11_build-6d2fd2b5260f4d2d.d: crates/bench/src/bin/fig10_11_build.rs

/root/repo/target/debug/deps/fig10_11_build-6d2fd2b5260f4d2d: crates/bench/src/bin/fig10_11_build.rs

crates/bench/src/bin/fig10_11_build.rs:
