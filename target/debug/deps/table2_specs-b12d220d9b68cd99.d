/root/repo/target/debug/deps/table2_specs-b12d220d9b68cd99.d: crates/bench/src/bin/table2_specs.rs

/root/repo/target/debug/deps/table2_specs-b12d220d9b68cd99: crates/bench/src/bin/table2_specs.rs

crates/bench/src/bin/table2_specs.rs:
