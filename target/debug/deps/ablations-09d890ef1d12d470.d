/root/repo/target/debug/deps/ablations-09d890ef1d12d470.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-09d890ef1d12d470: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
