/root/repo/target/debug/deps/proptest_specs-7efe56f5f90b0993.d: tests/proptest_specs.rs

/root/repo/target/debug/deps/proptest_specs-7efe56f5f90b0993: tests/proptest_specs.rs

tests/proptest_specs.rs:
