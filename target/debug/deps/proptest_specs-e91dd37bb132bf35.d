/root/repo/target/debug/deps/proptest_specs-e91dd37bb132bf35.d: tests/proptest_specs.rs

/root/repo/target/debug/deps/proptest_specs-e91dd37bb132bf35: tests/proptest_specs.rs

tests/proptest_specs.rs:
