/root/repo/target/debug/deps/proptest_specs-c6b1822b82e01fbb.d: tests/proptest_specs.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_specs-c6b1822b82e01fbb.rmeta: tests/proptest_specs.rs Cargo.toml

tests/proptest_specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
