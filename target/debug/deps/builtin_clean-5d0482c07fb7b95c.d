/root/repo/target/debug/deps/builtin_clean-5d0482c07fb7b95c.d: crates/audit/tests/builtin_clean.rs Cargo.toml

/root/repo/target/debug/deps/libbuiltin_clean-5d0482c07fb7b95c.rmeta: crates/audit/tests/builtin_clean.rs Cargo.toml

crates/audit/tests/builtin_clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
