/root/repo/target/debug/deps/wrappers-f8e5578b35f7384c.d: crates/bench/benches/wrappers.rs Cargo.toml

/root/repo/target/debug/deps/libwrappers-f8e5578b35f7384c.rmeta: crates/bench/benches/wrappers.rs Cargo.toml

crates/bench/benches/wrappers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
