/root/repo/target/debug/deps/paper_claims-19388b33f23a89f9.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-19388b33f23a89f9: tests/paper_claims.rs

tests/paper_claims.rs:
