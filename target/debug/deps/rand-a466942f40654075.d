/root/repo/target/debug/deps/rand-a466942f40654075.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-a466942f40654075: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
