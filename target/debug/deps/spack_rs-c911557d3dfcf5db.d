/root/repo/target/debug/deps/spack_rs-c911557d3dfcf5db.d: src/lib.rs

/root/repo/target/debug/deps/spack_rs-c911557d3dfcf5db: src/lib.rs

src/lib.rs:
