/root/repo/target/debug/deps/spack_audit-5d5632973c76898a.d: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/debug/deps/spack_audit-5d5632973c76898a: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

crates/audit/src/lib.rs:
crates/audit/src/cycles.rs:
crates/audit/src/passes.rs:
crates/audit/src/report.rs:
