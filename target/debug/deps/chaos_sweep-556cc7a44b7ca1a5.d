/root/repo/target/debug/deps/chaos_sweep-556cc7a44b7ca1a5.d: crates/bench/src/bin/chaos_sweep.rs

/root/repo/target/debug/deps/chaos_sweep-556cc7a44b7ca1a5: crates/bench/src/bin/chaos_sweep.rs

crates/bench/src/bin/chaos_sweep.rs:
