/root/repo/target/debug/deps/concretize_all-cbe2691570209a05.d: crates/repo-builtin/tests/concretize_all.rs Cargo.toml

/root/repo/target/debug/deps/libconcretize_all-cbe2691570209a05.rmeta: crates/repo-builtin/tests/concretize_all.rs Cargo.toml

crates/repo-builtin/tests/concretize_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
