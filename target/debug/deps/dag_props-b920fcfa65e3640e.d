/root/repo/target/debug/deps/dag_props-b920fcfa65e3640e.d: crates/spec/tests/dag_props.rs

/root/repo/target/debug/deps/dag_props-b920fcfa65e3640e: crates/spec/tests/dag_props.rs

crates/spec/tests/dag_props.rs:
