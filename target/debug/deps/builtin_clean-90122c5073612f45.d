/root/repo/target/debug/deps/builtin_clean-90122c5073612f45.d: crates/audit/tests/builtin_clean.rs

/root/repo/target/debug/deps/builtin_clean-90122c5073612f45: crates/audit/tests/builtin_clean.rs

crates/audit/tests/builtin_clean.rs:
