/root/repo/target/debug/deps/spack_concretize-45ed52e4985d33df.d: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

/root/repo/target/debug/deps/spack_concretize-45ed52e4985d33df: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs

crates/concretize/src/lib.rs:
crates/concretize/src/backtrack.rs:
crates/concretize/src/concretizer.rs:
crates/concretize/src/config.rs:
crates/concretize/src/error.rs:
crates/concretize/src/features.rs:
crates/concretize/src/providers.rs:
