/root/repo/target/debug/deps/spack_bench-54cf877e5f4fb7dd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_bench-54cf877e5f4fb7dd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
