/root/repo/target/debug/deps/proptest_specs-913fb338e2ff7af6.d: tests/proptest_specs.rs

/root/repo/target/debug/deps/proptest_specs-913fb338e2ff7af6: tests/proptest_specs.rs

tests/proptest_specs.rs:
