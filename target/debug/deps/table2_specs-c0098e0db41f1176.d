/root/repo/target/debug/deps/table2_specs-c0098e0db41f1176.d: crates/bench/src/bin/table2_specs.rs

/root/repo/target/debug/deps/table2_specs-c0098e0db41f1176: crates/bench/src/bin/table2_specs.rs

crates/bench/src/bin/table2_specs.rs:
