/root/repo/target/debug/deps/spec_parsing-8ce47fcbe84529e5.d: crates/bench/benches/spec_parsing.rs Cargo.toml

/root/repo/target/debug/deps/libspec_parsing-8ce47fcbe84529e5.rmeta: crates/bench/benches/spec_parsing.rs Cargo.toml

crates/bench/benches/spec_parsing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
