/root/repo/target/debug/deps/spack_bench-1e9faf25abebc219.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-1e9faf25abebc219.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-1e9faf25abebc219.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
