/root/repo/target/debug/deps/table3_ares-f55f71822a66d008.d: crates/bench/src/bin/table3_ares.rs

/root/repo/target/debug/deps/table3_ares-f55f71822a66d008: crates/bench/src/bin/table3_ares.rs

crates/bench/src/bin/table3_ares.rs:
