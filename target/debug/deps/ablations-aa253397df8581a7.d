/root/repo/target/debug/deps/ablations-aa253397df8581a7.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-aa253397df8581a7.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
