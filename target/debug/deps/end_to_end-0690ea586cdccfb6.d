/root/repo/target/debug/deps/end_to_end-0690ea586cdccfb6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0690ea586cdccfb6: tests/end_to_end.rs

tests/end_to_end.rs:
