/root/repo/target/debug/deps/spack_rs-aef1b4f1a4c6277d.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

/root/repo/target/debug/deps/spack_rs-aef1b4f1a4c6277d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
