/root/repo/target/debug/deps/spack_bench-ad5ec82532174cc0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-ad5ec82532174cc0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspack_bench-ad5ec82532174cc0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
