/root/repo/target/debug/deps/hashing-92e89b791ced1bc4.d: crates/bench/benches/hashing.rs Cargo.toml

/root/repo/target/debug/deps/libhashing-92e89b791ced1bc4.rmeta: crates/bench/benches/hashing.rs Cargo.toml

crates/bench/benches/hashing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
