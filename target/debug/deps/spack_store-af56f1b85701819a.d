/root/repo/target/debug/deps/spack_store-af56f1b85701819a.d: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs

/root/repo/target/debug/deps/spack_store-af56f1b85701819a: crates/store/src/lib.rs crates/store/src/database.rs crates/store/src/error.rs crates/store/src/extensions.rs crates/store/src/fstree.rs crates/store/src/layout.rs crates/store/src/lmod.rs crates/store/src/modules.rs crates/store/src/views.rs

crates/store/src/lib.rs:
crates/store/src/database.rs:
crates/store/src/error.rs:
crates/store/src/extensions.rs:
crates/store/src/fstree.rs:
crates/store/src/layout.rs:
crates/store/src/lmod.rs:
crates/store/src/modules.rs:
crates/store/src/views.rs:
