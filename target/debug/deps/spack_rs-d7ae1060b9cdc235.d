/root/repo/target/debug/deps/spack_rs-d7ae1060b9cdc235.d: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libspack_rs-d7ae1060b9cdc235.rmeta: crates/cli/src/main.rs crates/cli/src/commands.rs crates/cli/src/state.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/commands.rs:
crates/cli/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
