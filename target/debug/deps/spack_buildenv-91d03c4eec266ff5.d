/root/repo/target/debug/deps/spack_buildenv-91d03c4eec266ff5.d: crates/buildenv/src/lib.rs crates/buildenv/src/buildsys.rs crates/buildenv/src/compilers.rs crates/buildenv/src/faults.rs crates/buildenv/src/fetch.rs crates/buildenv/src/pipeline.rs crates/buildenv/src/platform.rs crates/buildenv/src/simfs.rs crates/buildenv/src/wrapper.rs Cargo.toml

/root/repo/target/debug/deps/libspack_buildenv-91d03c4eec266ff5.rmeta: crates/buildenv/src/lib.rs crates/buildenv/src/buildsys.rs crates/buildenv/src/compilers.rs crates/buildenv/src/faults.rs crates/buildenv/src/fetch.rs crates/buildenv/src/pipeline.rs crates/buildenv/src/platform.rs crates/buildenv/src/simfs.rs crates/buildenv/src/wrapper.rs Cargo.toml

crates/buildenv/src/lib.rs:
crates/buildenv/src/buildsys.rs:
crates/buildenv/src/compilers.rs:
crates/buildenv/src/faults.rs:
crates/buildenv/src/fetch.rs:
crates/buildenv/src/pipeline.rs:
crates/buildenv/src/platform.rs:
crates/buildenv/src/simfs.rs:
crates/buildenv/src/wrapper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
