/root/repo/target/debug/deps/table3_ares-3f1765148278e9e1.d: crates/bench/src/bin/table3_ares.rs

/root/repo/target/debug/deps/table3_ares-3f1765148278e9e1: crates/bench/src/bin/table3_ares.rs

crates/bench/src/bin/table3_ares.rs:
