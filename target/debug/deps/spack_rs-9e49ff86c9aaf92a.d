/root/repo/target/debug/deps/spack_rs-9e49ff86c9aaf92a.d: src/lib.rs

/root/repo/target/debug/deps/spack_rs-9e49ff86c9aaf92a: src/lib.rs

src/lib.rs:
