/root/repo/target/debug/deps/spack_cli-08890d975eeab541.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspack_cli-08890d975eeab541.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
