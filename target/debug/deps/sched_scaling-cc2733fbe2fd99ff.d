/root/repo/target/debug/deps/sched_scaling-cc2733fbe2fd99ff.d: crates/bench/src/bin/sched_scaling.rs

/root/repo/target/debug/deps/sched_scaling-cc2733fbe2fd99ff: crates/bench/src/bin/sched_scaling.rs

crates/bench/src/bin/sched_scaling.rs:
