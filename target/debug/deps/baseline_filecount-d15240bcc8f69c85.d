/root/repo/target/debug/deps/baseline_filecount-d15240bcc8f69c85.d: crates/bench/src/bin/baseline_filecount.rs

/root/repo/target/debug/deps/baseline_filecount-d15240bcc8f69c85: crates/bench/src/bin/baseline_filecount.rs

crates/bench/src/bin/baseline_filecount.rs:
