/root/repo/target/debug/deps/table2_specs-4b00c3896ac40efe.d: crates/bench/src/bin/table2_specs.rs

/root/repo/target/debug/deps/table2_specs-4b00c3896ac40efe: crates/bench/src/bin/table2_specs.rs

crates/bench/src/bin/table2_specs.rs:
