/root/repo/target/debug/deps/spack_cli-bdfab0b94f0c3675.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-bdfab0b94f0c3675.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libspack_cli-bdfab0b94f0c3675.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
