/root/repo/target/debug/deps/table3_ares-6e8ec28df8f64eaf.d: crates/bench/src/bin/table3_ares.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_ares-6e8ec28df8f64eaf.rmeta: crates/bench/src/bin/table3_ares.rs Cargo.toml

crates/bench/src/bin/table3_ares.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
