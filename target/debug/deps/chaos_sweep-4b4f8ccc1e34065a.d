/root/repo/target/debug/deps/chaos_sweep-4b4f8ccc1e34065a.d: crates/bench/src/bin/chaos_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_sweep-4b4f8ccc1e34065a.rmeta: crates/bench/src/bin/chaos_sweep.rs Cargo.toml

crates/bench/src/bin/chaos_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
