/root/repo/target/debug/deps/spack_repo_builtin-74a95fc26ca2ccd1.d: crates/repo-builtin/src/lib.rs crates/repo-builtin/src/helpers.rs crates/repo-builtin/src/apps.rs crates/repo-builtin/src/ares.rs crates/repo-builtin/src/blas.rs crates/repo-builtin/src/buildtools.rs crates/repo-builtin/src/compression.rs crates/repo-builtin/src/corelibs.rs crates/repo-builtin/src/io.rs crates/repo-builtin/src/lang.rs crates/repo-builtin/src/mathlibs.rs crates/repo-builtin/src/mpi.rs crates/repo-builtin/src/mpileaks.rs crates/repo-builtin/src/netlibs.rs crates/repo-builtin/src/perf.rs crates/repo-builtin/src/python.rs crates/repo-builtin/src/systools.rs crates/repo-builtin/src/tools.rs crates/repo-builtin/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libspack_repo_builtin-74a95fc26ca2ccd1.rmeta: crates/repo-builtin/src/lib.rs crates/repo-builtin/src/helpers.rs crates/repo-builtin/src/apps.rs crates/repo-builtin/src/ares.rs crates/repo-builtin/src/blas.rs crates/repo-builtin/src/buildtools.rs crates/repo-builtin/src/compression.rs crates/repo-builtin/src/corelibs.rs crates/repo-builtin/src/io.rs crates/repo-builtin/src/lang.rs crates/repo-builtin/src/mathlibs.rs crates/repo-builtin/src/mpi.rs crates/repo-builtin/src/mpileaks.rs crates/repo-builtin/src/netlibs.rs crates/repo-builtin/src/perf.rs crates/repo-builtin/src/python.rs crates/repo-builtin/src/systools.rs crates/repo-builtin/src/tools.rs crates/repo-builtin/src/viz.rs Cargo.toml

crates/repo-builtin/src/lib.rs:
crates/repo-builtin/src/helpers.rs:
crates/repo-builtin/src/apps.rs:
crates/repo-builtin/src/ares.rs:
crates/repo-builtin/src/blas.rs:
crates/repo-builtin/src/buildtools.rs:
crates/repo-builtin/src/compression.rs:
crates/repo-builtin/src/corelibs.rs:
crates/repo-builtin/src/io.rs:
crates/repo-builtin/src/lang.rs:
crates/repo-builtin/src/mathlibs.rs:
crates/repo-builtin/src/mpi.rs:
crates/repo-builtin/src/mpileaks.rs:
crates/repo-builtin/src/netlibs.rs:
crates/repo-builtin/src/perf.rs:
crates/repo-builtin/src/python.rs:
crates/repo-builtin/src/systools.rs:
crates/repo-builtin/src/tools.rs:
crates/repo-builtin/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
