/root/repo/target/debug/deps/table1_naming-196bbfcfb4e755e3.d: crates/bench/src/bin/table1_naming.rs

/root/repo/target/debug/deps/table1_naming-196bbfcfb4e755e3: crates/bench/src/bin/table1_naming.rs

crates/bench/src/bin/table1_naming.rs:
