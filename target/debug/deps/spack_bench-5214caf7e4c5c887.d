/root/repo/target/debug/deps/spack_bench-5214caf7e4c5c887.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/spack_bench-5214caf7e4c5c887: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
