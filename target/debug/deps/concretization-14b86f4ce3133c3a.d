/root/repo/target/debug/deps/concretization-14b86f4ce3133c3a.d: crates/bench/benches/concretization.rs

/root/repo/target/debug/deps/concretization-14b86f4ce3133c3a: crates/bench/benches/concretization.rs

crates/bench/benches/concretization.rs:
