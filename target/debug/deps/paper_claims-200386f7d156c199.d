/root/repo/target/debug/deps/paper_claims-200386f7d156c199.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-200386f7d156c199: tests/paper_claims.rs

tests/paper_claims.rs:
