/root/repo/target/debug/deps/dag_props-2454dd8f281d717a.d: crates/spec/tests/dag_props.rs Cargo.toml

/root/repo/target/debug/deps/libdag_props-2454dd8f281d717a.rmeta: crates/spec/tests/dag_props.rs Cargo.toml

crates/spec/tests/dag_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
