/root/repo/target/debug/deps/spack_rs-1070867ea6b37ea5.d: src/lib.rs

/root/repo/target/debug/deps/spack_rs-1070867ea6b37ea5: src/lib.rs

src/lib.rs:
