/root/repo/target/debug/deps/concretize_all-8fa6c624eeb42dac.d: crates/repo-builtin/tests/concretize_all.rs

/root/repo/target/debug/deps/concretize_all-8fa6c624eeb42dac: crates/repo-builtin/tests/concretize_all.rs

crates/repo-builtin/tests/concretize_all.rs:
