/root/repo/target/debug/deps/fuzz_parse-f9e0652fe527004f.d: crates/spec/tests/fuzz_parse.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_parse-f9e0652fe527004f.rmeta: crates/spec/tests/fuzz_parse.rs Cargo.toml

crates/spec/tests/fuzz_parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
