/root/repo/target/debug/deps/spack_concretize-4c48ca502ffbeac6.d: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs Cargo.toml

/root/repo/target/debug/deps/libspack_concretize-4c48ca502ffbeac6.rmeta: crates/concretize/src/lib.rs crates/concretize/src/backtrack.rs crates/concretize/src/concretizer.rs crates/concretize/src/config.rs crates/concretize/src/error.rs crates/concretize/src/features.rs crates/concretize/src/providers.rs Cargo.toml

crates/concretize/src/lib.rs:
crates/concretize/src/backtrack.rs:
crates/concretize/src/concretizer.rs:
crates/concretize/src/config.rs:
crates/concretize/src/error.rs:
crates/concretize/src/features.rs:
crates/concretize/src/providers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
