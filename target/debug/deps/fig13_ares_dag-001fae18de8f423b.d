/root/repo/target/debug/deps/fig13_ares_dag-001fae18de8f423b.d: crates/bench/src/bin/fig13_ares_dag.rs

/root/repo/target/debug/deps/fig13_ares_dag-001fae18de8f423b: crates/bench/src/bin/fig13_ares_dag.rs

crates/bench/src/bin/fig13_ares_dag.rs:
