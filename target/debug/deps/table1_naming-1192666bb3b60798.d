/root/repo/target/debug/deps/table1_naming-1192666bb3b60798.d: crates/bench/src/bin/table1_naming.rs

/root/repo/target/debug/deps/table1_naming-1192666bb3b60798: crates/bench/src/bin/table1_naming.rs

crates/bench/src/bin/table1_naming.rs:
