/root/repo/target/debug/deps/backtrack-9d6093925922db04.d: crates/concretize/tests/backtrack.rs Cargo.toml

/root/repo/target/debug/deps/libbacktrack-9d6093925922db04.rmeta: crates/concretize/tests/backtrack.rs Cargo.toml

crates/concretize/tests/backtrack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
