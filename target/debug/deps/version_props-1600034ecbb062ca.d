/root/repo/target/debug/deps/version_props-1600034ecbb062ca.d: crates/spec/tests/version_props.rs Cargo.toml

/root/repo/target/debug/deps/libversion_props-1600034ecbb062ca.rmeta: crates/spec/tests/version_props.rs Cargo.toml

crates/spec/tests/version_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
