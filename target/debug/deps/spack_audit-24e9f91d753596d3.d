/root/repo/target/debug/deps/spack_audit-24e9f91d753596d3.d: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

/root/repo/target/debug/deps/spack_audit-24e9f91d753596d3: crates/audit/src/lib.rs crates/audit/src/cycles.rs crates/audit/src/passes.rs crates/audit/src/report.rs

crates/audit/src/lib.rs:
crates/audit/src/cycles.rs:
crates/audit/src/passes.rs:
crates/audit/src/report.rs:
