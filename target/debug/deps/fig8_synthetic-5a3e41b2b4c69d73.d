/root/repo/target/debug/deps/fig8_synthetic-5a3e41b2b4c69d73.d: crates/bench/src/bin/fig8_synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_synthetic-5a3e41b2b4c69d73.rmeta: crates/bench/src/bin/fig8_synthetic.rs Cargo.toml

crates/bench/src/bin/fig8_synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
