/root/repo/target/debug/deps/concretization-ba11cdaeb454b37d.d: crates/bench/benches/concretization.rs Cargo.toml

/root/repo/target/debug/deps/libconcretization-ba11cdaeb454b37d.rmeta: crates/bench/benches/concretization.rs Cargo.toml

crates/bench/benches/concretization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
