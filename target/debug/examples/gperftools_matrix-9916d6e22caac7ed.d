/root/repo/target/debug/examples/gperftools_matrix-9916d6e22caac7ed.d: examples/gperftools_matrix.rs

/root/repo/target/debug/examples/gperftools_matrix-9916d6e22caac7ed: examples/gperftools_matrix.rs

examples/gperftools_matrix.rs:
