/root/repo/target/debug/examples/ares_stack-b1105281785cb1a0.d: examples/ares_stack.rs Cargo.toml

/root/repo/target/debug/examples/libares_stack-b1105281785cb1a0.rmeta: examples/ares_stack.rs Cargo.toml

examples/ares_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
