/root/repo/target/debug/examples/site_policies-adc624f6a12b81de.d: examples/site_policies.rs

/root/repo/target/debug/examples/site_policies-adc624f6a12b81de: examples/site_policies.rs

examples/site_policies.rs:
