/root/repo/target/debug/examples/probe-9957f20b8fb93262.d: crates/audit/examples/probe.rs

/root/repo/target/debug/examples/probe-9957f20b8fb93262: crates/audit/examples/probe.rs

crates/audit/examples/probe.rs:
