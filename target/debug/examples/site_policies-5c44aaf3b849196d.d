/root/repo/target/debug/examples/site_policies-5c44aaf3b849196d.d: examples/site_policies.rs Cargo.toml

/root/repo/target/debug/examples/libsite_policies-5c44aaf3b849196d.rmeta: examples/site_policies.rs Cargo.toml

examples/site_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
