/root/repo/target/debug/examples/audit_repo-7a4d0ea30f69869e.d: examples/audit_repo.rs

/root/repo/target/debug/examples/audit_repo-7a4d0ea30f69869e: examples/audit_repo.rs

examples/audit_repo.rs:
