/root/repo/target/debug/examples/python_extensions-83c72dd9c3c4cf14.d: examples/python_extensions.rs Cargo.toml

/root/repo/target/debug/examples/libpython_extensions-83c72dd9c3c4cf14.rmeta: examples/python_extensions.rs Cargo.toml

examples/python_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
