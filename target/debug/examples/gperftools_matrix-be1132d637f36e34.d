/root/repo/target/debug/examples/gperftools_matrix-be1132d637f36e34.d: examples/gperftools_matrix.rs

/root/repo/target/debug/examples/gperftools_matrix-be1132d637f36e34: examples/gperftools_matrix.rs

examples/gperftools_matrix.rs:
