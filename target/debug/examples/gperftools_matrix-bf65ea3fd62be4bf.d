/root/repo/target/debug/examples/gperftools_matrix-bf65ea3fd62be4bf.d: examples/gperftools_matrix.rs Cargo.toml

/root/repo/target/debug/examples/libgperftools_matrix-bf65ea3fd62be4bf.rmeta: examples/gperftools_matrix.rs Cargo.toml

examples/gperftools_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
