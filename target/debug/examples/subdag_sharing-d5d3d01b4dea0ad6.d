/root/repo/target/debug/examples/subdag_sharing-d5d3d01b4dea0ad6.d: examples/subdag_sharing.rs

/root/repo/target/debug/examples/subdag_sharing-d5d3d01b4dea0ad6: examples/subdag_sharing.rs

examples/subdag_sharing.rs:
