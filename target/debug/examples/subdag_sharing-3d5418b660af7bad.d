/root/repo/target/debug/examples/subdag_sharing-3d5418b660af7bad.d: examples/subdag_sharing.rs Cargo.toml

/root/repo/target/debug/examples/libsubdag_sharing-3d5418b660af7bad.rmeta: examples/subdag_sharing.rs Cargo.toml

examples/subdag_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
