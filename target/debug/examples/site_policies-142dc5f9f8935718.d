/root/repo/target/debug/examples/site_policies-142dc5f9f8935718.d: examples/site_policies.rs

/root/repo/target/debug/examples/site_policies-142dc5f9f8935718: examples/site_policies.rs

examples/site_policies.rs:
