/root/repo/target/debug/examples/quickstart-727279e645e86c98.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-727279e645e86c98.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
