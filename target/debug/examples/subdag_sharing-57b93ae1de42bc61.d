/root/repo/target/debug/examples/subdag_sharing-57b93ae1de42bc61.d: examples/subdag_sharing.rs

/root/repo/target/debug/examples/subdag_sharing-57b93ae1de42bc61: examples/subdag_sharing.rs

examples/subdag_sharing.rs:
