/root/repo/target/debug/examples/gperftools_matrix-c1cbdf5fd4d199e8.d: examples/gperftools_matrix.rs

/root/repo/target/debug/examples/gperftools_matrix-c1cbdf5fd4d199e8: examples/gperftools_matrix.rs

examples/gperftools_matrix.rs:
