/root/repo/target/debug/examples/audit_repo-2153f67ecf0960c9.d: examples/audit_repo.rs Cargo.toml

/root/repo/target/debug/examples/libaudit_repo-2153f67ecf0960c9.rmeta: examples/audit_repo.rs Cargo.toml

examples/audit_repo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
