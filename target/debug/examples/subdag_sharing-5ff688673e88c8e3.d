/root/repo/target/debug/examples/subdag_sharing-5ff688673e88c8e3.d: examples/subdag_sharing.rs

/root/repo/target/debug/examples/subdag_sharing-5ff688673e88c8e3: examples/subdag_sharing.rs

examples/subdag_sharing.rs:
