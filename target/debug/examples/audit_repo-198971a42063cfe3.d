/root/repo/target/debug/examples/audit_repo-198971a42063cfe3.d: examples/audit_repo.rs

/root/repo/target/debug/examples/audit_repo-198971a42063cfe3: examples/audit_repo.rs

examples/audit_repo.rs:
