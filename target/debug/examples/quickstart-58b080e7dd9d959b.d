/root/repo/target/debug/examples/quickstart-58b080e7dd9d959b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-58b080e7dd9d959b: examples/quickstart.rs

examples/quickstart.rs:
