/root/repo/target/debug/examples/gperftools_matrix-b8c5aa3ea1916fa8.d: examples/gperftools_matrix.rs

/root/repo/target/debug/examples/gperftools_matrix-b8c5aa3ea1916fa8: examples/gperftools_matrix.rs

examples/gperftools_matrix.rs:
