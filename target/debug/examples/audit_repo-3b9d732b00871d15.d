/root/repo/target/debug/examples/audit_repo-3b9d732b00871d15.d: examples/audit_repo.rs

/root/repo/target/debug/examples/audit_repo-3b9d732b00871d15: examples/audit_repo.rs

examples/audit_repo.rs:
