/root/repo/target/debug/examples/site_policies-f48269267d2c70ab.d: examples/site_policies.rs

/root/repo/target/debug/examples/site_policies-f48269267d2c70ab: examples/site_policies.rs

examples/site_policies.rs:
