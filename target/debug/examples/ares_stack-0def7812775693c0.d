/root/repo/target/debug/examples/ares_stack-0def7812775693c0.d: examples/ares_stack.rs

/root/repo/target/debug/examples/ares_stack-0def7812775693c0: examples/ares_stack.rs

examples/ares_stack.rs:
