/root/repo/target/debug/examples/subdag_sharing-e6a399d2c6322f95.d: examples/subdag_sharing.rs Cargo.toml

/root/repo/target/debug/examples/libsubdag_sharing-e6a399d2c6322f95.rmeta: examples/subdag_sharing.rs Cargo.toml

examples/subdag_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
