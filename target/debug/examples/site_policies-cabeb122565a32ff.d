/root/repo/target/debug/examples/site_policies-cabeb122565a32ff.d: examples/site_policies.rs

/root/repo/target/debug/examples/site_policies-cabeb122565a32ff: examples/site_policies.rs

examples/site_policies.rs:
