/root/repo/target/debug/examples/python_extensions-826dfa5ab83a794d.d: examples/python_extensions.rs

/root/repo/target/debug/examples/python_extensions-826dfa5ab83a794d: examples/python_extensions.rs

examples/python_extensions.rs:
