/root/repo/target/debug/examples/python_extensions-4b56dfdc1138b69e.d: examples/python_extensions.rs

/root/repo/target/debug/examples/python_extensions-4b56dfdc1138b69e: examples/python_extensions.rs

examples/python_extensions.rs:
