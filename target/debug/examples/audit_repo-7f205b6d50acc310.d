/root/repo/target/debug/examples/audit_repo-7f205b6d50acc310.d: examples/audit_repo.rs Cargo.toml

/root/repo/target/debug/examples/libaudit_repo-7f205b6d50acc310.rmeta: examples/audit_repo.rs Cargo.toml

examples/audit_repo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
