/root/repo/target/debug/examples/python_extensions-481dc8c4648dba11.d: examples/python_extensions.rs

/root/repo/target/debug/examples/python_extensions-481dc8c4648dba11: examples/python_extensions.rs

examples/python_extensions.rs:
