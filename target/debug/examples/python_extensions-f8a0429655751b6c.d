/root/repo/target/debug/examples/python_extensions-f8a0429655751b6c.d: examples/python_extensions.rs

/root/repo/target/debug/examples/python_extensions-f8a0429655751b6c: examples/python_extensions.rs

examples/python_extensions.rs:
