/root/repo/target/debug/examples/subdag_sharing-e5596c7d00802d49.d: examples/subdag_sharing.rs

/root/repo/target/debug/examples/subdag_sharing-e5596c7d00802d49: examples/subdag_sharing.rs

examples/subdag_sharing.rs:
