/root/repo/target/debug/examples/ares_stack-2d782acaec2637fd.d: examples/ares_stack.rs Cargo.toml

/root/repo/target/debug/examples/libares_stack-2d782acaec2637fd.rmeta: examples/ares_stack.rs Cargo.toml

examples/ares_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
