/root/repo/target/debug/examples/quickstart-67180639660e9007.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-67180639660e9007: examples/quickstart.rs

examples/quickstart.rs:
