/root/repo/target/debug/examples/ares_stack-4823182b0fc9ed19.d: examples/ares_stack.rs

/root/repo/target/debug/examples/ares_stack-4823182b0fc9ed19: examples/ares_stack.rs

examples/ares_stack.rs:
