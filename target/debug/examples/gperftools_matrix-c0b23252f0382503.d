/root/repo/target/debug/examples/gperftools_matrix-c0b23252f0382503.d: examples/gperftools_matrix.rs Cargo.toml

/root/repo/target/debug/examples/libgperftools_matrix-c0b23252f0382503.rmeta: examples/gperftools_matrix.rs Cargo.toml

examples/gperftools_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
