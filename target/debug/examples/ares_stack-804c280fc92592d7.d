/root/repo/target/debug/examples/ares_stack-804c280fc92592d7.d: examples/ares_stack.rs

/root/repo/target/debug/examples/ares_stack-804c280fc92592d7: examples/ares_stack.rs

examples/ares_stack.rs:
