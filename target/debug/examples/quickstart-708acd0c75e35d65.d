/root/repo/target/debug/examples/quickstart-708acd0c75e35d65.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-708acd0c75e35d65: examples/quickstart.rs

examples/quickstart.rs:
