/root/repo/target/debug/examples/python_extensions-8993d764de1ec3e0.d: examples/python_extensions.rs Cargo.toml

/root/repo/target/debug/examples/libpython_extensions-8993d764de1ec3e0.rmeta: examples/python_extensions.rs Cargo.toml

examples/python_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
