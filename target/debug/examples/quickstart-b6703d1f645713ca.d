/root/repo/target/debug/examples/quickstart-b6703d1f645713ca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b6703d1f645713ca: examples/quickstart.rs

examples/quickstart.rs:
