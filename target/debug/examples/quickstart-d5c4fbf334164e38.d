/root/repo/target/debug/examples/quickstart-d5c4fbf334164e38.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d5c4fbf334164e38.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
