/root/repo/target/debug/examples/ares_stack-a8d859dabb07ffde.d: examples/ares_stack.rs

/root/repo/target/debug/examples/ares_stack-a8d859dabb07ffde: examples/ares_stack.rs

examples/ares_stack.rs:
