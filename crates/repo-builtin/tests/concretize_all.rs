//! Whole-repository concretization: every builtin package must concretize
//! under a realistic site configuration (the precondition for the Fig. 8
//! experiment), and the ARES stack must reproduce §4.4's numbers.

use spack_concretize::{Concretizer, Config};
use spack_repo_builtin::repo_stack;
use spack_spec::Spec;

fn site_config() -> Config {
    let mut c = Config::new();
    c.register_compiler("gcc", "4.9.3", &[]);
    c.register_compiler("gcc", "4.7.4", &[]);
    c.register_compiler("intel", "14.0.4", &[]);
    c.register_compiler("intel", "15.0.1", &[]);
    c.register_compiler("clang", "3.6.2", &[]);
    c.register_compiler("pgi", "15.4", &[]);
    c.register_compiler("xl", "12.1", &["bgq"]);
    c.push_scope_text(
        "site",
        "arch = linux-x86_64\n\
         compiler = gcc\n\
         providers mpi = mvapich2,openmpi,mpich\n\
         providers blas = netlib-blas\n\
         providers lapack = netlib-lapack\n\
         providers fft = fftw\n",
    )
    .unwrap();
    c
}

#[test]
fn every_builtin_package_concretizes() {
    let repos = repo_stack();
    let config = site_config();
    let c = Concretizer::new(&repos, &config);
    let mut failures = Vec::new();
    let mut max_nodes = 0usize;
    for name in repos.package_names() {
        match c.concretize(&Spec::named(&name)) {
            Ok(dag) => max_nodes = max_nodes.max(dag.len()),
            Err(e) => failures.push(format!("{name}: {e}")),
        }
    }
    assert!(failures.is_empty(), "failed:\n{}", failures.join("\n"));
    assert!(max_nodes >= 40, "largest DAG only {max_nodes} nodes");
}

#[test]
fn ares_stack_has_47_packages() {
    // §4.4: "ARES comprises 47 packages, with complex dependency
    // relationships."
    let repos = repo_stack();
    let config = site_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("ares").unwrap())
        .unwrap();
    let names: Vec<&str> = dag.package_names();
    assert_eq!(dag.len(), 47, "ARES closure: {names:?}");
    // The root depends on LLNL physics, math, utility, and externals.
    for expected in [
        "matprop",
        "leos",
        "teton",
        "cretin",
        "cheetah", // physics
        "samrai",
        "hypre",
        "overlink",
        "qd", // math/meshing
        "silo",
        "bdivxml",
        "scallop",
        "timers", // utility
        "python",
        "py-numpy",
        "py-scipy",
        "tcl",
        "tk", // externals
        "boost",
        "hdf5",
        "gsl",
        "ga",
        "hpdf",
        "opclient",
        "netlib-lapack",
        "netlib-blas", // resolved virtuals
    ] {
        assert!(dag.by_name(expected).is_some(), "ARES missing {expected}");
    }
    // One MPI implementation, chosen by site policy.
    assert!(dag.by_name("mvapich2").is_some());
}

#[test]
fn ares_lite_is_smaller() {
    let repos = repo_stack();
    let config = site_config();
    let c = Concretizer::new(&repos, &config);
    let full = c.concretize(&Spec::parse("ares").unwrap()).unwrap();
    let lite = c.concretize(&Spec::parse("ares+lite").unwrap()).unwrap();
    assert!(
        lite.len() < full.len(),
        "lite ({}) must drop dependencies vs full ({})",
        lite.len(),
        full.len()
    );
    assert!(lite.by_name("laser").is_none());
    assert!(lite.by_name("py-scipy").is_none());
}

#[test]
fn ares_develop_tracks_newer_dependencies() {
    let repos = repo_stack();
    let config = site_config();
    let c = Concretizer::new(&repos, &config);
    let dev = c.concretize(&Spec::parse("ares@develop").unwrap()).unwrap();
    let cur = c.concretize(&Spec::parse("ares@2015.06").unwrap()).unwrap();
    let samrai_dev = dev.node(dev.by_name("samrai").unwrap());
    let samrai_cur = cur.node(cur.by_name("samrai").unwrap());
    assert_eq!(samrai_dev.version.to_string(), "3.10.0");
    assert_eq!(samrai_cur.version.to_string(), "3.9.1");
}

#[test]
fn mpileaks_fig7_shape_from_builtin_repo() {
    let repos = repo_stack();
    let config = site_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("mpileaks ^mpich@3.0.4").unwrap())
        .unwrap();
    for pkg in [
        "mpileaks", "callpath", "dyninst", "libdwarf", "libelf", "mpich",
    ] {
        assert!(dag.by_name(pkg).is_some(), "missing {pkg}");
    }
    let mpich = dag.node(dag.by_name("mpich").unwrap());
    assert_eq!(mpich.version.to_string(), "3.0.4");
}

#[test]
fn openspeedshop_is_a_large_dag() {
    // One of the biggest DAGs in 2015 Spack — the right-hand tail of
    // Fig. 8.
    let repos = repo_stack();
    let config = site_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("openspeedshop").unwrap())
        .unwrap();
    assert!(dag.len() >= 18, "openspeedshop DAG has {} nodes", dag.len());
}
