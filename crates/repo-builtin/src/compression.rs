//! Compression libraries and archivers.

use spack_package::Repository;

use crate::helpers::{wl, wl_small, wl_tiny};
use crate::pkg;

/// Register compression packages.
pub fn register(r: &mut Repository) {
    pkg!(r, "zlib", ["1.2.8"],
        .describe("Massively-spiffy yet delicately-unobtrusive compression library."),
        .homepage("https://zlib.net"),
        .url_model("https://zlib.net/zlib-1.2.8.tar.gz"),
        .workload(wl(15, 1, 60, 12, 50, 8)));

    pkg!(r, "bzip2", ["1.0.6"],
        .describe("High-quality block-sorting file compressor."),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl(12, 1, 5, 10, 20, 6)));

    pkg!(r, "xz", ["5.2.0", "5.2.2"],
        .describe("LZMA compression tools and liblzma."),
        .workload(wl_small()));

    pkg!(r, "lz4", ["131"],
        .describe("Extremely fast compression algorithm."),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_tiny()));

    pkg!(r, "snappy", ["1.1.3"],
        .describe("Fast compressor/decompressor from Google."),
        .workload(wl_tiny()));

    pkg!(r, "szip", ["2.1"],
        .describe("Science-data lossless compression (HDF extended-rice)."),
        .workload(wl_tiny()));

    pkg!(r, "gzip", ["1.6"],
        .describe("GNU compression utility."),
        .workload(wl_tiny()));

    pkg!(r, "tar", ["1.28"],
        .describe("GNU tape archiver."),
        .workload(wl_small()));

    pkg!(r, "zip", ["3.0"],
        .describe("Info-ZIP compressor."),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_tiny()));

    pkg!(r, "unzip", ["6.0"],
        .describe("Info-ZIP decompressor."),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_tiny()));
}
