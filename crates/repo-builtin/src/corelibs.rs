//! Core system libraries: terminal, crypto, parsing, networking.

use spack_package::Repository;

use crate::helpers::{wl, wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register core libraries.
pub fn register(r: &mut Repository) {
    pkg!(r, "ncurses", ["5.9", "6.0"],
        .describe("Terminal-independent character-screen handling."),
        .homepage("https://invisible-island.net/ncurses"),
        .workload(wl_small()));

    pkg!(r, "readline", ["6.3"],
        .describe("GNU command-line editing library."),
        .depends_on("ncurses"),
        .workload(wl_small()));

    pkg!(r, "sqlite", ["3.8.5", "3.9.2"],
        .describe("Self-contained serverless SQL database engine."),
        .workload(wl(90, 3, 130, 15, 60, 20)));

    pkg!(r, "openssl", ["1.0.1h", "1.0.2e"],
        .describe("TLS/SSL toolkit and general-purpose crypto library."),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "libxml2", ["2.9.2"],
        .describe("XML parsing library."),
        .variant("python", false, "Python bindings"),
        .depends_on("zlib"),
        .depends_on("xz"),
        .depends_on_when("python", "+python"),
        .workload(wl_small()));

    pkg!(r, "libxslt", ["1.1.28"],
        .describe("XSLT processing library."),
        .depends_on("libxml2"),
        .workload(wl_small()));

    pkg!(r, "expat", ["2.1.0"],
        .describe("Stream-oriented XML parser."),
        .workload(wl_tiny()));

    pkg!(r, "curl", ["7.42.1", "7.46.0"],
        .describe("Client-side URL transfer library and tool."),
        .depends_on("openssl"),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "wget", ["1.16"],
        .describe("Non-interactive network downloader."),
        .depends_on("openssl"),
        .workload(wl_small()));

    pkg!(r, "pcre", ["8.36", "8.38"],
        .describe("Perl-compatible regular expressions."),
        .workload(wl_small()));

    pkg!(r, "icu4c", ["54.1"],
        .describe("Unicode and globalization library for C/C++."),
        .workload(wl_medium()));

    pkg!(r, "libiconv", ["1.14"],
        .describe("Character-set conversion library."),
        .workload(wl_small()));

    pkg!(r, "libffi", ["3.2.1"],
        .describe("Portable foreign-function interface library."),
        .workload(wl_tiny()));

    pkg!(r, "libedit", ["3.1"],
        .describe("BSD line-editing library."),
        .depends_on("ncurses"),
        .workload(wl_tiny()));

    pkg!(r, "libuuid", ["1.0.3"],
        .describe("Portable UUID generation library."),
        .workload(wl_tiny()));

    pkg!(r, "boost", ["1.54.0", "1.55.0", "1.59.0"],
        .describe("Peer-reviewed portable C++ source libraries (the paper's 3.2.2 example of a pinned user constraint)."),
        .homepage("https://www.boost.org"),
        .url_model("https://downloads.sourceforge.net/project/boost/boost/1.59.0/boost_1_59_0.tar.bz2"),
        .variant("mpi", false, "Build Boost.MPI"),
        .variant("python", false, "Build Boost.Python"),
        .depends_on("bzip2"),
        .depends_on("zlib"),
        .depends_on_when("mpi", "+mpi"),
        .depends_on_when("python", "+python"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl(900, 3, 60, 600, 40, 60)));

    pkg!(r, "jemalloc", ["4.0.4"],
        .describe("Scalable concurrent malloc implementation."),
        .workload(wl_small()));

    pkg!(r, "libpng", ["1.2.51", "1.5.13", "1.6.16"],
        .describe("Official PNG reference library."),
        .homepage("http://www.libpng.org"),
        .url_model("https://download.sourceforge.net/libpng/libpng-1.6.16.tar.gz"),
        .depends_on("zlib"),
        // Fig. 10: ~35 s build dominated by an autoconf/libtool configure
        // storm — the worst NFS overhead of the seven (62.7%).
        .workload(wl(24, 4, 150, 22, 225, 16)));

    pkg!(r, "libjpeg-turbo", ["1.3.1"],
        .describe("SIMD-accelerated JPEG codec."),
        .workload(wl_small()));

    pkg!(r, "libtiff", ["4.0.3"],
        .describe("TIFF image format library."),
        .depends_on("libjpeg-turbo"),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "libmng", ["2.0.2"],
        .describe("Multiple-image Network Graphics reference library."),
        .depends_on("libjpeg-turbo"),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "giflib", ["5.1.1"],
        .describe("GIF image codec library."),
        .workload(wl_tiny()));
}
