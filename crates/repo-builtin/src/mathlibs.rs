//! Math libraries and solvers: the heart of the HPC dependency jungle.

use spack_package::Repository;

use crate::helpers::{wl_huge, wl_medium, wl_small};
use crate::pkg;

/// Register math libraries.
pub fn register(r: &mut Repository) {
    pkg!(r, "gsl", ["1.16", "2.0"],
        .describe("GNU Scientific Library."),
        .homepage("https://www.gnu.org/software/gsl"),
        .workload(wl_medium()));

    pkg!(r, "fftw", ["3.3.4"],
        .describe("Fastest Fourier Transform in the West."),
        .homepage("http://www.fftw.org"),
        .variant("mpi", true, "Distributed-memory transforms"),
        .variant("openmp", false, "OpenMP threads"),
        .provides("fft"),
        .depends_on_when("mpi", "+mpi"),
        .workload(wl_medium()));

    pkg!(r, "metis", ["5.1.0"],
        .describe("Serial graph partitioning and fill-reducing ordering."),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "parmetis", ["4.0.3"],
        .describe("Parallel graph partitioning."),
        .depends_on("metis"),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "scotch", ["6.0.3"],
        .describe("Graph/mesh partitioning and sparse matrix ordering."),
        .variant("mpi", true, "Build PT-Scotch"),
        .depends_on("zlib"),
        .depends_on("flex"),
        .depends_on("bison"),
        .depends_on_when("mpi", "+mpi"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "mumps", ["5.0.1"],
        .describe("Multifrontal massively parallel sparse direct solver."),
        .variant("mpi", true, "Parallel solver"),
        .depends_on("blas"),
        .depends_on("scotch"),
        .depends_on_when("parmetis", "+mpi"),
        .depends_on_when("mpi", "+mpi"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "superlu", ["4.3"],
        .describe("Sequential sparse direct solver."),
        .depends_on("blas"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_small()));

    pkg!(r, "superlu-dist", ["4.1"],
        .describe("Distributed-memory sparse direct solver."),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("parmetis"),
        .depends_on("mpi"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "arpack-ng", ["3.3.0"],
        .describe("Large-scale eigenvalue problems (ARPACK rewrite)."),
        .variant("mpi", false, "Parallel PARPACK"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on_when("mpi", "+mpi"),
        .workload(wl_small()));

    pkg!(r, "suite-sparse", ["4.4.5"],
        .describe("Sparse matrix algorithms (CHOLMOD, UMFPACK, ...)."),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("metis"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "qhull", ["2012.1"],
        .describe("Convex hulls, Delaunay triangulations, Voronoi diagrams."),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "glpk", ["4.57"],
        .describe("GNU linear programming kit."),
        .depends_on("gmp"),
        .workload(wl_small()));

    pkg!(r, "gmp", ["6.0.0a", "6.1.0"],
        .describe("GNU multiple-precision arithmetic."),
        .workload(wl_small()));

    pkg!(r, "mpfr", ["3.1.3"],
        .describe("Multiple-precision floating point with correct rounding."),
        .depends_on("gmp"),
        .workload(wl_small()));

    pkg!(r, "mpc", ["1.0.3"],
        .describe("Complex arithmetic with arbitrary precision."),
        .depends_on("gmp"),
        .depends_on("mpfr"),
        .workload(wl_small()));

    pkg!(r, "isl", ["0.14"],
        .describe("Integer set library for polyhedral compilation."),
        .depends_on("gmp"),
        .workload(wl_small()));

    pkg!(r, "petsc", ["3.5.3", "3.6.3"],
        .describe("Portable extensible toolkit for scientific computation."),
        .homepage("https://www.mcs.anl.gov/petsc"),
        .variant("hdf5", true, "HDF5 I/O"),
        .variant("hypre", true, "Hypre preconditioners"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("mpi"),
        .depends_on("metis"),
        .depends_on("parmetis"),
        .depends_on_when("hdf5+mpi", "+hdf5"),
        .depends_on_when("hypre", "+hypre"),
        .depends_on("superlu-dist"),
        .workload(wl_huge()));

    pkg!(r, "slepc", ["3.6.2"],
        .describe("Scalable eigenvalue computations on PETSc."),
        .depends_on("petsc"),
        .depends_on("arpack-ng"),
        .workload(wl_medium()));

    pkg!(r, "trilinos", ["11.14.3", "12.4.2"],
        .describe("Sandia's parallel solver framework."),
        .homepage("https://trilinos.org"),
        .variant("mpi", true, "Parallel build"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("boost"),
        .depends_on("netcdf"),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_huge()));

    pkg!(r, "hypre", ["2.10.0b", "2.10.1"],
        .describe("Scalable linear solvers and multigrid (LLNL; Fig. 13 math)."),
        .homepage("https://computation.llnl.gov/projects/hypre"),
        .category("math"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("mpi"),
        .workload(wl_medium()));

    pkg!(r, "sundials", ["2.6.2"],
        .describe("Nonlinear and differential/algebraic equation solvers (LLNL)."),
        .depends_on("mpi"),
        .depends_on("blas"),
        .depends_on_build("cmake"),
        .workload(wl_medium()));

    pkg!(r, "qd", ["2.3.17"],
        .describe("Double-double and quad-double arithmetic (LLNL; Fig. 13 math)."),
        .category("math"),
        .workload(wl_small()));

    pkg!(r, "samrai", ["3.9.1", "3.10.0"],
        .describe("Structured adaptive mesh refinement application infrastructure (LLNL; Fig. 13 math/meshing)."),
        .homepage("https://computation.llnl.gov/projects/samrai"),
        .category("math"),
        .depends_on("hdf5"),
        .depends_on("boost"),
        .depends_on("mpi"),
        .workload(wl_medium()));

    pkg!(r, "overlink", ["1.0"],
        .describe("Overlap remap/link library for multi-physics coupling (LLNL; Fig. 13 math/meshing)."),
        .category("math"),
        .depends_on("silo"),
        .workload(wl_small()));

    pkg!(r, "ga", ["5.3", "5.4"],
        .describe("Global Arrays shared-memory programming model."),
        .depends_on("mpi"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .workload(wl_medium()));
}
