//! Scientific applications and larger frameworks.

use spack_package::Repository;

use crate::helpers::{wl_huge, wl_medium, wl_small};
use crate::pkg;

/// Register applications.
pub fn register(r: &mut Repository) {
    pkg!(r, "gromacs", ["5.1.1"],
        .describe("Molecular dynamics for biomolecular systems."),
        .variant("mpi", true, "Domain-decomposition parallelism"),
        .depends_on("fftw"),
        .depends_on_when("mpi", "+mpi"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_huge()));

    pkg!(r, "lammps", ["2015.08.10"],
        .describe("Large-scale atomic/molecular massively parallel simulator."),
        .depends_on("mpi"),
        .depends_on("fftw"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_huge()));

    pkg!(r, "quantum-espresso", ["5.3.0"],
        .describe("Electronic-structure calculations with plane waves."),
        .depends_on("mpi"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("fftw"),
        .workload(wl_huge()));

    pkg!(r, "abinit", ["7.10.5"],
        .describe("DFT electronic structure package."),
        .depends_on("mpi"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("netcdf-fortran"),
        .workload(wl_huge()));

    pkg!(r, "openfoam", ["2.4.0"],
        .describe("Computational fluid dynamics toolbox."),
        .depends_on("mpi"),
        .depends_on("scotch"),
        .depends_on("zlib"),
        .workload(wl_huge()));

    // Fig. 5's constrained dependent, with its real CFD identity.
    pkg!(r, "gerris", ["1.3.2"],
        .describe("Computational fluid dynamics solver needing MPI-2 or higher (Fig. 5)."),
        .conflicts("%xl", "gerris does not build with XL compilers"),
        .depends_on("mpi@2:"),
        .depends_on("gsl"),
        .depends_on("glib"),
        .workload(wl_medium()));

    pkg!(r, "rose", ["0.9.6a"],
        .describe("Compiler-infrastructure for source transformation (LLNL; the 3.2.4 boost-pinning example)."),
        .homepage("http://rosecompiler.org"),
        .depends_on_when("boost@1.54.0", "%gcc@:4"),
        .depends_on_when("boost@1.59.0", "%gcc@5:"),
        .depends_on("libtool"),
        .workload(wl_huge()));

    pkg!(r, "cram", ["1.0.1"],
        .describe("Runs many small MPI jobs inside one large allocation (LLNL)."),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "scr", ["1.1.8"],
        .describe("Scalable checkpoint/restart library (LLNL)."),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "spindle", ["0.8.1"],
        .describe("Scalable dynamic-library loading for HPC (LLNL)."),
        .depends_on("launchmon"),
        .workload(wl_small()));

    pkg!(r, "datalib", ["1.0"],
        .describe("LLNL data management utility library."),
        .category("utility"),
        .depends_on("hdf5"),
        .workload(wl_small()));

    pkg!(r, "espresso-tool", ["0.4"],
        .describe("Logic minimization tool."),
        .workload(wl_small()));

    pkg!(r, "sundance", ["2.4.5"],
        .describe("PDE simulation on Trilinos."),
        .depends_on("trilinos"),
        .depends_on("mpi"),
        .workload(wl_medium()));

    pkg!(r, "octave", ["4.0.0"],
        .describe("GNU high-level numerical computation language."),
        .depends_on("blas"),
        .depends_on("lapack"),
        .depends_on("readline"),
        .depends_on("pcre"),
        .depends_on("fftw"),
        .depends_on("hdf5"),
        .depends_on("gnuplot"),
        .workload(wl_huge()));

    pkg!(r, "netgauge", ["2.4.6"],
        .describe("Network performance measurement toolkit."),
        .depends_on("mpi"),
        .workload(wl_small()));

    pkg!(r, "osu-micro-benchmarks", ["5.0"],
        .describe("OSU MPI point-to-point and collective benchmarks."),
        .depends_on("mpi"),
        .workload(wl_small()));
}
