//! Build tooling: autotools, CMake, generators, and documentation tools.

use spack_package::BuildRecipe;
use spack_package::Repository;

use crate::helpers::{wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register build tools.
pub fn register(r: &mut Repository) {
    pkg!(r, "cmake", ["2.8.10.2", "3.0.2", "3.4.0"],
        .describe("Cross-platform build-system generator."),
        .homepage("https://www.cmake.org"),
        .url_model("https://cmake.org/files/v3.4/cmake-3.4.0.tar.gz"),
        .variant("qt", false, "Build the Qt GUI"),
        .depends_on("ncurses"),
        .depends_on_when("qt", "+qt"),
        .workload(wl_medium()));

    pkg!(r, "autoconf", ["2.69"],
        .describe("GNU configure-script generator."),
        .depends_on("m4"),
        .depends_on_run("perl"),
        .workload(wl_tiny()));

    pkg!(r, "automake", ["1.14.1", "1.15"],
        .describe("GNU Makefile generator."),
        .depends_on("autoconf"),
        .workload(wl_tiny()));

    pkg!(r, "libtool", ["2.4.2", "2.4.6"],
        .describe("GNU shared-library support script."),
        .depends_on("m4"),
        .workload(wl_tiny()));

    pkg!(r, "m4", ["1.4.17"],
        .describe("GNU macro processor."),
        .depends_on("libsigsegv"),
        .workload(wl_small()));

    pkg!(r, "libsigsegv", ["2.10"],
        .describe("Page-fault handling library."),
        .workload(wl_tiny()));

    pkg!(r, "pkg-config", ["0.28"],
        .describe("Helper returning metadata about installed libraries."),
        .workload(wl_small()));

    pkg!(r, "flex", ["2.5.39"],
        .describe("Fast lexical analyzer generator."),
        .depends_on("bison"),
        .workload(wl_small()));

    pkg!(r, "bison", ["3.0.4"],
        .describe("GNU parser generator."),
        .depends_on("m4"),
        .workload(wl_small()));

    pkg!(r, "swig", ["3.0.2", "3.0.8"],
        .describe("Interface compiler connecting C/C++ with scripting languages."),
        .depends_on("pcre"),
        .workload(wl_small()));

    pkg!(r, "gperf", ["3.0.4"],
        .describe("Perfect hash function generator."),
        .workload(wl_tiny()));

    pkg!(r, "ninja", ["1.6.0"],
        .describe("Small, fast build system."),
        .depends_on_run("python"),
        .workload(wl_small()));

    pkg!(r, "doxygen", ["1.8.10"],
        .describe("Source-code documentation generator."),
        .depends_on("flex"),
        .depends_on("bison"),
        .workload(wl_medium()));

    pkg!(r, "gettext", ["0.19.6"],
        .describe("GNU internationalization runtime and tools."),
        .depends_on("libiconv"),
        .workload(wl_medium()));

    pkg!(r, "help2man", ["1.47.2"],
        .describe("Man-page generator from --help output."),
        .depends_on_run("perl"),
        .workload(wl_tiny()));

    pkg!(r, "texinfo", ["5.2", "6.0"],
        .describe("GNU documentation system."),
        .depends_on_run("perl"),
        .workload(wl_small()));

    pkg!(r, "binutils", ["2.24", "2.25"],
        .describe("GNU binary utilities: as, ld, objdump."),
        .variant("gold", true, "Build the gold linker"),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "gmake", ["4.0"],
        .describe("GNU make."),
        .workload(wl_small()));

    pkg!(r, "environment-modules", ["3.2.10"],
        .describe("The classic TCL environment-modules system (SC'15 2)."),
        .depends_on("tcl"),
        .workload(wl_small()));

    pkg!(r, "lmod", ["5.9", "6.0.1"],
        .describe("Lua-based hierarchical environment modules (SC'15 2, [27])."),
        .depends_on("lua"),
        .workload(wl_tiny()));

    pkg!(r, "dotkit", ["1.0"],
        .describe("LLNL's dotkit environment tool ([6] in the paper)."),
        .install(BuildRecipe::Bundle),
        .workload(wl_tiny()));
}
