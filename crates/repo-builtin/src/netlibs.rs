//! Networking, serialization, and data-service libraries.

use spack_package::Repository;

use crate::helpers::{wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register networking/data packages.
pub fn register(r: &mut Repository) {
    pkg!(r, "protobuf", ["2.5.0", "2.6.1"],
        .describe("Google protocol buffers."),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "gflags", ["2.1.2"],
        .describe("Command-line flags processing library."),
        .depends_on_build("cmake"),
        .workload(wl_tiny()));

    pkg!(r, "glog", ["0.3.4"],
        .describe("Application-level logging library."),
        .depends_on("gflags"),
        .workload(wl_small()));

    pkg!(r, "leveldb", ["1.18"],
        .describe("Fast key-value storage library."),
        .depends_on("snappy"),
        .workload(wl_small()));

    pkg!(r, "zeromq", ["4.1.2"],
        .describe("High-performance asynchronous messaging library."),
        .depends_on("libsodium"),
        .workload(wl_small()));

    pkg!(r, "libsodium", ["1.0.3"],
        .describe("Modern crypto library."),
        .workload(wl_small()));

    pkg!(r, "czmq", ["3.0.2"],
        .describe("High-level C binding for ZeroMQ."),
        .depends_on("zeromq"),
        .depends_on("libuuid"),
        .workload(wl_small()));

    pkg!(r, "nanomsg", ["0.5"],
        .describe("Socket library for common communication patterns."),
        .workload(wl_tiny()));

    pkg!(r, "libarchive", ["3.1.2"],
        .describe("Multi-format archive and compression library."),
        .depends_on("zlib"),
        .depends_on("bzip2"),
        .depends_on("xz"),
        .depends_on("openssl"),
        .depends_on("libxml2"),
        .workload(wl_medium()));

    pkg!(r, "jansson", ["2.7"],
        .describe("C library for JSON data."),
        .depends_on_build("cmake"),
        .workload(wl_tiny()));

    pkg!(r, "yaml-cpp", ["0.5.2"],
        .describe("YAML parser and emitter for C++."),
        .depends_on("boost"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "cereal", ["1.1.2"],
        .describe("Header-only C++ serialization."),
        .depends_on_build("cmake"),
        .workload(wl_tiny()));

    pkg!(r, "libcircle", ["0.2.1"],
        .describe("Distributed work-queue library over MPI (LLNL/LANL file tools substrate)."),
        .depends_on("mpi"),
        .workload(wl_tiny()));

    pkg!(r, "dtcmp", ["1.0.3"],
        .describe("Datatype comparison and sorting over MPI (LLNL)."),
        .depends_on("mpi"),
        .depends_on("lwgrp"),
        .workload(wl_tiny()));

    pkg!(r, "lwgrp", ["1.0.2"],
        .describe("Lightweight group representations for MPI (LLNL)."),
        .depends_on("mpi"),
        .workload(wl_tiny()));

    pkg!(r, "mpifileutils", ["0.6"],
        .describe("Parallel file-management tools (dcp, drm, dwalk)."),
        .depends_on("mpi"),
        .depends_on("libcircle"),
        .depends_on("dtcmp"),
        .depends_on("libarchive"),
        .workload(wl_small()));

    pkg!(r, "sz-compressor", ["1.1"],
        .describe("Error-bounded lossy compressor for scientific data."),
        .workload(wl_tiny()));

    pkg!(r, "hub", ["2.2.2"],
        .describe("Command-line wrapper for git and GitHub."),
        .depends_on("go"),
        .workload(wl_small()));

    pkg!(r, "the-silver-searcher", ["0.30.0"],
        .describe("Fast code-search tool."),
        .depends_on("pcre"),
        .depends_on("xz"),
        .workload(wl_tiny()));

    pkg!(r, "jq", ["1.5"],
        .describe("Command-line JSON processor."),
        .workload(wl_tiny()));
}
