//! BLAS/LAPACK implementations: the paper's second archetypal virtual
//! interface (SC'15 §3.3: "fungible implementations — ATLAS, LAPACK-BLAS,
//! and MKL" — with versioned `blas` levels and `lapack`).

use spack_package::Repository;

use crate::helpers::{wl, wl_medium};
use crate::pkg;

/// Register BLAS and LAPACK providers.
pub fn register(r: &mut Repository) {
    pkg!(r, "netlib-blas", ["3.5.0"],
        .describe("Reference BLAS from netlib."),
        .homepage("https://www.netlib.org/blas"),
        .provides("blas@:3"),
        .workload(wl(120, 1, 40, 20, 40, 8)));

    // "LAPACK" in Fig. 10 — CMake-based netlib LAPACK: long Fortran
    // compiles, relatively few configure probes.
    pkg!(r, "netlib-lapack", ["3.4.2", "3.5.0"],
        .describe("Reference LAPACK from netlib (the paper's Fig. 10 LAPACK)."),
        .homepage("https://www.netlib.org/lapack"),
        .url_model("https://www.netlib.org/lapack/lapack-3.5.0.tgz"),
        .variant("shared", true, "Build shared libraries"),
        .provides("lapack@:3"),
        .provides("blas@:3"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl(270, 2, 120, 60, 110, 24)));

    pkg!(r, "atlas", ["3.10.2", "3.11.34"],
        .describe("Automatically Tuned Linear Algebra Software."),
        .homepage("http://math-atlas.sourceforge.net"),
        .provides("blas@:3"),
        .provides("lapack@:3"),
        .workload(wl_medium()));

    pkg!(r, "openblas", ["0.2.14", "0.2.15"],
        .describe("Optimized BLAS based on GotoBLAS2."),
        .homepage("https://www.openblas.net"),
        .provides("blas@:3"),
        .provides("lapack@:3"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "mkl", ["11.1", "11.3"],
        .describe("Intel Math Kernel Library (registered external)."),
        .provides("blas@:3"),
        .provides("lapack@:3"),
        .provides("fft"),
        .workload(wl(5, 1, 10, 300, 10, 2)));

    pkg!(r, "eigen", ["3.2.7"],
        .describe("C++ template library for linear algebra (header-only)."),
        .depends_on_build("cmake"),
        .workload(crate::helpers::wl_tiny()));
}
