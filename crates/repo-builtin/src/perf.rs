//! Performance analysis tools: the LLNL/Jülich tool stacks.

use spack_package::Repository;

use crate::helpers::{wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register performance tools.
pub fn register(r: &mut Repository) {
    pkg!(r, "papi", ["5.3.0", "5.4.1"],
        .describe("Performance API for hardware counters (Fig. 13 external)."),
        .homepage("https://icl.utk.edu/papi"),
        .workload(wl_small()));

    // §4.1: the combinatorial-naming use case.
    pkg!(r, "gperftools", ["2.3", "2.4"],
        .describe("Google's fast malloc plus profilers; C++ ABI forces per-compiler rebuilds (SC'15 4.1)."),
        .homepage("https://github.com/gperftools/gperftools"),
        .variant("libunwind", false, "Use external libunwind for stack traces"),
        .depends_on_when("libunwind", "+libunwind"),
        .patch_when("gpeftools2.4_xlc.patch", "@2.4%xl"),
        .patch_when("gperftools-pgi-atomics.patch", "%pgi"),
        .workload(wl_small()));

    pkg!(r, "tau", ["2.24", "2.25"],
        .describe("Tuning and analysis utilities for parallel programs."),
        .variant("mpi", true, "MPI measurement"),
        .variant("python", false, "Python bindings"),
        .depends_on("pdt"),
        .depends_on("binutils"),
        .depends_on_when("mpi", "+mpi"),
        .depends_on_when("python", "+python"),
        .workload(wl_medium()));

    pkg!(r, "pdt", ["3.20", "3.21"],
        .describe("Program database toolkit for source analysis."),
        .workload(wl_small()));

    pkg!(r, "scorep", ["1.3", "1.4.2"],
        .describe("Scalable performance measurement infrastructure."),
        .depends_on("mpi"),
        .depends_on("otf2"),
        .depends_on("opari2"),
        .depends_on("cube"),
        .depends_on("papi"),
        .workload(wl_medium()));

    pkg!(r, "otf", ["1.12.5"],
        .describe("Open trace format library (classic)."),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "otf2", ["1.5.1", "2.0"],
        .describe("Open trace format 2 read/write library."),
        .workload(wl_small()));

    pkg!(r, "opari2", ["1.1.4"],
        .describe("OpenMP pragma instrumenter."),
        .workload(wl_tiny()));

    pkg!(r, "cube", ["4.2.3", "4.3.4"],
        .describe("Performance report explorer for Score-P/Scalasca."),
        .variant("gui", false, "Qt GUI"),
        .depends_on_when("qt", "+gui"),
        .workload(wl_medium()));

    pkg!(r, "scalasca", ["2.2.2"],
        .describe("Scalable trace-based performance analysis."),
        .depends_on("mpi"),
        .depends_on("otf2"),
        .depends_on("cube"),
        .workload(wl_medium()));

    pkg!(r, "openspeedshop", ["2.2"],
        .describe("Comprehensive performance analysis framework (one of the largest DAGs in 2015 Spack)."),
        .variant("mpi", true, "MPI experiments"),
        .depends_on("libelf"),
        .depends_on("libdwarf"),
        .depends_on("dyninst"),
        .depends_on("boost"),
        .depends_on("papi"),
        .depends_on("sqlite"),
        .depends_on("python"),
        .depends_on("libxml2"),
        .depends_on("binutils"),
        .depends_on("otf"),
        .depends_on("mrnet"),
        .depends_on_when("mpi", "+mpi"),
        .workload(wl_medium()));

    pkg!(r, "hpctoolkit", ["5.4.0"],
        .describe("Sampling-based performance measurement (Rice)."),
        .depends_on("libelf"),
        .depends_on("libdwarf"),
        .depends_on("libunwind"),
        .depends_on("papi"),
        .depends_on("binutils"),
        .depends_on("mpi"),
        .workload(wl_medium()));

    pkg!(r, "likwid", ["4.0.1"],
        .describe("Lightweight performance-oriented tool suite for x86."),
        .depends_on_run("perl"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_small()));

    pkg!(r, "memaxes", ["0.5"],
        .describe("Interactive memory-access visualization (LLNL)."),
        .depends_on("qt"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "muster", ["1.0.1"],
        .describe("Massively scalable clustering library (LLNL)."),
        .depends_on("boost"),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "ravel", ["1.0.0"],
        .describe("Parallel trace visualization with logical time (LLNL)."),
        .depends_on("muster"),
        .depends_on("otf"),
        .depends_on("otf2"),
        .depends_on("qt"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "caliper", ["1.0"],
        .describe("Application-level performance introspection (LLNL)."),
        .depends_on("libunwind"),
        .depends_on("papi"),
        .depends_on_build("cmake"),
        .workload(wl_small()));

    pkg!(r, "timers", ["1.2"],
        .describe("Lightweight timing instrumentation (LLNL; Fig. 13 utility)."),
        .category("utility"),
        .workload(wl_tiny()));

    pkg!(r, "perflib", ["2.0"],
        .describe("LLNL performance measurement utility library (Fig. 13 utility)."),
        .category("utility"),
        .depends_on("papi"),
        .workload(wl_tiny()));

    pkg!(r, "memusage", ["1.1"],
        .describe("Per-process memory high-water-mark tracking (LLNL; Fig. 13 utility)."),
        .category("utility"),
        .workload(wl_tiny()));

    pkg!(r, "rng", ["1.4"],
        .describe("Reproducible parallel random number generation (LLNL; Fig. 13 utility)."),
        .category("utility"),
        .workload(wl_tiny()));
}
