//! The paper's running example: mpileaks and its dependency stack
//! (SC'15 Figs. 1, 2, 7, 9) plus the LLNL tool chain around it.

use spack_package::Repository;

use crate::helpers::{wl, wl_small};
use crate::pkg;

/// Register the mpileaks stack.
pub fn register(r: &mut Repository) {
    // Fig. 1, verbatim metadata.
    pkg!(r, "mpileaks", ["1.0", "1.1", "2.3"],
        .describe("Tool to detect and report leaked MPI objects."),
        .homepage("https://github.com/hpc/mpileaks"),
        .url_model("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz"),
        .category("external"),
        .variant("debug", false, "Build with debug instrumentation"),
        .depends_on("mpi"),
        .depends_on("callpath"),
        .install(spack_package::BuildRecipe::autotools_with(&["--with-callpath"])),
        // Fig. 10 calibration: ~30 s build, configure-heavy.
        .workload(wl(55, 2, 180, 35, 100, 22)));

    pkg!(r, "callpath", ["1.0", "1.0.2", "1.1"],
        .describe("Library for representing call paths consistently in distributed tools."),
        .homepage("https://github.com/llnl/callpath"),
        .category("external"),
        .variant("debug", false, "Debug symbols"),
        .depends_on("dyninst"),
        .depends_on("adept-utils"),
        .depends_on("mpi"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_small()));

    pkg!(r, "adept-utils", ["1.0", "1.0.1"],
        .describe("Utility libraries for LLNL performance tools."),
        .category("external"),
        .depends_on("boost"),
        .depends_on("mpi"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_small()));

    // Fig. 4: dyninst installs with autotools at @:8.1, CMake afterwards.
    pkg!(r, "dyninst", ["8.0", "8.1.1", "8.1.2", "8.2.1"],
        .describe("API for dynamic binary instrumentation."),
        .homepage("https://www.dyninst.org"),
        .category("external"),
        .variant("stat_dysect", false, "Patch for STAT's DySectAPI"),
        .depends_on("libelf"),
        .depends_on("libdwarf"),
        .depends_on_when("boost", "@8.2:"),
        .install(spack_package::BuildRecipe::cmake()),
        .install_when("@:8.1", spack_package::BuildRecipe::autotools()),
        // Fig. 10: the longest build (~350 s), compile-dominated C++ —
        // filesystem and wrapper overheads are proportionally negligible.
        .workload(wl(780, 4, 110, 160, 25, 12)));

    pkg!(r, "libdwarf", ["20130207", "20130729", "20140805"],
        .describe("DWARF debugging information consumer/producer library."),
        .homepage("https://www.prevanders.net/dwarf.html"),
        .url_model("https://www.prevanders.net/libdwarf-20130729.tar.gz"),
        .category("external"),
        .depends_on("libelf"),
        // Fig. 10: ~40 s, modest configure, small compile.
        .workload(wl(85, 2, 65, 30, 85, 18)));

    pkg!(r, "libelf", ["0.8.11", "0.8.12", "0.8.13"],
        .describe("ELF object file access library (the public one, distinct from RedHat's ABI-incompatible build, SC'15 3.5.1)."),
        .homepage("https://directory.fsf.org/wiki/Libelf"),
        .url_model("http://www.mr511.de/software/libelf-0.8.13.tar.gz"),
        .category("external"),
        // Fig. 10: ~40 s, autoconf-heavy relative to its small compile.
        .workload(wl(64, 2, 150, 28, 180, 26)));

    pkg!(r, "launchmon", ["1.0.1", "1.0.2"],
        .describe("Tool daemon launcher for distributed performance tools."),
        .category("external"),
        .depends_on("libelf"),
        .depends_on("boost"),
        .depends_on("mpi"),
        .workload(wl_small()));

    pkg!(r, "libunwind", ["1.1"],
        .describe("Call-chain unwinding library."),
        .workload(wl_small()));

    // STAT and its dependencies: the LLNL debugging stack that motivated
    // mpileaks-style tooling.
    pkg!(r, "mrnet", ["4.0.0", "4.1.0", "5.0.1"],
        .describe("Multicast/reduction software overlay network."),
        .depends_on("boost"),
        .workload(wl_small()));

    pkg!(r, "graphlib", ["2.0.0", "3.0.0"],
        .describe("Graph library for STAT call-prefix trees."),
        .workload(wl_small()));

    pkg!(r, "stat", ["2.0.0", "2.1.0", "2.2.0"],
        .describe("Stack Trace Analysis Tool for debugging at scale."),
        .homepage("https://github.com/llnl/stat"),
        .variant("dysect", false, "Enable the DySectAPI"),
        .depends_on("libelf"),
        .depends_on("libdwarf"),
        .depends_on_when("dyninst+stat_dysect", "+dysect"),
        .depends_on_when("dyninst", "~dysect"),
        .depends_on("graphlib"),
        .depends_on("launchmon"),
        .depends_on("mrnet"),
        .depends_on("mpi"),
        .workload(wl_small()));

    pkg!(r, "mpip", ["3.4.1"],
        .describe("Lightweight, scalable MPI profiling."),
        .depends_on("libelf"),
        .depends_on("libunwind"),
        .depends_on("mpi"),
        .workload(wl_small()));
}
