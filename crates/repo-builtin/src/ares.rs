//! The ARES multi-physics stack (SC'15 §4.4, Fig. 13, Table 3).
//!
//! ARES is LLNL's 1/2/3-D radiation hydrodynamics code. Its production
//! configuration comprises 47 packages: ARES itself, 11 LLNL physics
//! packages, 4 LLNL math/meshing libraries, 8 LLNL utility libraries, and
//! 23 externals (including the virtual MPI and BLAS). One common package
//! supports the (C)urrent and (P)revious production versions, the (L)ite
//! configuration, and the (D)evelopment version "with conditional logic
//! on versions and variants".

use spack_package::Repository;

use crate::helpers::{wl, wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register the ARES stack.
pub fn register(r: &mut Repository) {
    // --- 11 LLNL physics packages -------------------------------------
    let phys = |r: &mut Repository, name: &str, vers: &[&str], desc: &str, deps: &[&str]| {
        let mut b = spack_package::PackageBuilder::new(name)
            .describe(desc)
            .category("physics")
            .workload(wl_medium());
        for v in vers {
            b = b.version(v, &crate::helpers::cks(name, v));
        }
        for d in deps {
            b = b.depends_on(d);
        }
        r.register(b.build().expect("valid physics package"))
            .expect("unique physics package");
    };
    phys(
        r,
        "matprop",
        &["3.2", "4.0"],
        "Material property database interface (physics).",
        &["bdivxml"],
    );
    phys(
        r,
        "leos",
        &["8.1", "8.2"],
        "Livermore equation-of-state access library (physics).",
        &["bdivxml", "hdf5"],
    );
    phys(
        r,
        "mslib",
        &["3.5"],
        "Material strength model library (physics).",
        &["matprop"],
    );
    phys(
        r,
        "laser",
        &["2.1"],
        "Laser ray-trace deposition package (physics).",
        &["mpi"],
    );
    phys(
        r,
        "cretin",
        &["2.09"],
        "Atomic kinetics and radiation package (physics).",
        &["hdf5"],
    );
    phys(
        r,
        "tdf",
        &["1.7"],
        "Tabular data format physics I/O (physics).",
        &["silo"],
    );
    phys(
        r,
        "cheetah",
        &["4.2"],
        "Thermochemical equation-of-state package (physics).",
        &["leos"],
    );
    phys(
        r,
        "dsd",
        &["1.3"],
        "Detonation shock dynamics package (physics).",
        &["mslib"],
    );
    phys(
        r,
        "teton",
        &["4.0", "4.1"],
        "Deterministic Sn thermal radiation transport (physics).",
        &["mpi", "silo"],
    );
    phys(
        r,
        "nuclear",
        &["2.0"],
        "Nuclear reaction data package (physics).",
        &["bdivxml"],
    );
    phys(
        r,
        "asclaser",
        &["1.1"],
        "ASC laser physics package (physics).",
        &["laser"],
    );

    // --- 8 LLNL utility libraries (Silo registered in io.rs) -----------
    pkg!(r, "bdivxml", ["2.4"],
        .describe("B-division XML data interchange library, self-contained parser (utility)."),
        .category("utility"),
        .workload(wl_tiny()));
    pkg!(r, "sgeos-xml", ["1.8"],
        .describe("Structured geometry/EOS XML schemas (utility)."),
        .category("utility"),
        .depends_on("bdivxml"),
        .workload(wl_tiny()));
    pkg!(r, "scallop", ["2.2"],
        .describe("Scalable checkpoint aggregation layer (utility)."),
        .category("utility"),
        .depends_on("mpi"),
        .workload(wl_small()));
    pkg!(r, "opclient", ["3.1"],
        .describe("Opacity-server client library (Fig. 13 external)."),
        .workload(wl_tiny()));

    // --- ARES itself ----------------------------------------------------
    // Versions: 2015.06 = (C)urrent production, 2014.11 = (P)revious,
    // develop = (D)evelopment. The (L)ite configuration is `+lite`.
    pkg!(r, "ares", ["2014.11", "2015.06"],
        .describe("LLNL 1/2/3-D radiation hydrodynamics code for munitions modeling and ICF simulation (SC'15 4.4)."),
        .category("physics"),
        .version_unchecked("develop"),
        .variant("lite", false, "Reduced feature/dependency configuration"),
        .variant("debug", false, "Debug build"),
        // LLNL physics.
        .depends_on("matprop"),
        .depends_on("leos"),
        .depends_on("mslib"),
        .depends_on_when("laser", "~lite"),
        .depends_on_when("cretin", "~lite"),
        .depends_on_when("asclaser", "~lite"),
        .depends_on("tdf"),
        .depends_on("cheetah"),
        .depends_on_when("dsd", "~lite"),
        .depends_on_when("teton", "~lite"),
        .depends_on_when("nuclear", "~lite"),
        // LLNL math/meshing.
        .depends_on("samrai"),
        .depends_on("hypre"),
        .depends_on("overlink"),
        // overlink pulls silo; qd comes via silo. Utilities:
        .depends_on("bdivxml"),
        .depends_on("sgeos-xml"),
        .depends_on("scallop"),
        .depends_on("rng"),
        .depends_on("perflib"),
        .depends_on("memusage"),
        .depends_on("timers"),
        // Externals. ARES builds its own Python, even on BG/Q (4.4).
        .depends_on("python@2.7.9"),
        .depends_on_when("py-numpy", "~lite"),
        .depends_on_when("py-scipy", "~lite"),
        .depends_on("tk"),
        .depends_on("hpdf"),
        .depends_on("opclient"),
        .depends_on("boost"),
        .depends_on("gsl"),
        .depends_on("hdf5"),
        .depends_on_when("gperftools", "~lite"),
        .depends_on_when("papi", "~lite"),
        .depends_on("ga"),
        .depends_on("lapack"),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        // Version-conditional dependency requirements: the development
        // version tracks newer SAMRAI/HDF5 (4.4: "Each configuration
        // requires a slightly different set of dependencies and
        // dependency versions").
        .depends_on_when("samrai@3.10.0", "@develop"),
        .depends_on_when("samrai@:3.9.1", "@:2015.06"),
        .depends_on_when("hdf5@1.8.16", "@develop"),
        .conflicts("%intel@:13", "ARES requires Intel 14 or newer"),
        .workload(wl(1500, 4, 600, 500, 70, 50)));

    // A couple of companion LLNL proxy apps that exercise similar stacks.
    pkg!(r, "lulesh", ["2.0.3"],
        .describe("Livermore unstructured Lagrangian explicit shock hydro proxy app."),
        .variant("mpi", true, "Parallel version"),
        .depends_on_when("mpi", "+mpi"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_small()));
    pkg!(r, "kripke", ["1.1"],
        .describe("Sn transport proxy application (LLNL)."),
        .depends_on("mpi"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_small()));
    pkg!(r, "amg2013", ["1.0"],
        .describe("Algebraic multigrid proxy app on hypre (LLNL)."),
        .depends_on("hypre"),
        .depends_on("mpi"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_small()));
}
