//! Everyday user tools: editors, shells, text utilities.

use spack_package::Repository;

use crate::helpers::{wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register user tools.
pub fn register(r: &mut Repository) {
    pkg!(r, "vim", ["7.4"],
        .describe("Vi improved text editor."),
        .variant("python", false, "Python scripting"),
        .depends_on("ncurses"),
        .depends_on_when("python", "+python"),
        .workload(wl_medium()));

    pkg!(r, "emacs", ["24.5"],
        .describe("GNU Emacs editor."),
        .depends_on("ncurses"),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "nano", ["2.4.2"],
        .describe("Small friendly text editor."),
        .depends_on("ncurses"),
        .workload(wl_tiny()));

    pkg!(r, "bash", ["4.3.30"],
        .describe("GNU Bourne-again shell."),
        .depends_on("readline"),
        .depends_on("ncurses"),
        .workload(wl_small()));

    pkg!(r, "zsh", ["5.1.1"],
        .describe("Z shell."),
        .depends_on("ncurses"),
        .depends_on("pcre"),
        .workload(wl_small()));

    pkg!(r, "coreutils", ["8.23"],
        .describe("GNU core utilities."),
        .workload(wl_medium()));

    pkg!(r, "gawk", ["4.1.3"],
        .describe("GNU awk pattern scanning language."),
        .depends_on("readline"),
        .depends_on("gmp"),
        .depends_on("mpfr"),
        .workload(wl_small()));

    pkg!(r, "sed", ["4.2.2"],
        .describe("GNU stream editor."),
        .workload(wl_tiny()));

    pkg!(r, "grep", ["2.22"],
        .describe("GNU pattern matching utilities."),
        .depends_on("pcre"),
        .workload(wl_tiny()));

    pkg!(r, "diffutils", ["3.3"],
        .describe("GNU file comparison utilities."),
        .workload(wl_tiny()));

    pkg!(r, "findutils", ["4.4.2"],
        .describe("GNU find, xargs, locate."),
        .workload(wl_tiny()));

    pkg!(r, "bc", ["1.06.95"],
        .describe("Arbitrary-precision calculator language."),
        .depends_on("readline"),
        .workload(wl_tiny()));

    pkg!(r, "cscope", ["15.8b"],
        .describe("C source-code browser."),
        .depends_on("ncurses"),
        .depends_on("flex"),
        .depends_on("bison"),
        .workload(wl_tiny()));

    pkg!(r, "global", ["6.5"],
        .describe("Source tagging system."),
        .depends_on("ncurses"),
        .workload(wl_tiny()));

    pkg!(r, "patch", ["2.7.5"],
        .describe("GNU patch: apply diffs to files."),
        .workload(wl_tiny()));

    pkg!(r, "file", ["5.25"],
        .describe("File type determination utility."),
        .workload(wl_tiny()));

    pkg!(r, "parallel", ["20150522"],
        .describe("GNU parallel shell job executor."),
        .depends_on_run("perl"),
        .workload(wl_tiny()));

    pkg!(r, "rsync", ["3.1.2"],
        .describe("Fast incremental file transfer."),
        .depends_on("zlib"),
        .workload(wl_small()));
}
