//! MPI implementations: versioned providers of the `mpi` virtual
//! interface (SC'15 §3.3, Fig. 5 verbatim for mpich and mvapich2).

use spack_package::Repository;

use crate::helpers::{wl, wl_medium};
use crate::pkg;

/// Register all MPI providers.
pub fn register(r: &mut Repository) {
    // Fig. 5: provides('mpi@:3', when='@3:'); provides('mpi@:1', when='@1:')
    // (the 1.x entry narrowed to 1.x releases so the two clauses do not
    // overlap for 3.x).
    pkg!(r, "mpich", ["1.2", "3.0.4", "3.1.4"],
        .describe("High-performance implementation of the MPI standard."),
        .homepage("https://www.mpich.org"),
        .url_model("https://www.mpich.org/static/downloads/3.0.4/mpich-3.0.4.tar.gz"),
        .variant("verbs", false, "InfiniBand verbs support"),
        .provides_when("mpi@:3", "@3:"),
        .provides_when("mpi@:1", "@1:1.9"),
        .workload(wl_medium()));

    pkg!(r, "mvapich", ["1.2"],
        .describe("Classic MVAPICH 1.x over InfiniBand (Table 3's MVAPICH column)."),
        .provides("mpi@:2.0"),
        .workload(wl_medium()));

    // Fig. 5 verbatim.
    pkg!(r, "mvapich2", ["1.9", "2.0", "2.1"],
        .describe("MPI over InfiniBand, Omni-Path, Ethernet/iWARP, and RoCE."),
        .homepage("https://mvapich.cse.ohio-state.edu"),
        .variant("debug", false, "Debug build"),
        .provides_when("mpi@:2.2", "@1.9"),
        .provides_when("mpi@:3.0", "@2.0:"),
        .workload(wl_medium()));

    pkg!(r, "openmpi", ["1.4.7", "1.6.5", "1.8.8"],
        .describe("Open source MPI-2 implementation maintained by a consortium."),
        .homepage("https://www.open-mpi.org"),
        .url_model("https://www.open-mpi.org/software/ompi/v1.8/downloads/openmpi-1.8.8.tar.gz"),
        .variant("psm", false, "PSM interface support"),
        .provides_when("mpi@:2.2", "@1.4:"),
        .depends_on("hwloc"),
        .workload(wl_medium()));

    // Vendor MPIs, normally registered as external packages at sites.
    pkg!(r, "intel-mpi", ["4.1.3", "5.0.1"],
        .describe("Intel's MPI implementation (vendor-optimized fabrics)."),
        .provides_when("mpi@:3.0", "@5:"),
        .provides_when("mpi@:2.2", "@4:4.9"),
        .workload(wl(10, 1, 20, 200, 20, 4)));

    pkg!(r, "bgq-mpi", ["1.0"],
        .describe("IBM Blue Gene/Q system MPI (PAMI-based MPICH derivative)."),
        .provides("mpi@:2.2"),
        .workload(wl(10, 1, 20, 100, 20, 4)));

    pkg!(r, "cray-mpich", ["7.0.0", "7.2.5"],
        .describe("Cray's MPT MPICH for XE/XC systems."),
        .provides_when("mpi@:3.0", "@7:"),
        .workload(wl(10, 1, 20, 100, 20, 4)));

    pkg!(r, "hwloc", ["1.8", "1.9", "1.11.2"],
        .describe("Portable abstraction of hierarchical hardware topology."),
        .homepage("https://www.open-mpi.org/projects/hwloc"),
        .depends_on("libpciaccess"),
        .workload(wl(40, 1, 180, 30, 70, 15)));

    pkg!(r, "libpciaccess", ["0.13.4"],
        .describe("Generic PCI access library."),
        .workload(wl(20, 1, 120, 15, 60, 10)));
}
