//! Scientific I/O libraries.

use spack_package::Repository;

use crate::helpers::{wl, wl_medium, wl_small};
use crate::pkg;

/// Register I/O libraries.
pub fn register(r: &mut Repository) {
    pkg!(r, "hdf5", ["1.8.13", "1.8.15", "1.8.16"],
        .describe("Hierarchical data format and library (Fig. 13 external)."),
        .homepage("https://www.hdfgroup.org"),
        .url_model("https://support.hdfgroup.org/ftp/HDF5/releases/hdf5-1.8.16/src/hdf5-1.8.16.tar.gz"),
        .variant("mpi", true, "Parallel HDF5"),
        .variant("szip", false, "Szip compression"),
        .variant("cxx", true, "C++ API"),
        .depends_on("zlib"),
        .depends_on_when("mpi", "+mpi"),
        .depends_on_when("szip", "+szip"),
        .workload(wl_medium()));

    pkg!(r, "hdf", ["4.2.11"],
        .describe("Legacy HDF4 format library."),
        .depends_on("zlib"),
        .depends_on("libjpeg-turbo"),
        .depends_on("szip"),
        .workload(wl_small()));

    pkg!(r, "netcdf", ["4.3.3", "4.4.0"],
        .describe("Machine-independent array data formats."),
        .variant("mpi", true, "Parallel I/O via HDF5"),
        .depends_on("hdf5"),
        .depends_on("zlib"),
        .depends_on("curl"),
        .depends_on_when("mpi", "+mpi"),
        .workload(wl_medium()));

    pkg!(r, "netcdf-cxx", ["4.2"],
        .describe("C++ bindings for netCDF."),
        .depends_on("netcdf"),
        .workload(wl_small()));

    pkg!(r, "netcdf-fortran", ["4.4.2"],
        .describe("Fortran bindings for netCDF."),
        .depends_on("netcdf"),
        .workload(wl_small()));

    pkg!(r, "parallel-netcdf", ["1.6.1"],
        .describe("Parallel I/O for classic netCDF files."),
        .depends_on("mpi"),
        .workload(wl_small()));

    pkg!(r, "silo", ["4.8", "4.10.2"],
        .describe("Mesh and field I/O library for visualization (LLNL; the paper's 3.5 --with-silo example)."),
        .homepage("https://wci.llnl.gov/simulation/computer-codes/silo"),
        .category("utility"),
        .variant("fortran", true, "Fortran bindings"),
        .depends_on("hdf5"),
        .depends_on("qd"),
        .workload(wl_medium()));

    pkg!(r, "adios", ["1.9.0"],
        .describe("Adaptable I/O system for exascale simulation data."),
        .depends_on("mpi"),
        .depends_on("zlib"),
        .depends_on("mxml"),
        .workload(wl_medium()));

    pkg!(r, "mxml", ["2.9"],
        .describe("Miniature XML parsing library."),
        .workload(crate::helpers::wl_tiny()));

    pkg!(r, "hpdf", ["2.2.1", "2.3.0"],
        .describe("libHaru free PDF generation library (Fig. 13 external)."),
        .depends_on("zlib"),
        .workload(wl(40, 1, 90, 20, 50, 12)));
}
