//! # spack-repo-builtin
//!
//! The builtin package repository of `spack-rs`: roughly 245 package
//! definitions mirroring the 2015-era Spack mainline the paper evaluates
//! ("all of Spack's 245 packages", §3.4.1). It contains, among others:
//!
//! * the **mpileaks** stack of Figs. 1, 2, 7 and 9;
//! * the **MPI providers** of Fig. 5 (`mpich`, `mvapich2`, `openmpi`,
//!   vendor MPIs) and the **BLAS/LAPACK providers** of §3.3;
//! * **python** and its extension ecosystem (§4.2), with the BG/Q patch
//!   directives of §3.2.4;
//! * **gperftools** with its per-compiler patching (§4.1, Fig. 12);
//! * the complete 47-package **ARES** stack (§4.4, Fig. 13, Table 3);
//! * the broad HPC long tail: solvers, I/O, performance tools,
//!   visualization, build tools, and user utilities.
//!
//! All version checksums are consistent with the deterministic mirror in
//! `spack-buildenv`, so fetch verification passes end to end.

#![warn(missing_docs)]

pub mod helpers;

mod apps;
mod ares;
mod blas;
mod buildtools;
mod compression;
mod corelibs;
mod io;
mod lang;
mod mathlibs;
mod mpi;
mod mpileaks;
mod netlibs;
mod perf;
mod python;
mod systools;
mod tools;
mod viz;

use spack_package::{RepoStack, Repository};

/// Build the builtin repository.
pub fn builtin_repo() -> Repository {
    let mut r = Repository::new("builtin");
    mpileaks::register(&mut r);
    mpi::register(&mut r);
    netlibs::register(&mut r);
    blas::register(&mut r);
    buildtools::register(&mut r);
    compression::register(&mut r);
    corelibs::register(&mut r);
    systools::register(&mut r);
    mathlibs::register(&mut r);
    io::register(&mut r);
    perf::register(&mut r);
    lang::register(&mut r);
    python::register(&mut r);
    viz::register(&mut r);
    ares::register(&mut r);
    tools::register(&mut r);
    apps::register(&mut r);
    r
}

/// The builtin repository as a one-repo stack.
pub fn repo_stack() -> RepoStack {
    RepoStack::with_builtin(builtin_repo())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn repository_scale_matches_paper() {
        let repo = builtin_repo();
        assert!(
            repo.len() >= 240,
            "paper concretizes 245 packages; repo has {}",
            repo.len()
        );
    }

    #[test]
    fn every_dependency_is_resolvable() {
        // Each depends_on target must be a real package or a virtual
        // interface with at least one provider.
        let repo = builtin_repo();
        let mut virtuals: BTreeSet<String> = BTreeSet::new();
        for pkg in repo.iter() {
            for p in &pkg.provides {
                if let Some(n) = &p.vspec.name {
                    virtuals.insert(n.clone());
                }
            }
        }
        for pkg in repo.iter() {
            for dep in &pkg.dependencies {
                let name = dep.spec.name.as_deref().expect("named dependency");
                assert!(
                    repo.get(name).is_some() || virtuals.contains(name),
                    "package `{}` depends on unknown `{name}`",
                    pkg.name
                );
            }
        }
    }

    #[test]
    fn no_package_is_its_own_dependency() {
        let repo = builtin_repo();
        for pkg in repo.iter() {
            assert!(
                !pkg.all_dependency_names().contains(pkg.name.as_str()),
                "`{}` depends on itself",
                pkg.name
            );
        }
    }

    #[test]
    fn virtual_interfaces_present() {
        let repo = builtin_repo();
        let mut virtuals = BTreeSet::new();
        for pkg in repo.iter() {
            for p in &pkg.provides {
                virtuals.insert(p.vspec.name.clone().unwrap());
            }
        }
        for v in ["mpi", "blas", "lapack", "fft"] {
            assert!(virtuals.contains(v), "missing virtual `{v}`");
        }
        // Virtual names must not shadow real packages.
        for v in &virtuals {
            assert!(repo.get(v).is_none(), "virtual `{v}` is also a package");
        }
    }

    #[test]
    fn paper_stacks_present() {
        let repo = builtin_repo();
        for name in [
            "mpileaks",
            "callpath",
            "dyninst",
            "libdwarf",
            "libelf",
            "mpich",
            "mvapich2",
            "openmpi",
            "python",
            "py-numpy",
            "py-scipy",
            "ares",
            "samrai",
            "hypre",
            "silo",
            "teton",
            "gperftools",
            "netlib-lapack",
            "libpng",
        ] {
            assert!(repo.get(name).is_some(), "missing `{name}`");
        }
    }

    #[test]
    fn checksums_are_mirror_consistent() {
        use spack_buildenv::Mirror;
        let repo = builtin_repo();
        let m = Mirror::new();
        // Spot-check every package's first version fetches and verifies.
        for pkg in repo.iter() {
            let v = &pkg.versions[0];
            if v.checksum.is_some() {
                let archive = m
                    .fetch(pkg, &v.version)
                    .unwrap_or_else(|e| panic!("fetch failed for {}@{}: {e}", pkg.name, v.version));
                assert!(archive.verified);
            }
        }
    }

    #[test]
    fn fig13_categories_cover_ares_world() {
        let repo = builtin_repo();
        let count_cat = |c: &str| {
            repo.iter()
                .filter(|p| p.category.as_deref() == Some(c))
                .count()
        };
        assert!(count_cat("physics") >= 12, "ares + 11 physics");
        assert!(count_cat("math") >= 4);
        assert!(count_cat("utility") >= 8);
    }
}
