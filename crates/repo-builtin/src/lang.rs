//! Language runtimes and interpreters.

use spack_package::Repository;

use crate::helpers::{wl, wl_medium, wl_small};
use crate::pkg;

/// Register language runtimes (Python lives in `python.rs`).
pub fn register(r: &mut Repository) {
    pkg!(r, "tcl", ["8.5.17", "8.6.4"],
        .describe("Tool command language (Fig. 13 external)."),
        .homepage("https://www.tcl.tk"),
        .extendable(),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "tk", ["8.6.3", "8.6.4"],
        .describe("Tcl GUI toolkit (Fig. 13 external)."),
        .depends_on("tcl"),
        .workload(wl_small()));

    pkg!(r, "lua", ["5.1.5", "5.3.1"],
        .describe("Lightweight embeddable scripting language."),
        .extendable(),
        .depends_on("ncurses"),
        .depends_on("readline"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_small()));

    pkg!(r, "ruby", ["2.2.0"],
        .describe("Dynamic object-oriented scripting language."),
        .extendable(),
        .depends_on("openssl"),
        .depends_on("readline"),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "perl", ["5.20.1", "5.22.0"],
        .describe("Practical extraction and report language."),
        .extendable(),
        .workload(wl_medium()));

    pkg!(r, "r", ["3.2.2", "3.2.3"],
        .describe("R statistical computing language."),
        .extendable(),
        .variant("x11", false, "X11 graphics"),
        .depends_on("readline"),
        .depends_on("ncurses"),
        .depends_on("icu4c"),
        .depends_on("zlib"),
        .depends_on("curl"),
        .depends_on("blas"),
        .depends_on("lapack"),
        .workload(wl_medium()));

    pkg!(r, "jdk", ["7u80", "8u66"],
        .describe("Oracle Java development kit (registered binary)."),
        .install(spack_package::BuildRecipe::Bundle),
        .workload(wl(2, 1, 4, 400, 10, 2)));

    pkg!(r, "go", ["1.5.2"],
        .describe("The Go programming language toolchain."),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_medium()));

    pkg!(r, "gcc", ["4.7.4", "4.9.3", "5.3.0"],
        .describe("The GNU compiler collection, buildable as a package."),
        .homepage("https://gcc.gnu.org"),
        .depends_on("gmp"),
        .depends_on("mpfr"),
        .depends_on("mpc"),
        .depends_on("isl"),
        .depends_on("binutils"),
        .workload(crate::helpers::wl_huge()));

    pkg!(r, "llvm", ["3.6.2", "3.7.0"],
        .describe("LLVM compiler infrastructure with Clang."),
        .variant("libcxx", true, "Build libc++"),
        .depends_on("python"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(crate::helpers::wl_huge()));
}
