//! Helpers shared by the builtin package modules.

use spack_buildenv::Mirror;
use spack_package::BuildWorkload;
use spack_spec::Version;

/// Checksum a (package, version) pair against the deterministic mirror,
/// so every `version(...)` directive in the builtin repo verifies against
/// what `spack_buildenv::Mirror` actually serves.
pub fn cks(name: &str, ver: &str) -> String {
    let v = Version::new(ver).unwrap_or_else(|_| panic!("bad version `{ver}` for {name}"));
    Mirror::checksum_of(name, &v)
}

/// A build workload: (compile units, unit cost, configure probes,
/// install files, fs ops per probe, headers per unit).
pub fn wl(units: u32, cost: u32, probes: u32, files: u32, ops: u32, hdrs: u32) -> BuildWorkload {
    BuildWorkload {
        compile_units: units,
        unit_cost: cost,
        configure_probes: probes,
        install_files: files,
        ops_per_probe: ops,
        headers_per_unit: hdrs,
    }
}

/// Header-only or script package: almost no build.
pub fn wl_tiny() -> BuildWorkload {
    wl(4, 1, 30, 12, 30, 6)
}

/// A small C library (~30 s native build).
pub fn wl_small() -> BuildWorkload {
    wl(60, 2, 160, 40, 60, 25)
}

/// A mid-size package (~2 min native build).
pub fn wl_medium() -> BuildWorkload {
    wl(260, 3, 320, 120, 70, 35)
}

/// A large package (~6 min native build).
pub fn wl_large() -> BuildWorkload {
    wl(700, 4, 500, 300, 80, 45)
}

/// A huge C++ framework (Qt/Trilinos class, ~20 min native build).
pub fn wl_huge() -> BuildWorkload {
    wl(2200, 4, 900, 900, 80, 55)
}

/// Define a builtin package: versions get mirror-consistent checksums,
/// then arbitrary builder calls apply.
#[macro_export]
macro_rules! pkg {
    ($repo:expr, $name:literal, [$($v:literal),+ $(,)?] $(, . $method:ident($($arg:expr),*))* $(,)?) => {
        $repo
            .register(
                spack_package::PackageBuilder::new($name)
                    $(.version($v, &$crate::helpers::cks($name, $v)))+
                    $(.$method($($arg),*))*
                    .build()
                    .expect(concat!("invalid builtin package ", $name)),
            )
            .expect(concat!("duplicate builtin package ", $name));
    };
}
