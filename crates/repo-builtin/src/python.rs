//! Python and its extension ecosystem (SC'15 §4.2).
//!
//! Python is *extendable*; `py-*` packages `extends('python')` and install
//! into their own prefixes, supporting combinatorial versioning, while
//! activation symlinks them into a Python installation. The BG/Q patches
//! of §3.2.4 appear verbatim on the interpreter.

use spack_package::Repository;

use crate::helpers::{wl, wl_small, wl_tiny};
use crate::pkg;

/// Register Python and its extensions.
pub fn register(r: &mut Repository) {
    // Dependencies exactly as in Fig. 13: bzip2, ncurses, sqlite,
    // readline, openssl, zlib.
    pkg!(r, "python", ["2.7.8", "2.7.9", "2.7.11", "3.5.1"],
        .describe("The Python programming language (Fig. 13 external; ARES builds 2.7.9 itself on BG/Q, 4.4)."),
        .homepage("https://www.python.org"),
        .url_model("https://www.python.org/ftp/python/2.7.9/python-2.7.9.tgz"),
        .extendable(),
        .variant("shared", true, "Build a shared libpython"),
        .depends_on("bzip2"),
        .depends_on("ncurses"),
        .depends_on("sqlite"),
        .depends_on("readline"),
        .depends_on("openssl"),
        .depends_on("zlib"),
        .patch_when("python-bgq-xlc.patch", "=bgq%xl"),
        .patch_when("python-bgq-clang.patch", "=bgq%clang"),
        // Fig. 10 calibration: ~160 s, configure-heavy interpreter build.
        .workload(wl(300, 2, 700, 250, 150, 40)));

    let ext = |r: &mut Repository, name: &str, vers: &[&str], desc: &str, deps: &[&str]| {
        let mut b = spack_package::PackageBuilder::new(name)
            .describe(desc)
            .extends("python")
            .install(spack_package::BuildRecipe::PythonSetup)
            .workload(wl_tiny());
        for v in vers {
            b = b.version(v, &crate::helpers::cks(name, v));
        }
        for d in deps {
            b = b.depends_on(d);
        }
        r.register(b.build().expect("valid py extension"))
            .expect("unique py extension");
    };

    ext(r, "py-setuptools", &["18.1", "19.2"], "Python packaging toolchain (the one whose multi-version pkg_resources support needs client changes, 4.2).", &[]);
    ext(r, "py-numpy", &["1.9.1", "1.9.2"], "N-dimensional arrays for Python (Fig. 13 'numpy'; the friendly interface to compiled BLAS/LAPACK, 4.2).", &["blas", "lapack"]);
    ext(
        r,
        "py-scipy",
        &["0.15.0", "0.15.1"],
        "Scientific algorithms on numpy (Fig. 13 'scipy').",
        &["py-numpy"],
    );
    ext(
        r,
        "py-six",
        &["1.9.0"],
        "Python 2/3 compatibility shims.",
        &[],
    );
    ext(
        r,
        "py-nose",
        &["1.3.4", "1.3.7"],
        "Unit-test discovery and running.",
        &["py-setuptools"],
    );
    ext(
        r,
        "py-cython",
        &["0.21.2", "0.23.4"],
        "C extension compiler for Python.",
        &[],
    );
    ext(
        r,
        "py-dateutil",
        &["2.4.0", "2.4.2"],
        "Extensions to datetime.",
        &["py-six", "py-setuptools"],
    );
    ext(
        r,
        "py-pytz",
        &["2014.10", "2015.4"],
        "World timezone definitions.",
        &[],
    );
    ext(
        r,
        "py-pandas",
        &["0.16.0", "0.16.1"],
        "Data structures for statistics.",
        &["py-numpy", "py-dateutil", "py-pytz"],
    );
    ext(r, "py-sympy", &["0.7.6"], "Symbolic mathematics.", &[]);
    ext(
        r,
        "py-pyparsing",
        &["2.0.3"],
        "Grammar definition library.",
        &[],
    );
    ext(
        r,
        "py-pygments",
        &["2.0.1", "2.0.2"],
        "Syntax highlighting.",
        &["py-setuptools"],
    );
    ext(
        r,
        "py-markupsafe",
        &["0.23"],
        "XML/HTML/XHTML safe string markup.",
        &[],
    );
    ext(
        r,
        "py-jinja2",
        &["2.8"],
        "Sandboxed templating engine.",
        &["py-markupsafe"],
    );
    ext(
        r,
        "py-babel",
        &["2.2"],
        "Internationalization utilities.",
        &["py-pytz"],
    );
    ext(
        r,
        "py-docutils",
        &["0.12"],
        "Documentation processing.",
        &[],
    );
    ext(
        r,
        "py-sphinx",
        &["1.3.1"],
        "Documentation generator.",
        &[
            "py-jinja2",
            "py-docutils",
            "py-pygments",
            "py-six",
            "py-babel",
        ],
    );
    ext(
        r,
        "py-mock",
        &["1.3.0"],
        "Mock objects for testing.",
        &["py-six", "py-setuptools"],
    );
    ext(
        r,
        "py-pexpect",
        &["3.3"],
        "Controlling interactive applications.",
        &[],
    );
    ext(
        r,
        "py-virtualenv",
        &["13.0.1", "13.1.2"],
        "Isolated Python environments.",
        &["py-setuptools"],
    );
    ext(
        r,
        "py-matplotlib",
        &["1.4.2", "1.4.3"],
        "2D plotting library.",
        &[
            "py-numpy",
            "py-dateutil",
            "py-pytz",
            "py-pyparsing",
            "py-setuptools",
            "libpng",
            "freetype",
        ],
    );
    ext(
        r,
        "py-h5py",
        &["2.4.0", "2.5.0"],
        "HDF5 bindings for Python.",
        &["hdf5", "py-numpy", "py-cython"],
    );
    ext(
        r,
        "py-mpi4py",
        &["1.3.1"],
        "MPI bindings for Python.",
        &["mpi"],
    );
    ext(r, "py-yaml", &["3.11"], "YAML parser and emitter.", &[]);
    ext(
        r,
        "py-ipython",
        &["2.3.1", "3.1.0"],
        "Interactive Python shell.",
        &["py-pygments", "py-setuptools"],
    );
    ext(
        r,
        "py-numexpr",
        &["2.4.6"],
        "Fast array expression evaluator.",
        &["py-numpy"],
    );
    ext(
        r,
        "py-pillow",
        &["2.9.0"],
        "Imaging library fork of PIL.",
        &["libjpeg-turbo", "zlib", "py-setuptools"],
    );
    ext(
        r,
        "py-pip",
        &["7.1.2"],
        "Package installer for Python.",
        &["py-setuptools"],
    );

    // R extensions use the same extension machinery (§4.2: "this design
    // could also be used with other languages ... R, Ruby, or Lua").
    let rext = |r: &mut Repository, name: &str, ver: &str, desc: &str, deps: &[&str]| {
        let mut b = spack_package::PackageBuilder::new(name)
            .describe(desc)
            .extends("r")
            .install(spack_package::BuildRecipe::Bundle)
            .workload(wl_tiny());
        b = b.version(ver, &crate::helpers::cks(name, ver));
        for d in deps {
            b = b.depends_on(d);
        }
        r.register(b.build().expect("valid r extension"))
            .expect("unique r extension");
    };
    rext(
        r,
        "r-rcpp",
        "0.12.2",
        "Seamless R and C++ integration.",
        &[],
    );
    rext(
        r,
        "r-ggplot2",
        "1.0.1",
        "Grammar-of-graphics plotting.",
        &["r-rcpp"],
    );
    rext(
        r,
        "r-matrix",
        "1.2.3",
        "Sparse and dense matrix classes.",
        &["lapack"],
    );

    pkg!(r, "lua-luafilesystem", ["1.6.3"],
        .describe("Filesystem functions for Lua."),
        .extends("lua"),
        .install(spack_package::BuildRecipe::Makefile),
        .workload(wl_tiny()));

    pkg!(r, "freetype", ["2.5.3"],
        .describe("Font rendering engine."),
        .depends_on("libpng"),
        .workload(wl_small()));
}
