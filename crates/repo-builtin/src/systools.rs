//! System tools: version control, debuggers, profilers' substrate.

use spack_package::Repository;

use crate::helpers::{wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register system tools.
pub fn register(r: &mut Repository) {
    pkg!(r, "git", ["2.2.1", "2.6.3"],
        .describe("Distributed version control system."),
        .depends_on("curl"),
        .depends_on("expat"),
        .depends_on("openssl"),
        .depends_on("zlib"),
        .depends_on("pcre"),
        .workload(wl_medium()));

    pkg!(r, "subversion", ["1.8.13"],
        .describe("Centralized version control system."),
        .depends_on("apr"),
        .depends_on("apr-util"),
        .depends_on("sqlite"),
        .depends_on("zlib"),
        .workload(wl_medium()));

    pkg!(r, "apr", ["1.5.2"],
        .describe("Apache portable runtime."),
        .workload(wl_small()));

    pkg!(r, "apr-util", ["1.5.4"],
        .describe("Apache portable runtime utilities."),
        .depends_on("apr"),
        .depends_on("expat"),
        .workload(wl_small()));

    pkg!(r, "mercurial", ["3.6.2"],
        .describe("Distributed version control (Python)."),
        .extends("python"),
        .workload(wl_tiny()));

    pkg!(r, "gdb", ["7.10.1"],
        .describe("GNU debugger."),
        .depends_on("texinfo"),
        .depends_on("ncurses"),
        .depends_on("expat"),
        .workload(wl_medium()));

    pkg!(r, "valgrind", ["3.11.0"],
        .describe("Instrumentation framework for dynamic analysis."),
        .variant("mpi", true, "MPI wrapper support"),
        .depends_on_when("mpi", "+mpi"),
        .workload(wl_medium()));

    pkg!(r, "strace", ["4.10"],
        .describe("System-call tracer."),
        .workload(wl_tiny()));

    pkg!(r, "elfutils", ["0.163"],
        .describe("Utilities and libraries for ELF object files (conflicts with libelf installs at link time)."),
        .depends_on("zlib"),
        .workload(wl_small()));

    pkg!(r, "numactl", ["2.0.10"],
        .describe("NUMA policy control library and tools."),
        .workload(wl_tiny()));

    pkg!(r, "htop", ["1.0.3"],
        .describe("Interactive process viewer."),
        .depends_on("ncurses"),
        .workload(wl_tiny()));

    pkg!(r, "tmux", ["2.1"],
        .describe("Terminal multiplexer."),
        .depends_on("ncurses"),
        .depends_on("libevent"),
        .workload(wl_small()));

    pkg!(r, "libevent", ["2.0.21"],
        .describe("Asynchronous event notification library."),
        .depends_on("openssl"),
        .workload(wl_small()));

    pkg!(r, "screen", ["4.3.1"],
        .describe("Full-screen window manager for terminals."),
        .depends_on("ncurses"),
        .workload(wl_small()));
}
