//! Visualization and GUI stacks.

use spack_package::Repository;

use crate::helpers::{wl_huge, wl_medium, wl_small, wl_tiny};
use crate::pkg;

/// Register visualization packages.
pub fn register(r: &mut Repository) {
    pkg!(r, "qt", ["4.8.6", "5.4.2"],
        .describe("Cross-platform application framework."),
        .homepage("https://www.qt.io"),
        .variant("mesa", false, "Software OpenGL via Mesa"),
        .depends_on("libpng"),
        .depends_on("libjpeg-turbo"),
        .depends_on("libtiff"),
        .depends_on("libmng"),
        .depends_on("sqlite"),
        .depends_on("openssl"),
        .depends_on("zlib"),
        .depends_on_when("mesa", "+mesa"),
        .workload(wl_huge()));

    pkg!(r, "mesa", ["8.0.5", "10.4.4"],
        .describe("Software OpenGL implementation."),
        .depends_on("libpng"),
        .depends_on("libxml2"),
        .depends_on("python"),
        .workload(wl_medium()));

    pkg!(r, "glm", ["0.9.7.1"],
        .describe("Header-only OpenGL mathematics."),
        .depends_on_build("cmake"),
        .workload(wl_tiny()));

    pkg!(r, "fontconfig", ["2.11.1"],
        .describe("Font configuration and customization library."),
        .depends_on("freetype"),
        .depends_on("expat"),
        .workload(wl_small()));

    pkg!(r, "pixman", ["0.32.6"],
        .describe("Low-level pixel manipulation."),
        .depends_on("libpng"),
        .workload(wl_small()));

    pkg!(r, "cairo", ["1.14.0"],
        .describe("2D graphics library with multiple backends."),
        .depends_on("pixman"),
        .depends_on("fontconfig"),
        .depends_on("freetype"),
        .depends_on("libpng"),
        .workload(wl_medium()));

    pkg!(r, "glib", ["2.42.1"],
        .describe("GNOME core utility library."),
        .depends_on("libffi"),
        .depends_on("zlib"),
        .depends_on("gettext"),
        .workload(wl_medium()));

    pkg!(r, "vtk", ["6.1.0", "6.3.0"],
        .describe("Visualization toolkit."),
        .variant("qt", true, "Qt GUI support"),
        .depends_on_when("qt", "+qt"),
        .depends_on("libpng"),
        .depends_on("libjpeg-turbo"),
        .depends_on("libtiff"),
        .depends_on("libxml2"),
        .depends_on("hdf5"),
        .depends_on("zlib"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_huge()));

    pkg!(r, "paraview", ["4.4.0"],
        .describe("Parallel data analysis and visualization."),
        .variant("mpi", true, "Parallel rendering"),
        .variant("python", true, "Python scripting"),
        .depends_on_when("mpi", "+mpi"),
        .depends_on_when("python", "+python"),
        .depends_on_when("py-numpy", "+python"),
        .depends_on_when("py-matplotlib", "+python"),
        .depends_on("libpng"),
        .depends_on("libjpeg-turbo"),
        .depends_on("libxml2"),
        .depends_on("hdf5"),
        .depends_on("netcdf"),
        .depends_on("qt"),
        .depends_on_build("cmake"),
        .install(spack_package::BuildRecipe::cmake()),
        .workload(wl_huge()));

    pkg!(r, "visit", ["2.10.0"],
        .describe("Interactive parallel visualization (LLNL)."),
        .depends_on("vtk"),
        .depends_on("qt"),
        .depends_on("silo"),
        .depends_on("hdf5"),
        .depends_on("python"),
        .depends_on_build("cmake"),
        .workload(wl_huge()));

    pkg!(r, "gnuplot", ["5.0.1"],
        .describe("Command-line driven graphing utility."),
        .depends_on("cairo"),
        .depends_on("libpng"),
        .depends_on("readline"),
        .workload(wl_small()));

    pkg!(r, "graphviz", ["2.38.0"],
        .describe("Graph drawing tools."),
        .depends_on("cairo"),
        .depends_on("libpng"),
        .depends_on("expat"),
        .workload(wl_medium()));

    pkg!(r, "imagemagick", ["6.9.0"],
        .describe("Image manipulation suite."),
        .depends_on("libpng"),
        .depends_on("libjpeg-turbo"),
        .depends_on("libtiff"),
        .depends_on("freetype"),
        .workload(wl_medium()));
}
