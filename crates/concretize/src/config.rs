//! Site and user configuration scopes (SC'15 §3.4.4, §4.3.1).
//!
//! Concretization "consults site and user policies to select the best
//! possible provider" and to fill unconstrained parameters. Policies live
//! in layered scopes — built-in defaults, then site, then user — with
//! later scopes overriding earlier ones. The text format follows the
//! paper's own example: `compiler_order = icc,gcc@4.9.3`.

use std::collections::BTreeMap;

use spack_spec::{CompilerSpec, ConcreteCompiler, SpecError, Version, VersionList};

/// Preferences from one configuration scope. Every field is optional so
/// scopes merge cleanly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Preferences {
    /// `compiler_order = icc,gcc@4.9.3`: preferred compilers, best first
    /// (§4.3.1). "Any compiler not in the compiler_order setting is less
    /// preferred than those explicitly provided."
    pub compiler_order: Vec<CompilerSpec>,
    /// Preferred providers per virtual interface, best first:
    /// `providers mpi = mvapich2,openmpi`.
    pub provider_order: BTreeMap<String, Vec<String>>,
    /// Preferred version constraints per package: `prefer python = 2.7`.
    pub version_prefs: BTreeMap<String, VersionList>,
    /// Default variant settings per package: `variants hdf5 = +mpi~debug`.
    pub variant_prefs: BTreeMap<String, BTreeMap<String, bool>>,
    /// Default target architecture.
    pub default_arch: Option<String>,
    /// Default compiler when nothing constrains one.
    pub default_compiler: Option<CompilerSpec>,
}

/// A registered compiler toolchain (§3.2.3: auto-detected from PATH or
/// registered through configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisteredCompiler {
    /// The concrete toolchain (name + exact version).
    pub compiler: ConcreteCompiler,
    /// Architectures this toolchain can target. Empty = any.
    pub architectures: Vec<String>,
}

/// Layered configuration: defaults, then site, then user scope, each
/// overriding the previous; plus the registry of available compilers.
#[derive(Debug, Clone)]
pub struct Config {
    scopes: Vec<(String, Preferences)>,
    compilers: Vec<RegisteredCompiler>,
    features: crate::features::FeatureRegistry,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scopes: Vec::new(),
            compilers: Vec::new(),
            features: crate::features::FeatureRegistry::with_defaults(),
        }
    }
}

impl Config {
    /// An empty configuration (no scopes, no compilers).
    pub fn new() -> Config {
        Config::default()
    }

    /// A typical test/demo configuration: one gcc toolchain and sensible
    /// defaults for a Linux cluster.
    pub fn with_defaults() -> Config {
        let mut c = Config::new();
        c.register_compiler("gcc", "4.9.2", &[]);
        let p = Preferences {
            default_arch: Some("linux-x86_64".to_string()),
            default_compiler: Some(CompilerSpec::by_name("gcc")),
            ..Preferences::default()
        };
        c.push_scope("defaults", p);
        c
    }

    /// Append a scope that overrides all earlier scopes.
    pub fn push_scope(&mut self, name: &str, prefs: Preferences) {
        self.scopes.push((name.to_string(), prefs));
    }

    /// Parse and append a scope from the text format (see module docs).
    pub fn push_scope_text(&mut self, name: &str, text: &str) -> Result<(), SpecError> {
        let prefs = parse_preferences(text)?;
        self.push_scope(name, prefs);
        Ok(())
    }

    /// Register a pre-resolved concrete compiler (e.g. from PATH
    /// auto-detection, §3.2.3) for the given architectures.
    pub fn register_concrete_compiler(&mut self, compiler: ConcreteCompiler, archs: &[&str]) {
        self.compilers.push(RegisteredCompiler {
            compiler,
            architectures: archs.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Register an available compiler toolchain.
    pub fn register_compiler(&mut self, name: &str, version: &str, archs: &[&str]) {
        self.compilers.push(RegisteredCompiler {
            compiler: ConcreteCompiler {
                name: name.to_string(),
                version: Version::new(version).expect("valid compiler version"),
            },
            architectures: archs.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// All registered compilers.
    pub fn compilers(&self) -> &[RegisteredCompiler] {
        &self.compilers
    }

    /// The compiler-feature registry (§4.5 extension).
    pub fn features(&self) -> &crate::features::FeatureRegistry {
        &self.features
    }

    /// Replace the compiler-feature registry.
    pub fn set_features(&mut self, features: crate::features::FeatureRegistry) {
        self.features = features;
    }

    /// Scope names in override order (later wins).
    pub fn scope_names(&self) -> Vec<&str> {
        self.scopes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Effective compiler order: the *last* scope that sets one wins
    /// entirely (orders do not merge element-wise; §4.3.1 describes one
    /// ordered list per site/user).
    pub fn compiler_order(&self) -> &[CompilerSpec] {
        self.scopes
            .iter()
            .rev()
            .find(|(_, p)| !p.compiler_order.is_empty())
            .map(|(_, p)| p.compiler_order.as_slice())
            .unwrap_or(&[])
    }

    /// Effective provider order for a virtual interface.
    pub fn provider_order(&self, virtual_name: &str) -> &[String] {
        self.scopes
            .iter()
            .rev()
            .find_map(|(_, p)| p.provider_order.get(virtual_name))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Effective preferred versions for a package.
    pub fn version_preference(&self, package: &str) -> Option<&VersionList> {
        self.scopes
            .iter()
            .rev()
            .find_map(|(_, p)| p.version_prefs.get(package))
    }

    /// Effective preferred value for one variant of one package. Checks
    /// scopes from most- to least-specific.
    pub fn variant_preference(&self, package: &str, variant: &str) -> Option<bool> {
        self.scopes
            .iter()
            .rev()
            .find_map(|(_, p)| p.variant_prefs.get(package).and_then(|m| m.get(variant)))
            .copied()
    }

    /// Effective default architecture.
    pub fn default_arch(&self) -> Option<&str> {
        self.scopes
            .iter()
            .rev()
            .find_map(|(_, p)| p.default_arch.as_deref())
    }

    /// Effective default compiler constraint.
    pub fn default_compiler(&self) -> Option<&CompilerSpec> {
        self.scopes
            .iter()
            .rev()
            .find_map(|(_, p)| p.default_compiler.as_ref())
    }

    /// Resolve a compiler constraint against the registered toolchains for
    /// an architecture: the newest registered compiler satisfying the
    /// constraint. Falls back to trusting a fully concrete request for an
    /// unregistered toolchain (the user may know better).
    pub fn resolve_compiler(
        &self,
        constraint: &CompilerSpec,
        arch: &str,
    ) -> Result<ConcreteCompiler, SpecError> {
        let mut best: Option<&RegisteredCompiler> = None;
        for rc in &self.compilers {
            if rc.compiler.name != constraint.name {
                continue;
            }
            if !rc.architectures.is_empty() && !rc.architectures.iter().any(|a| a == arch) {
                continue;
            }
            if !constraint.versions.contains(&rc.compiler.version) {
                continue;
            }
            if best.is_none_or(|b| rc.compiler.version > b.compiler.version) {
                best = Some(rc);
            }
        }
        if let Some(rc) = best {
            return Ok(rc.compiler.clone());
        }
        if let Some(v) = constraint.versions.concrete() {
            return Ok(ConcreteCompiler {
                name: constraint.name.clone(),
                version: v.clone(),
            });
        }
        Err(SpecError::conflict(format!(
            "no registered compiler satisfies `%{constraint}` for arch `{arch}`"
        )))
    }

    /// Rank a concrete compiler by the effective compiler order: position
    /// of the first matching entry, or `usize::MAX` when unlisted (listed
    /// compilers are always preferred over unlisted ones).
    pub fn compiler_rank(&self, compiler: &ConcreteCompiler) -> usize {
        for (i, pref) in self.compiler_order().iter().enumerate() {
            if pref.name == compiler.name && pref.versions.contains(&compiler.version) {
                return i;
            }
        }
        usize::MAX
    }
}

/// Parse the preference text format:
///
/// ```text
/// # comment
/// compiler_order = icc,gcc@4.9.3
/// providers mpi = mvapich2,openmpi
/// prefer python = 2.7
/// variants hdf5 = +mpi~debug
/// arch = linux-x86_64
/// compiler = gcc
/// ```
pub fn parse_preferences(text: &str) -> Result<Preferences, SpecError> {
    let mut prefs = Preferences::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line.split_once('=').ok_or_else(|| {
            SpecError::parse(format!("config line {} has no `=`: `{line}`", lineno + 1))
        })?;
        let head = head.trim();
        let value = value.trim();
        let mut head_parts = head.split_whitespace();
        let key = head_parts.next().unwrap_or("");
        let subject = head_parts.next();
        match (key, subject) {
            ("compiler_order", None) => {
                for item in value.split(',') {
                    let spec = spack_spec::Spec::parse(&format!("%{}", item.trim()))?;
                    prefs.compiler_order.push(
                        spec.compiler
                            .ok_or_else(|| SpecError::parse("empty compiler_order entry"))?,
                    );
                }
            }
            ("providers", Some(vname)) => {
                let list = value
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                prefs.provider_order.insert(vname.to_string(), list);
            }
            ("prefer", Some(pkg)) => {
                prefs
                    .version_prefs
                    .insert(pkg.to_string(), VersionList::parse(value)?);
            }
            ("variants", Some(pkg)) => {
                let spec = spack_spec::Spec::parse(&format!("{pkg} {value}"))?;
                prefs.variant_prefs.insert(pkg.to_string(), spec.variants);
            }
            ("arch", None) => prefs.default_arch = Some(value.to_string()),
            ("compiler", None) => {
                let spec = spack_spec::Spec::parse(&format!("%{value}"))?;
                prefs.default_compiler = spec.compiler;
            }
            _ => {
                return Err(SpecError::parse(format!(
                    "unknown config key `{head}` on line {}",
                    lineno + 1
                )));
            }
        }
    }
    Ok(prefs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_config() {
        let prefs = parse_preferences(
            "# site config\n\
             compiler_order = icc,gcc@4.9.3\n\
             providers mpi = mvapich2,openmpi\n\
             prefer python = 2.7\n\
             variants hdf5 = +mpi~debug\n\
             arch = linux-x86_64\n\
             compiler = gcc\n",
        )
        .unwrap();
        assert_eq!(prefs.compiler_order.len(), 2);
        assert_eq!(prefs.compiler_order[0].name, "icc");
        assert_eq!(prefs.compiler_order[1].to_string(), "gcc@4.9.3");
        assert_eq!(prefs.provider_order["mpi"], vec!["mvapich2", "openmpi"]);
        assert_eq!(prefs.version_prefs["python"].to_string(), "2.7");
        assert!(prefs.variant_prefs["hdf5"]["mpi"]);
        assert!(!prefs.variant_prefs["hdf5"]["debug"]);
        assert_eq!(prefs.default_arch.as_deref(), Some("linux-x86_64"));
        assert_eq!(prefs.default_compiler.as_ref().unwrap().name, "gcc");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_preferences("nonsense line").is_err());
        assert!(parse_preferences("mystery = 3").is_err());
    }

    #[test]
    fn user_scope_overrides_site() {
        let mut c = Config::new();
        c.push_scope_text("site", "compiler_order = gcc\narch = linux-x86_64\n")
            .unwrap();
        c.push_scope_text("user", "compiler_order = icc,gcc@4.9.3\n")
            .unwrap();
        // User's compiler order wins wholesale.
        assert_eq!(c.compiler_order().len(), 2);
        assert_eq!(c.compiler_order()[0].name, "icc");
        // Site arch still effective (user scope silent on it).
        assert_eq!(c.default_arch(), Some("linux-x86_64"));
    }

    #[test]
    fn compiler_resolution_picks_newest_matching() {
        let mut c = Config::new();
        c.register_compiler("gcc", "4.7.3", &[]);
        c.register_compiler("gcc", "4.9.2", &[]);
        c.register_compiler("xl", "12.1", &["bgq"]);
        let gcc = CompilerSpec::by_name("gcc");
        let resolved = c.resolve_compiler(&gcc, "linux-x86_64").unwrap();
        assert_eq!(resolved.to_string(), "gcc@4.9.2");
        // Version constraint narrows the choice.
        let gcc47 = CompilerSpec {
            name: "gcc".to_string(),
            versions: VersionList::parse("4.7").unwrap(),
        };
        assert_eq!(
            c.resolve_compiler(&gcc47, "linux-x86_64")
                .unwrap()
                .to_string(),
            "gcc@4.7.3"
        );
        // xl is bgq-only.
        let xl = CompilerSpec::by_name("xl");
        assert!(c.resolve_compiler(&xl, "linux-x86_64").is_err());
        assert_eq!(
            c.resolve_compiler(&xl, "bgq").unwrap().to_string(),
            "xl@12.1"
        );
    }

    #[test]
    fn concrete_unregistered_compiler_is_trusted() {
        let c = Config::new();
        let pgi = CompilerSpec::exact("pgi", "15.1").unwrap();
        assert_eq!(
            c.resolve_compiler(&pgi, "x").unwrap().to_string(),
            "pgi@15.1"
        );
        // But a vague unregistered request fails.
        assert!(c
            .resolve_compiler(&CompilerSpec::by_name("pgi"), "x")
            .is_err());
    }

    #[test]
    fn compiler_rank_orders_preferences() {
        let mut c = Config::new();
        c.push_scope_text("site", "compiler_order = icc,gcc@4.9.3\n")
            .unwrap();
        let icc = ConcreteCompiler {
            name: "icc".to_string(),
            version: Version::new("14.1").unwrap(),
        };
        let gcc493 = ConcreteCompiler {
            name: "gcc".to_string(),
            version: Version::new("4.9.3").unwrap(),
        };
        let gcc47 = ConcreteCompiler {
            name: "gcc".to_string(),
            version: Version::new("4.7.0").unwrap(),
        };
        assert_eq!(c.compiler_rank(&icc), 0);
        assert_eq!(c.compiler_rank(&gcc493), 1);
        assert_eq!(c.compiler_rank(&gcc47), usize::MAX);
    }

    #[test]
    fn variant_and_version_preferences() {
        let mut c = Config::new();
        c.push_scope_text("site", "variants hdf5 = +mpi\nprefer libelf = 0.8.12\n")
            .unwrap();
        c.push_scope_text("user", "variants hdf5 = ~mpi\n").unwrap();
        assert_eq!(c.variant_preference("hdf5", "mpi"), Some(false));
        assert_eq!(c.variant_preference("hdf5", "ghost"), None);
        assert_eq!(
            c.version_preference("libelf").unwrap().to_string(),
            "0.8.12"
        );
        assert_eq!(c.version_preference("python"), None);
    }
}
