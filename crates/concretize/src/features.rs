//! Compiler-feature dependencies (SC'15 §4.5, the paper's future work):
//! "we will add capabilities to Spack that allow packages to depend on
//! particular compiler features ... like C++11 language features, OpenMP
//! versions, and GPU compute capabilities. Ideally, Spack will find
//! suitable compilers and ensure ABI consistency."
//!
//! Features are modeled like versioned virtual interfaces, but provided
//! by *compilers* rather than packages: `gcc@4.8.1:` provides `cxx11`,
//! `gcc@4.9:` provides `openmp@4.0`. Packages declare requirements with
//! `requires_feature("cxx11")` or `requires_feature("openmp@4:")`; the
//! concretizer then restricts compiler selection to toolchains providing
//! every required feature, and an ABI check refuses DAGs that mix C++
//! standard libraries.

use spack_spec::{ConcreteCompiler, Spec, VersionList};

/// One "compiler X at versions Y provides feature F at versions G" fact.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureEntry {
    /// Compiler toolchain name.
    pub compiler: String,
    /// Compiler versions for which this holds.
    pub compiler_versions: VersionList,
    /// Feature name (`cxx11`, `cxx14`, `openmp`, `cuda`...).
    pub feature: String,
    /// Feature versions provided (`openmp@:4.0`); `any` for boolean
    /// features like `cxx11`.
    pub feature_versions: VersionList,
}

/// The registry of compiler capabilities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureRegistry {
    entries: Vec<FeatureEntry>,
}

impl FeatureRegistry {
    /// An empty registry (no compiler provides any feature).
    pub fn new() -> FeatureRegistry {
        FeatureRegistry::default()
    }

    /// A registry loaded with well-known toolchain capabilities circa
    /// 2015 (the machine generation the paper targets).
    pub fn with_defaults() -> FeatureRegistry {
        let mut r = FeatureRegistry::new();
        let add = |r: &mut FeatureRegistry, c: &str, cv: &str, f: &str, fv: &str| {
            r.register(c, cv, f, fv)
                .expect("valid default feature entry");
        };
        // C++ standards.
        add(&mut r, "gcc", "4.8.1:", "cxx11", ":");
        add(&mut r, "gcc", "5:", "cxx14", ":");
        add(&mut r, "intel", "15:", "cxx11", ":");
        add(&mut r, "intel", "17:", "cxx14", ":");
        add(&mut r, "clang", "3.3:", "cxx11", ":");
        add(&mut r, "clang", "3.4:", "cxx14", ":");
        add(&mut r, "xl", "13.1:", "cxx11", ":");
        add(&mut r, "pgi", "15.1:", "cxx11", ":");
        // OpenMP versions.
        add(&mut r, "gcc", "4.4:4.8", "openmp", ":3.1");
        add(&mut r, "gcc", "4.9:", "openmp", ":4.0");
        add(&mut r, "intel", "13:14", "openmp", ":3.1");
        add(&mut r, "intel", "15:", "openmp", ":4.0");
        add(&mut r, "clang", "3.7:", "openmp", ":3.1");
        add(&mut r, "xl", "12:", "openmp", ":3.1");
        add(&mut r, "pgi", "14:", "openmp", ":3.1");
        // GPU offload.
        add(&mut r, "pgi", "14:", "cuda", ":6.5");
        r
    }

    /// Register one capability fact.
    pub fn register(
        &mut self,
        compiler: &str,
        compiler_versions: &str,
        feature: &str,
        feature_versions: &str,
    ) -> Result<(), spack_spec::SpecError> {
        self.entries.push(FeatureEntry {
            compiler: compiler.to_string(),
            compiler_versions: VersionList::parse(compiler_versions)?,
            feature: feature.to_string(),
            feature_versions: VersionList::parse(feature_versions)?,
        });
        Ok(())
    }

    /// Does a concrete compiler provide a required feature? The
    /// requirement is an anonymous spec whose name is the feature and
    /// whose versions constrain the feature level (`openmp@4:`).
    pub fn provides(&self, compiler: &ConcreteCompiler, requirement: &Spec) -> bool {
        let Some(feature) = requirement.name.as_deref() else {
            return false;
        };
        self.entries.iter().any(|e| {
            e.compiler == compiler.name
                && e.compiler_versions.contains(&compiler.version)
                && e.feature == feature
                && e.feature_versions.overlaps(&requirement.versions)
        })
    }

    /// Does the compiler provide *all* requirements?
    pub fn provides_all<'a>(
        &self,
        compiler: &ConcreteCompiler,
        requirements: impl IntoIterator<Item = &'a Spec>,
    ) -> bool {
        requirements.into_iter().all(|r| self.provides(compiler, r))
    }

    /// All facts (for introspection / `spack compilers --features`).
    pub fn entries(&self) -> &[FeatureEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::Version;

    fn cc(name: &str, version: &str) -> ConcreteCompiler {
        ConcreteCompiler {
            name: name.to_string(),
            version: Version::new(version).unwrap(),
        }
    }

    fn req(text: &str) -> Spec {
        Spec::parse(text).unwrap()
    }

    #[test]
    fn cxx11_thresholds() {
        let r = FeatureRegistry::with_defaults();
        assert!(!r.provides(&cc("gcc", "4.7.4"), &req("cxx11")));
        assert!(r.provides(&cc("gcc", "4.8.1"), &req("cxx11")));
        assert!(r.provides(&cc("gcc", "4.9.3"), &req("cxx11")));
        assert!(r.provides(&cc("clang", "3.6.2"), &req("cxx11")));
        assert!(!r.provides(&cc("intel", "14.0.4"), &req("cxx11")));
        assert!(r.provides(&cc("intel", "15.0.1"), &req("cxx11")));
    }

    #[test]
    fn versioned_openmp() {
        let r = FeatureRegistry::with_defaults();
        // gcc 4.7 has OpenMP 3.1 but not 4.0.
        assert!(r.provides(&cc("gcc", "4.7.4"), &req("openmp@3:")));
        assert!(!r.provides(&cc("gcc", "4.7.4"), &req("openmp@4:")));
        assert!(r.provides(&cc("gcc", "4.9.3"), &req("openmp@4:")));
    }

    #[test]
    fn provides_all_conjunction() {
        let r = FeatureRegistry::with_defaults();
        let reqs = [req("cxx11"), req("openmp@4:")];
        assert!(r.provides_all(&cc("gcc", "4.9.3"), reqs.iter()));
        assert!(!r.provides_all(&cc("gcc", "4.8.1"), reqs.iter()));
        assert!(!r.provides_all(&cc("xl", "13.1"), reqs.iter()));
    }

    #[test]
    fn unknown_feature_never_provided() {
        let r = FeatureRegistry::with_defaults();
        assert!(!r.provides(&cc("gcc", "9.9"), &req("quantum")));
    }
}
