//! The concretization algorithm (SC'15 §3.4, Fig. 6).
//!
//! Concretization translates an abstract spec into a fully concrete build
//! DAG in the staged process of Fig. 6:
//!
//! 1. **Intersect constraints** — the command-line spec is merged with the
//!    constraints encoded by `depends_on` directives in package files;
//!    any inconsistency (two versions of a package, conflicting
//!    compilers/variants/platforms, non-overlapping ranges) is an error.
//! 2. **Resolve virtual dependencies** — each virtual node is replaced by
//!    a provider chosen via the reverse provider index and site/user
//!    policies; providers may themselves have virtual dependencies, so
//!    this repeats.
//! 3. **Concretize parameters** — remaining open parameters (version,
//!    compiler, variants, architecture) are filled from site and user
//!    preferences and package defaults.
//! 4. Conditional directives (`when=` clauses) are re-evaluated against
//!    the now-pinned nodes; new dependencies restart the cycle.
//!
//! The algorithm is **greedy with a fixed point**: it "will not backtrack
//! to try other options if its first policy choice leads to an
//! inconsistency. Rather, it will raise an error and the user must resolve
//! the issue by being more explicit" (§3.4). A backtracking variant — the
//! paper's "automatic constraint space exploration" future work — lives in
//! [`crate::backtrack`].
//!
//! Implementation shape: we keep a worklist of named nodes. Constraint
//! propagation (steps 1–2) runs to quiescence before each parameter pin
//! (step 3), so every already-known constraint reaches a node before its
//! parameters are frozen; constraints that only become known *after* a pin
//! (via a `when=` clause that fired on the pinned value) either agree with
//! the pinned choice or raise the paper's greedy conflict.

use std::collections::{BTreeMap, BTreeSet};

use spack_package::{DepKind, PackageDef, RepoStack};
use spack_spec::{
    CompilerSpec, ConcreteCompiler, ConcreteDag, ConcreteNode, DagBuilder, Spec, Version,
    VersionList,
};

use crate::config::Config;
use crate::error::ConcretizeError;
use crate::providers::{ProviderEntry, ProviderIndex};

/// Statistics from one concretization run (used by the Fig. 8 harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcretizeStats {
    /// Constraint-propagation passes executed.
    pub propagation_passes: usize,
    /// Nodes whose parameters were pinned.
    pub pins: usize,
    /// Virtual interfaces resolved to providers.
    pub virtuals_resolved: usize,
    /// Total nodes in the resulting DAG.
    pub dag_nodes: usize,
}

/// The greedy fixed-point concretizer.
pub struct Concretizer<'a> {
    repos: &'a RepoStack,
    config: &'a Config,
    providers: ProviderIndex,
}

#[derive(Debug, Clone)]
struct NodeState {
    spec: Spec,
    pinned: bool,
    deps: BTreeSet<String>,
    dep_kinds: BTreeMap<String, DepKind>,
}

#[derive(Debug, Default)]
struct State {
    nodes: BTreeMap<String, NodeState>,
    order: Vec<String>,
    chosen_providers: BTreeMap<String, String>,
    user_constraints: BTreeMap<String, Spec>,
    root: String,
    stats: ConcretizeStats,
}

impl State {
    fn add_node(&mut self, name: &str) -> &mut NodeState {
        if !self.nodes.contains_key(name) {
            self.order.push(name.to_string());
            self.nodes.insert(
                name.to_string(),
                NodeState {
                    spec: Spec::named(name),
                    pinned: false,
                    deps: BTreeSet::new(),
                    dep_kinds: BTreeMap::new(),
                },
            );
        }
        self.nodes.get_mut(name).unwrap()
    }
}

impl<'a> Concretizer<'a> {
    /// Build a concretizer over a repository stack and configuration. The
    /// provider index is computed once here.
    pub fn new(repos: &'a RepoStack, config: &'a Config) -> Concretizer<'a> {
        Concretizer {
            repos,
            config,
            providers: ProviderIndex::build(repos),
        }
    }

    /// The provider index (exposed for `spack providers`-style queries).
    pub fn provider_index(&self) -> &ProviderIndex {
        &self.providers
    }

    /// Concretize an abstract request into a concrete DAG.
    pub fn concretize(&self, request: &Spec) -> Result<ConcreteDag, ConcretizeError> {
        self.concretize_with_stats(request).map(|(dag, _)| dag)
    }

    /// Concretize, also returning run statistics.
    pub fn concretize_with_stats(
        &self,
        request: &Spec,
    ) -> Result<(ConcreteDag, ConcretizeStats), ConcretizeError> {
        let root_name = request
            .name
            .clone()
            .ok_or_else(|| ConcretizeError::UnknownPackage("<anonymous>".to_string()))?;

        let mut state = State {
            user_constraints: request.dependencies.clone(),
            ..State::default()
        };

        // The root may itself be a virtual name (`spack install mpi`).
        let root_constraint = request.root_only();
        if self.repos.contains(&root_name) {
            state.root = root_name.clone();
            let node = state.add_node(&root_name);
            node.spec.constrain(&root_constraint)?;
        } else if self.providers.is_virtual(&root_name) {
            let (provider, constraint) = self.select_provider(&root_constraint, &mut state)?;
            state.root = provider.clone();
            let node = state.add_node(&provider);
            node.spec.constrain(&constraint)?;
        } else {
            return Err(ConcretizeError::UnknownPackage(root_name));
        }
        self.apply_user_constraints(&state.root.clone(), &mut state)?;

        // Fixed point: propagate constraints to quiescence, then pin the
        // first unpinned node, repeat.
        let mut safety = 0usize;
        loop {
            safety += 1;
            if safety > 10_000 {
                return Err(ConcretizeError::NoConvergence);
            }
            while self.propagate_once(&mut state)? {
                state.stats.propagation_passes += 1;
                safety += 1;
                if safety > 10_000 {
                    return Err(ConcretizeError::NoConvergence);
                }
            }
            state.stats.propagation_passes += 1;
            let next_unpinned = state
                .order
                .iter()
                .find(|n| !state.nodes[*n].pinned)
                .cloned();
            match next_unpinned {
                Some(name) => {
                    self.pin_node(&name, &mut state)?;
                    state.stats.pins += 1;
                }
                None => break,
            }
        }

        let dag = self.assemble(&state)?;

        // Every `^name` the user wrote must actually occur in the DAG
        // (virtual names count when a provider was chosen for them).
        for name in state.user_constraints.keys() {
            let present = dag.by_name(name).is_some() || state.chosen_providers.contains_key(name);
            if !present {
                return Err(ConcretizeError::Conflict(format!(
                    "`^{name}` was requested but `{}` does not depend on it",
                    state.root
                )));
            }
        }

        // Sanity: the result must satisfy the request. Virtual-named
        // constraints were enforced at provider selection and cannot be
        // re-checked against package nodes, so they are filtered out.
        if !self.providers.is_virtual(&root_name) {
            let mut check = request.clone();
            check
                .dependencies
                .retain(|k, _| !self.providers.is_virtual(k));
            if !dag.satisfies(&check) {
                return Err(ConcretizeError::Conflict(format!(
                    "internal error: concretized DAG does not satisfy request `{request}`"
                )));
            }
        }
        let mut stats = state.stats;
        stats.dag_nodes = dag.len();
        Ok((dag, stats))
    }

    /// Merge any user `^name` constraint into a node.
    fn apply_user_constraints(&self, name: &str, state: &mut State) -> Result<(), ConcretizeError> {
        if let Some(c) = state.user_constraints.get(name).cloned() {
            let node = state.add_node(name);
            node.spec.constrain(&c)?;
        }
        Ok(())
    }

    /// One constraint-propagation pass over all nodes. Expands
    /// unconditional dependencies always and conditional ones once their
    /// node is pinned (when the predicate is decidable). Returns whether
    /// anything changed.
    fn propagate_once(&self, state: &mut State) -> Result<bool, ConcretizeError> {
        let mut changed = false;
        let snapshot = state.order.clone();
        for name in snapshot {
            let pkg = self.package_for(&name)?;
            let node = &state.nodes[&name];
            let node_spec = node.spec.clone();
            let pinned = node.pinned;
            for dep in pkg.dependencies.iter() {
                let active = match &dep.when {
                    None => true,
                    Some(cond) => pinned && node_spec.node_satisfies(cond),
                };
                if !active {
                    continue;
                }
                changed |= self.add_dependency(&name, &dep.spec, dep.kind, state)?;
            }
        }
        Ok(changed)
    }

    /// Add one dependency edge (resolving virtual names), creating and/or
    /// constraining the target node. Returns whether anything changed.
    fn add_dependency(
        &self,
        from: &str,
        dep_spec: &Spec,
        kind: DepKind,
        state: &mut State,
    ) -> Result<bool, ConcretizeError> {
        let dep_name = dep_spec
            .name
            .clone()
            .expect("dependency directives always carry a name");

        // Merge user constraints on the *virtual* name (e.g. `^mpi@2:`)
        // before provider selection.
        let mut requested = dep_spec.clone();
        if let Some(uc) = state.user_constraints.get(&dep_name) {
            requested.constrain(uc)?;
        }

        let (target, extra_constraint) = if self.repos.contains(&dep_name) {
            (dep_name.clone(), requested.clone())
        } else if self.providers.is_virtual(&dep_name) {
            let (provider, constraint) = self.select_provider(&requested, state)?;
            (provider, constraint)
        } else {
            return Err(ConcretizeError::UnknownPackage(dep_name));
        };

        let mut changed = false;
        if !state.nodes.contains_key(&target) {
            state.add_node(&target);
            changed = true;
        }
        {
            let node = state.nodes.get_mut(&target).unwrap();
            changed |= node.spec.constrain(&extra_constraint)?;
        }
        if state.user_constraints.contains_key(&target) {
            let uc = state.user_constraints[&target].root_only();
            let node = state.nodes.get_mut(&target).unwrap();
            changed |= node.spec.constrain(&uc)?;
        }
        let from_node = state.nodes.get_mut(from).unwrap();
        if from_node.deps.insert(target.clone()) {
            from_node.dep_kinds.insert(target.clone(), kind);
            changed = true;
        }
        Ok(changed)
    }

    /// Select a provider for a virtual constraint (§3.3–3.4).
    ///
    /// Preference order:
    /// 1. a provider already chosen for this virtual in this DAG (a DAG
    ///    holds one MPI, consistently);
    /// 2. a provider the user explicitly requested (`^mvapich2`) or that
    ///    already exists as a node;
    /// 3. the site/user `providers` order;
    /// 4. deterministic fallback: the candidate providing the highest
    ///    interface version, ties broken by package name.
    ///
    /// Returns the provider package name and the constraint to apply to
    /// its node (the matching `when=` spec, plus the virtual's compiler /
    /// variant / arch constraints carried over).
    fn select_provider(
        &self,
        requested: &Spec,
        state: &mut State,
    ) -> Result<(String, Spec), ConcretizeError> {
        let vname = requested.name.clone().unwrap();
        // Keep only entries whose `when=` constraint is compatible with
        // what we already know about that provider node (an existing node
        // or a user `^provider@...` constraint). Without this, choosing
        // the most capable entry could contradict `^mvapich2@1.9`.
        let entry_compatible = |e: &ProviderEntry| -> bool {
            let Some(when) = &e.when else { return true };
            let mut named = when.clone();
            named.name = Some(e.package.clone());
            if let Some(node) = state.nodes.get(&e.package) {
                if !node.spec.intersects(&named) {
                    return false;
                }
            }
            if let Some(uc) = state.user_constraints.get(&e.package) {
                if !uc.root_only().intersects(&named) {
                    return false;
                }
            }
            true
        };
        let candidates: Vec<&ProviderEntry> = self
            .providers
            .candidates_for(requested)
            .into_iter()
            .filter(|e| entry_compatible(e))
            .collect();
        if candidates.is_empty() {
            return Err(ConcretizeError::NoProvider {
                virtual_name: vname,
                constraint: requested.to_string(),
            });
        }

        let pick = |entries: &[&ProviderEntry]| -> Option<ProviderEntry> {
            // Highest provided interface version wins; name breaks ties.
            entries
                .iter()
                .max_by(|a, b| {
                    // Highest interface capability wins; on ties the
                    // lexicographically smaller package name ranks higher.
                    interface_cap(&a.interface_versions)
                        .cmp(&interface_cap(&b.interface_versions))
                        .then_with(|| b.package.cmp(&a.package))
                })
                .map(|e| (*e).clone())
        };

        // 1. Consistency with an earlier choice for the same virtual.
        if let Some(chosen) = state.chosen_providers.get(&vname) {
            let from_chosen: Vec<&ProviderEntry> = candidates
                .iter()
                .copied()
                .filter(|e| &e.package == chosen)
                .collect();
            let entry = pick(&from_chosen).ok_or_else(|| ConcretizeError::Conflict(format!(
                "provider `{chosen}` already selected for `{vname}` cannot satisfy `{requested}` (greedy: no backtracking)"
            )))?;
            return Ok((
                entry.package.clone(),
                provider_constraint(requested, &entry),
            ));
        }

        // 2. A provider the user explicitly requested (`^mvapich2`).
        let user_forced: Vec<&ProviderEntry> = candidates
            .iter()
            .copied()
            .filter(|e| state.user_constraints.contains_key(&e.package))
            .collect();
        let entry = if !user_forced.is_empty() {
            pick(&user_forced).unwrap()
        } else {
            // 3. Site/user provider order.
            let mut by_policy: Option<ProviderEntry> = None;
            for preferred in self.config.provider_order(&vname) {
                let from_pref: Vec<&ProviderEntry> = candidates
                    .iter()
                    .copied()
                    .filter(|e| &e.package == preferred)
                    .collect();
                if let Some(e) = pick(&from_pref) {
                    by_policy = Some(e);
                    break;
                }
            }
            match by_policy {
                Some(e) => e,
                None => {
                    // 4. A provider already in the DAG (avoids pulling a
                    //    second implementation when policy is silent)...
                    let existing: Vec<&ProviderEntry> = candidates
                        .iter()
                        .copied()
                        .filter(|e| state.nodes.contains_key(&e.package))
                        .collect();
                    if !existing.is_empty() {
                        pick(&existing).unwrap()
                    } else {
                        // 5. ...else the deterministic fallback.
                        pick(&candidates).unwrap()
                    }
                }
            }
        };

        state
            .chosen_providers
            .insert(vname.clone(), entry.package.clone());
        state.stats.virtuals_resolved += 1;
        Ok((
            entry.package.clone(),
            provider_constraint(requested, &entry),
        ))
    }

    /// Pin all parameters of one node (§3.4 step 3 + Fig. 6
    /// "Concretize Parameters").
    fn pin_node(&self, name: &str, state: &mut State) -> Result<(), ConcretizeError> {
        let pkg = self.package_for(name)?;
        let root_spec = state.nodes[&state.root].spec.clone();
        let node = state.nodes.get_mut(name).unwrap();
        let spec = &mut node.spec;

        // Architecture: own constraint > root's (already pinned or
        // constrained) > site default.
        if spec.architecture.is_none() {
            let inherited = root_spec
                .architecture
                .clone()
                .or_else(|| self.config.default_arch().map(str::to_string));
            spec.architecture = Some(inherited.ok_or_else(|| {
                ConcretizeError::Conflict(format!(
                    "no architecture for `{name}`: none requested and no site default"
                ))
            })?);
        }
        let arch = spec.architecture.clone().unwrap();

        // Compiler: own constraint > root's > compiler_order > default,
        // restricted to toolchains providing the package's required
        // compiler features (§4.5 extension).
        let constraint = spec.compiler.clone().or_else(|| root_spec.compiler.clone());
        let concrete = self.pick_compiler(constraint, &arch, name, &pkg.compiler_features)?;
        spec.compiler = Some(CompilerSpec {
            name: concrete.name.clone(),
            versions: VersionList::exact(concrete.version.clone()),
        });

        // Version: preferences, then highest satisfying known version;
        // a fully pinned unknown version is accepted (extrapolated
        // download, §3.2.3).
        let version = self.choose_version(&pkg, &spec.versions)?;
        spec.versions = VersionList::exact(version);

        // Variants: constraints must name declared variants; unset
        // declared variants take config preference, then package default.
        let declared = pkg.variant_names();
        for vname in spec.variants.keys() {
            if !declared.contains(vname.as_str()) {
                return Err(ConcretizeError::UnknownVariant {
                    package: name.to_string(),
                    variant: vname.clone(),
                });
            }
        }
        for v in &pkg.variants {
            spec.variants.entry(v.name.clone()).or_insert_with(|| {
                self.config
                    .variant_preference(name, &v.name)
                    .unwrap_or(v.default)
            });
        }

        node.pinned = true;

        // Declared conflicts fire on the pinned node.
        let spec = state.nodes[name].spec.clone();
        if let Some(c) = pkg.conflict_for(&spec) {
            return Err(ConcretizeError::DeclaredConflict {
                package: name.to_string(),
                message: c.message.clone(),
            });
        }
        Ok(())
    }

    fn pick_compiler(
        &self,
        constraint: Option<CompilerSpec>,
        arch: &str,
        package: &str,
        features: &[Spec],
    ) -> Result<ConcreteCompiler, ConcretizeError> {
        let feature_ok = |c: &ConcreteCompiler| -> bool {
            self.config.features().provides_all(c, features.iter())
        };
        let feature_err = || {
            let list: Vec<String> = features.iter().map(|f| f.to_string()).collect();
            ConcretizeError::FeatureUnsupported {
                package: package.to_string(),
                feature: list.join(", "),
            }
        };
        if let Some(c) = constraint {
            let resolved = self.config.resolve_compiler(&c, arch)?;
            if !feature_ok(&resolved) {
                // Try an older/newer version of the *same* toolchain that
                // still satisfies the constraint and provides the feature
                // ("Spack will find suitable compilers", 4.5).
                let mut best: Option<ConcreteCompiler> = None;
                for rc in self.config.compilers() {
                    let cand = &rc.compiler;
                    if cand.name == c.name
                        && c.versions.contains(&cand.version)
                        && (rc.architectures.is_empty()
                            || rc.architectures.iter().any(|a| a == arch))
                        && feature_ok(cand)
                        && best.as_ref().is_none_or(|b| cand.version > b.version)
                    {
                        best = Some(cand.clone());
                    }
                }
                return best.ok_or_else(feature_err);
            }
            return Ok(resolved);
        }
        for pref in self.config.compiler_order() {
            if let Ok(found) = self.config.resolve_compiler(pref, arch) {
                if feature_ok(&found) {
                    return Ok(found);
                }
            }
        }
        if let Some(def) = self.config.default_compiler() {
            if let Ok(found) = self.config.resolve_compiler(def, arch) {
                if feature_ok(&found) {
                    return Ok(found);
                }
            }
        }
        // Last resort: any registered compiler for this arch providing
        // the features, newest first.
        let mut best: Option<ConcreteCompiler> = None;
        for rc in self.config.compilers() {
            let cand = &rc.compiler;
            if (rc.architectures.is_empty() || rc.architectures.iter().any(|a| a == arch))
                && feature_ok(cand)
                && best.as_ref().is_none_or(|b| cand.version > b.version)
            {
                best = Some(cand.clone());
            }
        }
        if let Some(found) = best {
            return Ok(found);
        }
        if features.is_empty() {
            Err(ConcretizeError::Conflict(format!(
                "no compiler available for `{package}` on `{arch}`: none requested, \
                 none in compiler_order, no default"
            )))
        } else {
            Err(feature_err())
        }
    }

    fn choose_version(
        &self,
        pkg: &PackageDef,
        constraint: &VersionList,
    ) -> Result<Version, ConcretizeError> {
        let satisfying: Vec<&Version> = pkg
            .versions
            .iter()
            .map(|v| &v.version)
            .filter(|v| constraint.contains(v))
            .collect();
        // Site/user version preference first.
        if let Some(pref) = self.config.version_preference(&pkg.name) {
            if let Some(v) = pref.highest_satisfying(satisfying.iter().copied()) {
                return Ok(v.clone());
            }
        }
        // Package-author preferred versions next.
        let preferred: Vec<&Version> = pkg
            .versions
            .iter()
            .filter(|v| v.preferred)
            .map(|v| &v.version)
            .filter(|v| constraint.contains(v))
            .collect();
        if let Some(v) = preferred.iter().max_by(|a, b| a.version_cmp(b)) {
            return Ok((*v).clone());
        }
        // Newest satisfying known version (stable preferred over develop).
        if let Some(v) = VersionList::any().highest_satisfying(satisfying) {
            return Ok(v.clone());
        }
        // Unknown but fully pinned: extrapolate (§3.2.3 "Versions").
        if let Some(v) = constraint.concrete() {
            return Ok(v.clone());
        }
        Err(ConcretizeError::NoSatisfyingVersion {
            package: pkg.name.clone(),
            constraint: constraint.to_string(),
        })
    }

    fn package_for(&self, name: &str) -> Result<std::sync::Arc<PackageDef>, ConcretizeError> {
        self.repos
            .get(name)
            .cloned()
            .ok_or_else(|| ConcretizeError::UnknownPackage(name.to_string()))
    }

    /// Assemble the final validated [`ConcreteDag`] (Fig. 7).
    fn assemble(&self, state: &State) -> Result<ConcreteDag, ConcretizeError> {
        let mut builder = DagBuilder::new();
        for name in &state.order {
            let node = &state.nodes[name];
            let spec = &node.spec;
            let pkg = self.package_for(name)?;
            if !spec.node_is_concrete() {
                return Err(ConcretizeError::Conflict(format!(
                    "node `{name}` still abstract after concretization: {spec}"
                )));
            }
            let compiler = spec.compiler.as_ref().unwrap();
            builder
                .add_node(ConcreteNode {
                    name: name.clone(),
                    version: spec.versions.concrete().unwrap().clone(),
                    compiler: ConcreteCompiler {
                        name: compiler.name.clone(),
                        version: compiler.versions.concrete().unwrap().clone(),
                    },
                    variants: spec.variants.clone(),
                    architecture: spec.architecture.clone().unwrap(),
                    namespace: pkg.namespace.clone(),
                    deps: Vec::new(),
                })
                .map_err(ConcretizeError::from)?;
        }
        for name in &state.order {
            let from = builder.id_of(name).unwrap();
            for dep in &state.nodes[name].deps {
                let to = builder.id_of(dep).expect("dep node exists");
                builder.add_edge(from, to);
            }
        }
        let root = builder.id_of(&state.root).unwrap();
        let dag = builder.build(root).map_err(ConcretizeError::from)?;
        self.check_abi_consistency(&dag)?;
        Ok(dag)
    }

    /// C++ ABI consistency (§4.5: "ensure ABI consistency when many such
    /// features are in use"): every node requiring a C++-standard feature
    /// must be built with one and the same compiler, because C++ has no
    /// stable cross-toolchain ABI (the gperftools problem of §4.1).
    fn check_abi_consistency(&self, dag: &ConcreteDag) -> Result<(), ConcretizeError> {
        let mut cxx_compiler: Option<(&str, &spack_spec::ConcreteCompiler)> = None;
        for node in dag.nodes() {
            let pkg = self.package_for(&node.name)?;
            let needs_cxx = pkg
                .compiler_features
                .iter()
                .any(|f| f.name.as_deref().is_some_and(|n| n.starts_with("cxx")));
            if !needs_cxx {
                continue;
            }
            match &cxx_compiler {
                None => cxx_compiler = Some((&node.name, &node.compiler)),
                Some((first, c)) => {
                    if **c != node.compiler {
                        return Err(ConcretizeError::AbiMismatch(format!(
                            "`{first}` uses {c} but `{}` uses {} — C++ nodes must share a compiler",
                            node.name, node.compiler
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The constraint a chosen provider entry puts on the provider node: its
/// `when=` condition plus the non-version constraints the user attached to
/// the virtual (e.g. `^mpi%gcc+debug=bgq` carries compiler/variant/arch to
/// the provider; the *version* constrains the interface, not the package).
fn provider_constraint(requested: &Spec, entry: &ProviderEntry) -> Spec {
    let mut c = entry.when.clone().unwrap_or_else(Spec::anonymous);
    c.name = Some(entry.package.clone());
    c.compiler = c.compiler.or_else(|| requested.compiler.clone());
    if c.architecture.is_none() {
        c.architecture = requested.architecture.clone();
    }
    for (k, v) in &requested.variants {
        c.variants.entry(k.clone()).or_insert(*v);
    }
    c
}

/// Upper capability of an interface version list: the highest upper bound
/// among its ranges; `None` (unbounded) sorts above everything.
fn interface_cap(list: &VersionList) -> InterfaceCap {
    if list.is_any() {
        return InterfaceCap::Unbounded;
    }
    let mut best: Option<Version> = None;
    for r in list.ranges() {
        match r.hi() {
            None => return InterfaceCap::Unbounded,
            Some(h) => {
                if best.as_ref().is_none_or(|b| h > b) {
                    best = Some(h.clone());
                }
            }
        }
    }
    match best {
        Some(v) => InterfaceCap::Bounded(v),
        None => InterfaceCap::Unbounded,
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum InterfaceCap {
    Bounded(Version),
    Unbounded,
}

impl PartialOrd for InterfaceCap {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InterfaceCap {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use InterfaceCap::*;
        match (self, other) {
            (Unbounded, Unbounded) => std::cmp::Ordering::Equal,
            (Unbounded, Bounded(_)) => std::cmp::Ordering::Greater,
            (Bounded(_), Unbounded) => std::cmp::Ordering::Less,
            (Bounded(a), Bounded(b)) => a.version_cmp(b),
        }
    }
}
