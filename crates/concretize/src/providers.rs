//! Versioned virtual dependencies and the provider index (SC'15 §3.3).
//!
//! A virtual dependency is an abstract name for an interface (`mpi`,
//! `blas`) rather than an implementation. Spack versions these interfaces:
//! `provides('mpi@:2.2', when='@1.9')` says mvapich2 1.9 implements MPI
//! up to 2.2. The concretizer "builds a reverse index from virtual
//! packages to providers" (§3.4); that index lives here.

use std::collections::BTreeMap;

use spack_package::RepoStack;
use spack_spec::{Spec, VersionList};

/// One way a concrete package can provide a virtual interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderEntry {
    /// Provider package name (e.g. `mvapich2`).
    pub package: String,
    /// The versions of the virtual interface provided (e.g. `mpi@:2.2`
    /// yields `:2.2`).
    pub interface_versions: VersionList,
    /// Constraint on the provider for this entry to hold (the `when=`
    /// spec, e.g. `@1.9`). Anonymous; applies to the provider node.
    pub when: Option<Spec>,
}

/// Reverse index: virtual name → all provider entries, from every package
/// visible through a repository stack.
#[derive(Debug, Clone, Default)]
pub struct ProviderIndex {
    by_virtual: BTreeMap<String, Vec<ProviderEntry>>,
}

impl ProviderIndex {
    /// Build the index by scanning every visible package's `provides`
    /// directives.
    pub fn build(repos: &RepoStack) -> ProviderIndex {
        let mut by_virtual: BTreeMap<String, Vec<ProviderEntry>> = BTreeMap::new();
        for pkg in repos.visible_packages() {
            for p in &pkg.provides {
                let Some(vname) = p.vspec.name.clone() else {
                    continue;
                };
                by_virtual.entry(vname).or_default().push(ProviderEntry {
                    package: pkg.name.clone(),
                    interface_versions: p.vspec.versions.clone(),
                    when: p.when.clone(),
                });
            }
        }
        // Deterministic candidate order: by package name, then by the
        // provider constraint text, so ties break identically everywhere.
        for entries in by_virtual.values_mut() {
            entries.sort_by(|a, b| {
                a.package
                    .cmp(&b.package)
                    .then_with(|| format_when(&a.when).cmp(&format_when(&b.when)))
            });
        }
        ProviderIndex { by_virtual }
    }

    /// Is this name a virtual interface (i.e. does anything provide it)?
    pub fn is_virtual(&self, name: &str) -> bool {
        self.by_virtual.contains_key(name)
    }

    /// All virtual names in the index.
    pub fn virtual_names(&self) -> Vec<&str> {
        self.by_virtual.keys().map(|s| s.as_str()).collect()
    }

    /// Candidates able to satisfy a constraint on a virtual interface:
    /// entries whose provided interface versions overlap the requested
    /// versions. E.g. `mpi@2:` excludes `mpich@1:` providing `mpi@:1`
    /// (the Gerris example of Fig. 5).
    pub fn candidates_for(&self, virtual_spec: &Spec) -> Vec<&ProviderEntry> {
        let Some(name) = virtual_spec.name.as_deref() else {
            return Vec::new();
        };
        match self.by_virtual.get(name) {
            None => Vec::new(),
            Some(entries) => entries
                .iter()
                .filter(|e| e.interface_versions.overlaps(&virtual_spec.versions))
                .collect(),
        }
    }

    /// Candidates restricted to one provider package (used when the user
    /// forces a provider with `^mvapich2`).
    pub fn candidates_from(&self, virtual_spec: &Spec, package: &str) -> Vec<&ProviderEntry> {
        self.candidates_for(virtual_spec)
            .into_iter()
            .filter(|e| e.package == package)
            .collect()
    }
}

fn format_when(when: &Option<Spec>) -> String {
    when.as_ref().map(|w| w.to_string()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::{PackageBuilder, Repository};

    /// The exact provider layout of Fig. 5.
    fn fig5_repo() -> RepoStack {
        let mut repo = Repository::new("builtin");
        repo.register(
            PackageBuilder::new("mvapich2")
                .version("1.9", "aa")
                .version("2.0", "bb")
                .provides_when("mpi@:2.2", "@1.9")
                .provides_when("mpi@:3.0", "@2.0")
                .build()
                .unwrap(),
        )
        .unwrap();
        repo.register(
            PackageBuilder::new("mpich")
                .version("1.2", "cc")
                .version("3.0.4", "dd")
                .provides_when("mpi@:3", "@3:")
                .provides_when("mpi@:1", "@1:1.9")
                .build()
                .unwrap(),
        )
        .unwrap();
        repo.register(
            PackageBuilder::new("mpileaks")
                .version("1.0", "ee")
                .depends_on("mpi")
                .build()
                .unwrap(),
        )
        .unwrap();
        repo.register(
            PackageBuilder::new("gerris")
                .version("1.0", "ff")
                .depends_on("mpi@2:")
                .build()
                .unwrap(),
        )
        .unwrap();
        RepoStack::with_builtin(repo)
    }

    #[test]
    fn index_detects_virtuals() {
        let idx = ProviderIndex::build(&fig5_repo());
        assert!(idx.is_virtual("mpi"));
        assert!(!idx.is_virtual("mpileaks"));
        assert_eq!(idx.virtual_names(), vec!["mpi"]);
    }

    #[test]
    fn fig5_unconstrained_mpi_has_all_providers() {
        let idx = ProviderIndex::build(&fig5_repo());
        let any_mpi = Spec::parse("mpi").unwrap();
        let c = idx.candidates_for(&any_mpi);
        // Four entries: mvapich2 x2, mpich x2.
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn fig5_gerris_needs_mpi2_excluding_old_mpich() {
        // "Any version except mpich 1.x could be used to satisfy the
        // constrained dependency."
        let idx = ProviderIndex::build(&fig5_repo());
        let mpi2 = Spec::parse("mpi@2:").unwrap();
        let c = idx.candidates_for(&mpi2);
        let names: Vec<String> = c
            .iter()
            .map(|e| format!("{} when {}", e.package, format_when(&e.when)))
            .collect();
        assert_eq!(c.len(), 3, "{names:?}");
        assert!(!names
            .iter()
            .any(|n| n.contains("mpi@:1") || (n.starts_with("mpich") && n.contains("@1:1.9"))));
    }

    #[test]
    fn forced_provider_restriction() {
        let idx = ProviderIndex::build(&fig5_repo());
        let any_mpi = Spec::parse("mpi").unwrap();
        let only = idx.candidates_from(&any_mpi, "mvapich2");
        assert_eq!(only.len(), 2);
        assert!(only.iter().all(|e| e.package == "mvapich2"));
    }

    #[test]
    fn unknown_virtual_yields_nothing() {
        let idx = ProviderIndex::build(&fig5_repo());
        assert!(idx.candidates_for(&Spec::parse("blas").unwrap()).is_empty());
    }
}
