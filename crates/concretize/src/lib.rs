//! # spack-concretize
//!
//! The concretization layer of `spack-rs` (SC'15 §3.3–§3.4): the reverse
//! provider index for versioned virtual dependencies, layered site/user
//! configuration scopes, the greedy fixed-point concretizer of Fig. 6, and
//! — as the paper's stated future-work extension — a backtracking solver
//! used for ablation comparisons.
//!
//! ```
//! use spack_package::{PackageBuilder, Repository, RepoStack};
//! use spack_concretize::{Concretizer, Config};
//! use spack_spec::Spec;
//!
//! let mut repo = Repository::new("builtin");
//! repo.register(PackageBuilder::new("libelf")
//!     .version("0.8.13", "aa").version("0.8.12", "bb")
//!     .build().unwrap()).unwrap();
//! let repos = RepoStack::with_builtin(repo);
//! let config = Config::with_defaults();
//!
//! let dag = Concretizer::new(&repos, &config)
//!     .concretize(&Spec::parse("libelf@0.8.12:").unwrap())
//!     .unwrap();
//! assert_eq!(dag.root_node().version.to_string(), "0.8.13");
//! ```

#![warn(missing_docs)]

pub mod backtrack;
pub mod concretizer;
pub mod config;
pub mod error;
pub mod features;
pub mod providers;

pub use backtrack::BacktrackingConcretizer;
pub use concretizer::{ConcretizeStats, Concretizer};
pub use config::{parse_preferences, Config, Preferences, RegisteredCompiler};
pub use error::ConcretizeError;
pub use features::{FeatureEntry, FeatureRegistry};
pub use providers::{ProviderEntry, ProviderIndex};
