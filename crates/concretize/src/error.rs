//! Concretization errors.

use std::fmt;

use spack_spec::SpecError;

/// Everything that can go wrong while turning an abstract spec into a
/// concrete DAG. The greedy algorithm "will not backtrack to try other
/// options if its first policy choice leads to an inconsistency. Rather,
/// it will raise an error and the user must resolve the issue" (SC'15
/// §3.4) — these are those errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcretizeError {
    /// No repository defines this package and nothing provides it.
    UnknownPackage(String),
    /// No provider can satisfy a constraint on a virtual interface.
    NoProvider {
        /// The virtual interface name (e.g. `mpi`).
        virtual_name: String,
        /// The constraint that could not be satisfied.
        constraint: String,
    },
    /// A constraint names a variant the package does not declare.
    UnknownVariant {
        /// The package.
        package: String,
        /// The undeclared variant.
        variant: String,
    },
    /// No known version satisfies the constraints (and the constraint is
    /// not a single extrapolatable version).
    NoSatisfyingVersion {
        /// The package.
        package: String,
        /// The unsatisfiable constraint.
        constraint: String,
    },
    /// Mutually inconsistent constraints, or a greedy choice later
    /// contradicted (the paper's hwloc example, §4.5).
    Conflict(String),
    /// A `conflicts()` directive fired.
    DeclaredConflict {
        /// The package.
        package: String,
        /// The package author's message.
        message: String,
    },
    /// No available compiler provides a feature the package requires
    /// (§4.5: C++ standard, OpenMP version, GPU capability).
    FeatureUnsupported {
        /// The package with the requirement.
        package: String,
        /// The unsatisfied feature requirement.
        feature: String,
    },
    /// Nodes that must share a C++ ABI were assigned different compilers.
    AbiMismatch(String),
    /// The fixed point did not converge (safety bound; indicates a
    /// pathological package graph).
    NoConvergence,
}

impl From<SpecError> for ConcretizeError {
    fn from(e: SpecError) -> Self {
        ConcretizeError::Conflict(e.to_string())
    }
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage(p) => write!(f, "unknown package `{p}`"),
            ConcretizeError::NoProvider {
                virtual_name,
                constraint,
            } => write!(
                f,
                "no provider for virtual `{virtual_name}` satisfies `{constraint}`"
            ),
            ConcretizeError::UnknownVariant { package, variant } => {
                write!(f, "package `{package}` has no variant `{variant}`")
            }
            ConcretizeError::NoSatisfyingVersion {
                package,
                constraint,
            } => write!(
                f,
                "no known version of `{package}` satisfies `@{constraint}`"
            ),
            ConcretizeError::Conflict(m) => write!(f, "{m}"),
            ConcretizeError::DeclaredConflict { package, message } => {
                write!(f, "conflict in `{package}`: {message}")
            }
            ConcretizeError::FeatureUnsupported { package, feature } => write!(
                f,
                "no available compiler provides `{feature}` required by `{package}`"
            ),
            ConcretizeError::AbiMismatch(m) => write!(f, "ABI mismatch: {m}"),
            ConcretizeError::NoConvergence => {
                write!(f, "concretization did not converge")
            }
        }
    }
}

impl std::error::Error for ConcretizeError {}
