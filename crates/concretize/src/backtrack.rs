//! Backtracking concretization — the paper's future work (SC'15 §4.5).
//!
//! The greedy algorithm "does not backtrack to find an MPI version that
//! does not conflict"; the paper's hwloc example (package P needs
//! `hwloc@1.9` and `mpi`, but the policy-chosen MPI pins `hwloc@1.8`)
//! therefore fails with a conflict the user must resolve by hand. The
//! paper leaves "automatic constraint space exploration for future work";
//! this module implements that exploration as a search over *provider
//! assignments*: when greedy fails, alternative providers for each virtual
//! interface are tried in policy order, reusing the greedy concretizer for
//! each candidate assignment.
//!
//! This is deliberately a thin search layer over the greedy core — an
//! ablation point (see `bench/ablations`) rather than a full CDCL solver.

use std::collections::BTreeSet;

use spack_package::RepoStack;
use spack_spec::{ConcreteDag, Spec};

use crate::concretizer::{ConcretizeStats, Concretizer};
use crate::config::{Config, Preferences};
use crate::error::ConcretizeError;
use crate::providers::ProviderIndex;

/// Statistics from a backtracking run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacktrackStats {
    /// Greedy attempts executed (1 = greedy succeeded immediately).
    pub attempts: usize,
    /// Stats of the successful greedy run.
    pub final_run: ConcretizeStats,
}

/// A concretizer that retries greedy concretization under alternative
/// provider assignments when the first choice conflicts.
pub struct BacktrackingConcretizer<'a> {
    repos: &'a RepoStack,
    config: &'a Config,
    max_attempts: usize,
}

impl<'a> BacktrackingConcretizer<'a> {
    /// Create with a bound on total greedy attempts (provider assignment
    /// combinations explored).
    pub fn new(repos: &'a RepoStack, config: &'a Config) -> BacktrackingConcretizer<'a> {
        BacktrackingConcretizer {
            repos,
            config,
            max_attempts: 256,
        }
    }

    /// Override the attempt bound.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Concretize, backtracking across provider choices on failure.
    pub fn concretize(&self, request: &Spec) -> Result<ConcreteDag, ConcretizeError> {
        self.concretize_with_stats(request).map(|(d, _)| d)
    }

    /// Concretize with statistics.
    pub fn concretize_with_stats(
        &self,
        request: &Spec,
    ) -> Result<(ConcreteDag, BacktrackStats), ConcretizeError> {
        // Attempt 1: plain greedy under the given config.
        let mut stats = BacktrackStats {
            attempts: 1,
            ..BacktrackStats::default()
        };
        let first = Concretizer::new(self.repos, self.config).concretize_with_stats(request);
        let first_err = match first {
            Ok((dag, run)) => {
                stats.final_run = run;
                return Ok((dag, stats));
            }
            Err(e) => e,
        };

        // Enumerate the virtuals that could appear in this solve and their
        // candidate providers, in deterministic order.
        let index = ProviderIndex::build(self.repos);
        let virtuals = self.reachable_virtuals(request, &index);
        let choices: Vec<(String, Vec<String>)> = virtuals
            .into_iter()
            .map(|v| {
                let mut providers: Vec<String> = index
                    .candidates_for(&Spec::named(&v))
                    .into_iter()
                    .map(|e| e.package.clone())
                    .collect();
                providers.dedup();
                (v, providers)
            })
            .filter(|(_, ps)| ps.len() > 1)
            .collect();

        if choices.is_empty() {
            return Err(first_err);
        }

        // Odometer enumeration of provider assignments. Every combination
        // is tried (one may coincide with the failed greedy default; that
        // single redundant attempt is cheaper than guessing which).
        let mut counters = vec![0usize; choices.len()];
        let mut last_err = first_err;
        loop {
            if stats.attempts >= self.max_attempts {
                return Err(last_err);
            }
            stats.attempts += 1;

            // Force this assignment through a highest-priority config scope.
            let mut forced = Preferences::default();
            for (slot, (vname, providers)) in counters.iter().zip(&choices) {
                forced
                    .provider_order
                    .insert(vname.clone(), vec![providers[*slot].clone()]);
            }
            let mut config = self.config.clone();
            config.push_scope("backtrack", forced);

            match Concretizer::new(self.repos, &config).concretize_with_stats(request) {
                Ok((dag, run)) => {
                    stats.final_run = run;
                    return Ok((dag, stats));
                }
                Err(e) => last_err = e,
            }

            // Advance the odometer; wrapping means the space is exhausted.
            let mut i = 0;
            loop {
                if i == counters.len() {
                    return Err(last_err);
                }
                counters[i] += 1;
                if counters[i] < choices[i].1.len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
        }
    }

    /// Virtual interfaces reachable from the request root through any
    /// combination of dependencies and providers (over-approximation).
    fn reachable_virtuals(&self, request: &Spec, index: &ProviderIndex) -> Vec<String> {
        let mut seen_pkgs: BTreeSet<String> = BTreeSet::new();
        let mut virtuals: BTreeSet<String> = BTreeSet::new();
        let mut work: Vec<String> = Vec::new();
        if let Some(root) = &request.name {
            work.push(root.clone());
        }
        while let Some(name) = work.pop() {
            if index.is_virtual(&name) {
                if virtuals.insert(name.clone()) {
                    for entry in index.candidates_for(&Spec::named(&name)) {
                        work.push(entry.package.clone());
                    }
                }
                continue;
            }
            if !seen_pkgs.insert(name.clone()) {
                continue;
            }
            if let Some(pkg) = self.repos.get(&name) {
                for dep in pkg.all_dependency_names() {
                    work.push(dep.to_string());
                }
            }
        }
        virtuals.into_iter().collect()
    }
}
