//! Integration tests for compiler-feature dependencies (§4.5 extension):
//! packages that need C++11 or OpenMP levels steer compiler selection,
//! and C++ ABI consistency is enforced DAG-wide.

use spack_concretize::{ConcretizeError, Concretizer, Config};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::Spec;

fn world() -> RepoStack {
    let mut r = Repository::new("builtin");
    r.register(
        PackageBuilder::new("oldlib")
            .version("1.0", "aa")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("modern")
            .version("1.0", "bb")
            .requires_feature("cxx11")
            .depends_on("oldlib")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("openmp4app")
            .version("1.0", "cc")
            .requires_feature("openmp@4:")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("cxxpair")
            .version("1.0", "dd")
            .requires_feature("cxx11")
            .depends_on("modern")
            .build()
            .unwrap(),
    )
    .unwrap();
    RepoStack::with_builtin(r)
}

fn config() -> Config {
    let mut c = Config::new();
    c.register_compiler("gcc", "4.7.4", &[]); // no cxx11, OpenMP 3.1
    c.register_compiler("gcc", "4.9.3", &[]); // cxx11, OpenMP 4.0
    c.register_compiler("intel", "14.0.4", &[]); // neither
    c.push_scope_text("site", "arch = linux-x86_64\ncompiler = gcc\n")
        .unwrap();
    c
}

#[test]
fn feature_requirement_steers_version_choice() {
    let repos = world();
    let mut cfg = config();
    // Site prefers the old gcc...
    cfg.push_scope_text("user", "compiler_order = gcc@4.7.4\n")
        .unwrap();
    let c = Concretizer::new(&repos, &cfg);
    // ...and plain packages get it...
    let dag = c.concretize(&Spec::parse("oldlib").unwrap()).unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@4.7.4");
    // ...but a cxx11 package is steered to gcc 4.9.3.
    let dag = c.concretize(&Spec::parse("modern").unwrap()).unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@4.9.3");
}

#[test]
fn versioned_openmp_requirement() {
    let repos = world();
    let cfg = config();
    let c = Concretizer::new(&repos, &cfg);
    let dag = c.concretize(&Spec::parse("openmp4app").unwrap()).unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@4.9.3");
    // Constraining to the old gcc is an explicit feature error.
    let err = c
        .concretize(&Spec::parse("openmp4app%gcc@4.7.4").unwrap())
        .unwrap_err();
    assert!(
        matches!(err, ConcretizeError::FeatureUnsupported { .. }),
        "{err}"
    );
}

#[test]
fn constrained_compiler_upgrades_within_constraint() {
    let repos = world();
    let cfg = config();
    let c = Concretizer::new(&repos, &cfg);
    // `%gcc` resolves to the newest gcc anyway; `%gcc@4.7:` must skip
    // 4.7.4 (no cxx11) and land on 4.9.3.
    let dag = c
        .concretize(&Spec::parse("modern%gcc@4.7:").unwrap())
        .unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@4.9.3");
}

#[test]
fn no_capable_compiler_is_an_error() {
    let repos = world();
    let mut cfg = Config::new();
    cfg.register_compiler("intel", "14.0.4", &[]); // lacks cxx11
    cfg.push_scope_text("site", "arch = linux-x86_64\ncompiler = intel\n")
        .unwrap();
    let err = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("modern").unwrap())
        .unwrap_err();
    assert!(matches!(err, ConcretizeError::FeatureUnsupported { .. }));
}

#[test]
fn abi_mismatch_is_refused() {
    let repos = world();
    let mut cfg = config();
    cfg.register_compiler("clang", "3.6.2", &[]); // also cxx11-capable
    let c = Concretizer::new(&repos, &cfg);
    // Forcing different C++ compilers on two cxx11 nodes breaks the ABI.
    let err = c
        .concretize(&Spec::parse("cxxpair%clang ^modern%gcc@4.9.3").unwrap())
        .unwrap_err();
    assert!(matches!(err, ConcretizeError::AbiMismatch(_)), "{err}");
    // Consistent compilers are fine.
    let dag = c
        .concretize(&Spec::parse("cxxpair%gcc@4.9.3").unwrap())
        .unwrap();
    assert_eq!(dag.len(), 3);
}

#[test]
fn custom_feature_registry() {
    use spack_concretize::FeatureRegistry;
    let repos = world();
    let mut cfg = config();
    // A site that claims its ancient gcc was patched for C++11.
    let mut features = FeatureRegistry::with_defaults();
    features.register("gcc", "4.7.4", "cxx11", ":").unwrap();
    cfg.set_features(features);
    cfg.push_scope_text("user", "compiler_order = gcc@4.7.4\n")
        .unwrap();
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("modern").unwrap())
        .unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@4.7.4");
}
