//! Tests for the backtracking concretizer (the paper's §4.5 future work):
//! where greedy raises a conflict and makes the user resolve it, the
//! backtracking solver explores alternative provider assignments.

use spack_concretize::{BacktrackingConcretizer, Concretizer, Config};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::Spec;

/// §4.5 world: `app` needs hwloc@1.9 and mpi; provider `strictmpi` pins
/// hwloc@1.8 (conflict), provider `loosempi` accepts any hwloc.
fn hwloc_world() -> RepoStack {
    let mut r = Repository::new("builtin");
    r.register(
        PackageBuilder::new("hwloc")
            .version("1.8", "aa")
            .version("1.9", "ab")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("strictmpi")
            .version("1.0", "ba")
            .provides("mpi@:3")
            .depends_on("hwloc@1.8")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("loosempi")
            .version("1.0", "ca")
            .provides("mpi@:3")
            .depends_on("hwloc")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("app")
            .version("1.0", "da")
            .depends_on("hwloc@1.9")
            .depends_on("mpi")
            .build()
            .unwrap(),
    )
    .unwrap();
    RepoStack::with_builtin(r)
}

fn config_preferring(provider: &str) -> Config {
    let mut c = Config::with_defaults();
    c.push_scope_text("site", &format!("providers mpi = {provider}\n"))
        .unwrap();
    c
}

#[test]
fn greedy_fails_where_backtracking_succeeds() {
    let repos = hwloc_world();
    let cfg = config_preferring("strictmpi");
    let request = Spec::parse("app").unwrap();

    // Greedy: policy picks strictmpi, whose hwloc@1.8 contradicts the
    // root's hwloc@1.9 — error, no backtracking (§3.4/§4.5).
    assert!(Concretizer::new(&repos, &cfg).concretize(&request).is_err());

    // Backtracking: tries the other provider and succeeds.
    let (dag, stats) = BacktrackingConcretizer::new(&repos, &cfg)
        .concretize_with_stats(&request)
        .unwrap();
    assert!(dag.by_name("loosempi").is_some());
    let hwloc = dag.node(dag.by_name("hwloc").unwrap());
    assert_eq!(hwloc.version.to_string(), "1.9");
    assert!(stats.attempts > 1, "must have backtracked: {stats:?}");
}

#[test]
fn backtracking_is_pass_through_when_greedy_succeeds() {
    let repos = hwloc_world();
    let cfg = config_preferring("loosempi");
    let request = Spec::parse("app").unwrap();
    let (dag, stats) = BacktrackingConcretizer::new(&repos, &cfg)
        .concretize_with_stats(&request)
        .unwrap();
    assert_eq!(stats.attempts, 1);
    assert!(dag.by_name("loosempi").is_some());
}

#[test]
fn truly_unsatisfiable_still_fails() {
    let repos = hwloc_world();
    let cfg = config_preferring("strictmpi");
    // Force the conflicting provider explicitly: no assignment can help.
    let request = Spec::parse("app ^strictmpi").unwrap();
    assert!(BacktrackingConcretizer::new(&repos, &cfg)
        .concretize(&request)
        .is_err());
}

#[test]
fn attempt_bound_is_honored() {
    let repos = hwloc_world();
    let cfg = config_preferring("strictmpi");
    let request = Spec::parse("app").unwrap();
    // With a bound of 1, only the greedy attempt runs — failure stands.
    assert!(BacktrackingConcretizer::new(&repos, &cfg)
        .with_max_attempts(1)
        .concretize(&request)
        .is_err());
}
