//! Integration tests for the greedy concretizer against the paper's own
//! scenarios: the mpileaks DAG of Figs. 2 and 7, the versioned virtual
//! dependencies of Fig. 5, conditional dependencies (§3.2.4), site
//! policies (§3.4.4, §4.3.1), and the greedy-conflict behavior of §4.5.

use spack_concretize::{ConcretizeError, Concretizer, Config};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::Spec;

/// The package universe used throughout the paper: mpileaks and its
/// dependencies (Fig. 2), the MPI providers of Fig. 5, and the hwloc
/// conflict example of §4.5.
fn paper_repo() -> RepoStack {
    let mut r = Repository::new("builtin");
    let reg = |r: &mut Repository, p| r.register(p).unwrap();

    reg(
        &mut r,
        PackageBuilder::new("mpileaks")
            .describe("Tool to detect and report leaked MPI objects.")
            .version("1.0", "8838c574b39202a57d7c2d68692718aa")
            .version("1.1", "4282eddb08ad8d36df15b06d4be38bcb")
            .version("2.3", "77cc77cc77cc77cc77cc77cc77cc77cc")
            .variant("debug", false, "debug instrumentation")
            .depends_on("mpi")
            .depends_on("callpath")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("callpath")
            .version("1.0", "aa")
            .version("1.0.2", "ab")
            .version("1.1", "ac")
            .variant("debug", false, "debug symbols")
            .depends_on("dyninst")
            .depends_on("mpi")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("dyninst")
            .version("8.0", "ba")
            .version("8.1.2", "bb")
            .depends_on("libdwarf")
            .depends_on("libelf")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("libdwarf")
            .version("20130207", "ca")
            .version("20130729", "cb")
            .depends_on("libelf")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("libelf")
            .version("0.8.11", "da")
            .version("0.8.13", "db")
            .build()
            .unwrap(),
    );

    // Fig. 5 providers.
    reg(
        &mut r,
        PackageBuilder::new("mvapich2")
            .version("1.9", "ea")
            .version("2.0", "eb")
            .provides_when("mpi@:2.2", "@1.9")
            .provides_when("mpi@:3.0", "@2.0")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("mpich")
            .version("1.2", "fa")
            .version("3.0.4", "fb")
            .provides_when("mpi@:3", "@3:")
            .provides_when("mpi@:1", "@1:1.9")
            .build()
            .unwrap(),
    );

    reg(
        &mut r,
        PackageBuilder::new("openmpi")
            .version("1.4.7", "ga")
            .version("1.8.8", "gb")
            .provides("mpi@:2.2")
            .build()
            .unwrap(),
    );

    // Fig. 5 dependent with a versioned interface requirement.
    reg(
        &mut r,
        PackageBuilder::new("gerris")
            .version("1.0", "ha")
            .depends_on("mpi@2:")
            .build()
            .unwrap(),
    );

    // §4.5 hwloc conflict: strict-mpi pins hwloc@1.8, loose-mpi is fine.
    reg(
        &mut r,
        PackageBuilder::new("hwloc")
            .version("1.8", "ia")
            .version("1.9", "ib")
            .build()
            .unwrap(),
    );
    reg(
        &mut r,
        PackageBuilder::new("strictmpi")
            .version("1.0", "ja")
            .provides("mpi@:3")
            .depends_on("hwloc@1.8")
            .build()
            .unwrap(),
    );
    reg(
        &mut r,
        PackageBuilder::new("loosempi")
            .version("1.0", "ka")
            .provides("mpi@:3")
            .depends_on("hwloc")
            .build()
            .unwrap(),
    );
    reg(
        &mut r,
        PackageBuilder::new("needs-hwloc19")
            .version("1.0", "la")
            .depends_on("hwloc@1.9")
            .depends_on("mpi")
            .build()
            .unwrap(),
    );

    // §3.2.4 conditional dependencies.
    reg(
        &mut r,
        PackageBuilder::new("boost")
            .version("1.54.0", "ma")
            .version("1.59.0", "mb")
            .build()
            .unwrap(),
    );
    reg(
        &mut r,
        PackageBuilder::new("rose")
            .version("0.9.6", "na")
            .depends_on_when("boost@1.54.0", "%gcc@:4")
            .depends_on_when("boost@1.59.0", "%gcc@5:")
            .build()
            .unwrap(),
    );
    reg(
        &mut r,
        PackageBuilder::new("hdf5")
            .version("1.8.13", "oa")
            .variant("mpi", true, "parallel HDF5")
            .depends_on_when("mpi", "+mpi")
            .build()
            .unwrap(),
    );

    RepoStack::with_builtin(r)
}

fn config() -> Config {
    let mut c = Config::new();
    c.register_compiler("gcc", "4.7.3", &[]);
    c.register_compiler("gcc", "4.9.2", &[]);
    c.register_compiler("gcc", "5.2.0", &[]);
    c.register_compiler("intel", "14.1", &[]);
    c.register_compiler("xl", "12.1", &["bgq"]);
    c.push_scope_text("site", "arch = linux-x86_64\ncompiler = gcc\n")
        .unwrap();
    c
}

fn concretize(text: &str) -> Result<spack_spec::ConcreteDag, ConcretizeError> {
    let repos = paper_repo();
    let cfg = config();
    Concretizer::new(&repos, &cfg).concretize(&Spec::parse(text).unwrap())
}

#[test]
fn fig2a_unconstrained_mpileaks_builds_full_dag() {
    let dag = concretize("mpileaks").unwrap();
    // mpileaks, callpath, dyninst, libdwarf, libelf + one MPI provider.
    assert_eq!(dag.len(), 6);
    assert_eq!(dag.root_node().name, "mpileaks");
    for pkg in ["callpath", "dyninst", "libdwarf", "libelf"] {
        assert!(dag.by_name(pkg).is_some(), "missing {pkg}");
    }
    // Exactly one MPI provider, no virtual node.
    let mpis: Vec<&str> = ["mpich", "mvapich2", "openmpi"]
        .into_iter()
        .filter(|m| dag.by_name(m).is_some())
        .collect();
    assert_eq!(mpis.len(), 1);
    assert!(dag.by_name("mpi").is_none());
}

#[test]
fn fig7_all_parameters_concrete() {
    let dag = concretize("mpileaks").unwrap();
    for node in dag.nodes() {
        assert_eq!(node.architecture, "linux-x86_64");
        assert_eq!(node.compiler.name, "gcc");
        // Newest registered gcc.
        assert_eq!(node.compiler.version.to_string(), "5.2.0");
    }
    // Newest versions chosen by default.
    assert_eq!(dag.root_node().version.to_string(), "2.3");
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    assert_eq!(libelf.version.to_string(), "0.8.13");
    // Defaults fill unrequested variants.
    assert_eq!(dag.root_node().variants.get("debug"), Some(&false));
}

#[test]
fn fig2b_version_constraint_on_root() {
    let dag = concretize("mpileaks@2.3").unwrap();
    assert_eq!(dag.root_node().version.to_string(), "2.3");
    let dag = concretize("mpileaks@:1.0").unwrap();
    assert_eq!(dag.root_node().version.to_string(), "1.0");
}

#[test]
fn fig2c_dependency_constraints_apply_anywhere() {
    let dag = concretize("mpileaks@2.3 ^callpath@1.0+debug ^libelf@0.8.11").unwrap();
    let callpath = dag.node(dag.by_name("callpath").unwrap());
    // `@1.0` has prefix-inclusive semantics (as in 2015 Spack), so the
    // newest 1.0-prefixed release wins.
    assert_eq!(callpath.version.to_string(), "1.0.2");
    assert_eq!(callpath.variants.get("debug"), Some(&true));
    // libelf is a transitive dependency (via dyninst and libdwarf), yet
    // the constraint reaches it by name.
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    assert_eq!(libelf.version.to_string(), "0.8.11");
}

#[test]
fn compiler_constraint_propagates_to_dag() {
    let dag = concretize("mpileaks%gcc@4.7.3").unwrap();
    for node in dag.nodes() {
        assert_eq!(node.compiler.to_string(), "gcc@4.7.3", "{}", node.name);
    }
}

#[test]
fn dependency_compiler_can_differ() {
    // Table 2 row 7: callpath built with gcc@4.7.3 while the root uses
    // gcc@4.9.2.
    let dag = concretize("mpileaks%gcc@4.9.2 ^callpath%gcc@4.7.3").unwrap();
    let root = dag.root_node();
    assert_eq!(root.compiler.to_string(), "gcc@4.9.2");
    let callpath = dag.node(dag.by_name("callpath").unwrap());
    assert_eq!(callpath.compiler.to_string(), "gcc@4.7.3");
    // Nodes without their own constraint inherit the root's.
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    assert_eq!(libelf.compiler.to_string(), "gcc@4.9.2");
}

#[test]
fn forcing_an_mpi_provider() {
    // §3.4: "force the build to use a particular MPI implementation by
    // supplying ^openmpi or ^mpich".
    for provider in ["openmpi", "mpich", "mvapich2"] {
        let dag = concretize(&format!("mpileaks ^{provider}")).unwrap();
        assert!(dag.by_name(provider).is_some(), "forced {provider}");
    }
}

#[test]
fn fig5_gerris_rejects_old_mpich() {
    // gerris needs mpi@2:; if the user forces mpich, version 3.0.4 (which
    // provides mpi@:3) must be chosen, not 1.2 (mpi@:1).
    let dag = concretize("gerris ^mpich").unwrap();
    let mpich = dag.node(dag.by_name("mpich").unwrap());
    assert_eq!(mpich.version.to_string(), "3.0.4");
}

#[test]
fn fig5_interface_version_selects_provider_version() {
    // Asking for MPI interface 3.0 rules out mvapich2@1.9 (mpi@:2.2), so
    // mvapich2@2.0 (mpi@:3.0) is selected.
    let dag = concretize("mpileaks ^mpi@3.0 ^mvapich2").unwrap();
    let mv = dag.node(dag.by_name("mvapich2").unwrap());
    assert_eq!(mv.version.to_string(), "2.0");
    // Conversely, pinning the provider version picks the compatible
    // provides() entry instead of the most capable one.
    let dag = concretize("mpileaks ^mvapich2@1.9").unwrap();
    let mv = dag.node(dag.by_name("mvapich2").unwrap());
    assert_eq!(mv.version.to_string(), "1.9");
}

#[test]
fn one_mpi_implementation_per_dag() {
    // Both mpileaks and callpath depend on mpi; they must share one
    // provider node (§3.2.1: one configuration per package per DAG).
    let dag = concretize("mpileaks").unwrap();
    let provider = ["mpich", "mvapich2", "openmpi"]
        .into_iter()
        .find(|m| dag.by_name(m).is_some())
        .unwrap();
    let pid = dag.by_name(provider).unwrap();
    let root_deps = &dag.root_node().deps;
    let callpath = dag.node(dag.by_name("callpath").unwrap());
    assert!(root_deps.contains(&pid));
    assert!(callpath.deps.contains(&pid));
}

#[test]
fn conditional_dependency_on_compiler_version() {
    // §3.2.4 ROSE example.
    let dag = concretize("rose%gcc@4.9.2").unwrap();
    let boost = dag.node(dag.by_name("boost").unwrap());
    assert_eq!(boost.version.to_string(), "1.54.0");
    let dag = concretize("rose%gcc@5.2.0").unwrap();
    let boost = dag.node(dag.by_name("boost").unwrap());
    assert_eq!(boost.version.to_string(), "1.59.0");
}

#[test]
fn conditional_dependency_on_variant() {
    // §3.2.4: depends_on('mpi', when='+mpi').
    let with_mpi = concretize("hdf5+mpi").unwrap();
    assert!(with_mpi.len() >= 2, "expected an MPI provider");
    let without = concretize("hdf5~mpi").unwrap();
    assert_eq!(without.len(), 1);
    // Default variant value (+mpi) applies when unspecified.
    let default = concretize("hdf5").unwrap();
    assert!(default.len() >= 2);
}

#[test]
fn greedy_conflict_hwloc_example() {
    // §4.5: the policy-chosen MPI pins hwloc@1.8 while the root needs
    // hwloc@1.9. Greedy refuses rather than backtracking.
    let repos = paper_repo();
    let mut cfg = config();
    cfg.push_scope_text("user", "providers mpi = strictmpi\n")
        .unwrap();
    let err = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("needs-hwloc19").unwrap())
        .unwrap_err();
    assert!(matches!(err, ConcretizeError::Conflict(_)), "{err}");
    // Being explicit (the paper's suggested user fix) resolves it.
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("needs-hwloc19 ^loosempi").unwrap())
        .unwrap();
    assert!(dag.by_name("loosempi").is_some());
}

#[test]
fn provider_order_policy_is_respected() {
    let repos = paper_repo();
    let mut cfg = config();
    cfg.push_scope_text("site", "providers mpi = openmpi,mpich\n")
        .unwrap();
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("mpileaks").unwrap())
        .unwrap();
    assert!(dag.by_name("openmpi").is_some());
}

#[test]
fn compiler_order_policy_is_respected() {
    // §4.3.1: compiler_order = icc,gcc@4.9.3 — here intel first.
    let repos = paper_repo();
    let mut cfg = config();
    cfg.push_scope_text("user", "compiler_order = intel,gcc\n")
        .unwrap();
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("libelf").unwrap())
        .unwrap();
    assert_eq!(dag.root_node().compiler.name, "intel");
}

#[test]
fn version_preference_policy() {
    let repos = paper_repo();
    let mut cfg = config();
    cfg.push_scope_text("site", "prefer libelf = 0.8.11\n")
        .unwrap();
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("mpileaks").unwrap())
        .unwrap();
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    assert_eq!(libelf.version.to_string(), "0.8.11");
    // An explicit request still overrides the preference.
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("mpileaks ^libelf@0.8.13").unwrap())
        .unwrap();
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    assert_eq!(libelf.version.to_string(), "0.8.13");
}

#[test]
fn variant_preference_policy() {
    let repos = paper_repo();
    let mut cfg = config();
    cfg.push_scope_text("site", "variants mpileaks = +debug\n")
        .unwrap();
    let dag = Concretizer::new(&repos, &cfg)
        .concretize(&Spec::parse("mpileaks").unwrap())
        .unwrap();
    assert_eq!(dag.root_node().variants.get("debug"), Some(&true));
}

#[test]
fn unknown_version_is_extrapolated_when_pinned() {
    // §3.2.3: "If the user requests a specific version on the command line
    // that is unknown to Spack, Spack will attempt to fetch and install it."
    let dag = concretize("libelf@0.8.14").unwrap();
    assert_eq!(dag.root_node().version.to_string(), "0.8.14");
    // But an unsatisfiable *range* is an error.
    let err = concretize("libelf@2:").unwrap_err();
    assert!(matches!(err, ConcretizeError::NoSatisfyingVersion { .. }));
}

#[test]
fn error_cases() {
    assert!(matches!(
        concretize("no-such-package"),
        Err(ConcretizeError::UnknownPackage(_))
    ));
    assert!(matches!(
        concretize("mpileaks+nonexistent-variant"),
        Err(ConcretizeError::UnknownVariant { .. })
    ));
    assert!(matches!(
        concretize("gerris ^mpi@9:"),
        Err(ConcretizeError::NoProvider { .. })
    ));
    // ^name that is not a dependency of the root.
    assert!(matches!(
        concretize("libelf ^boost"),
        Err(ConcretizeError::Conflict(_))
    ));
}

#[test]
fn conflicting_user_and_package_constraints_error() {
    // gerris (package file) needs mpi@2:, the user demands mpi@:1 —
    // the intersection is empty, so no provider can satisfy it.
    assert!(concretize("gerris ^mpi@:1").is_err());
    // Inline contradictions are caught at parse time already.
    assert!(Spec::parse("mpileaks@1.0@2.0").is_err());
}

#[test]
fn root_can_be_virtual() {
    // `spack install mpi` — pick and build a provider directly.
    let dag = concretize("mpi").unwrap();
    assert!(["mpich", "mvapich2", "openmpi", "strictmpi", "loosempi"]
        .contains(&dag.root_node().name.as_str()));
}

#[test]
fn concretization_is_deterministic() {
    let a = concretize("mpileaks ^mvapich2@1.9 ^callpath@1.0+debug").unwrap();
    let b = concretize("mpileaks ^mvapich2@1.9 ^callpath@1.0+debug").unwrap();
    assert_eq!(spack_spec::dag_hash(&a), spack_spec::dag_hash(&b));
}

#[test]
fn concrete_dag_satisfies_original_request() {
    let request = Spec::parse("mpileaks@1.1:2.3+debug ^libelf@0.8.11").unwrap();
    let dag = concretize("mpileaks@1.1:2.3+debug ^libelf@0.8.11").unwrap();
    assert!(dag.satisfies(&request));
}
