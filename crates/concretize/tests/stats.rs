//! Tests for the concretization statistics used by the Fig. 8 harness.

use spack_concretize::{Concretizer, Config};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::Spec;

fn world() -> (RepoStack, Config) {
    let mut r = Repository::new("builtin");
    r.register(
        PackageBuilder::new("leaf")
            .version("1.0", "aa")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("mid")
            .version("1.0", "ba")
            .depends_on("leaf")
            .depends_on("iface")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("impl-a")
            .version("1.0", "ca")
            .provides("iface@:2")
            .build()
            .unwrap(),
    )
    .unwrap();
    r.register(
        PackageBuilder::new("root")
            .version("1.0", "da")
            .depends_on("mid")
            .depends_on("iface")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Config::new();
    c.register_compiler("gcc", "4.9.3", &[]);
    c.push_scope_text("site", "arch = linux-x86_64\ncompiler = gcc\n")
        .unwrap();
    (RepoStack::with_builtin(r), c)
}

#[test]
fn stats_reflect_the_solve() {
    let (repos, config) = world();
    let (dag, stats) = Concretizer::new(&repos, &config)
        .concretize_with_stats(&Spec::parse("root").unwrap())
        .unwrap();
    assert_eq!(dag.len(), 4);
    assert_eq!(stats.dag_nodes, 4);
    // Every node's parameters were pinned exactly once.
    assert_eq!(stats.pins, 4);
    // One virtual interface was resolved (consistently, for two edges).
    assert_eq!(stats.virtuals_resolved, 1);
    // At least one propagation pass per pin plus the final quiescent one.
    assert!(stats.propagation_passes >= stats.pins);
}

#[test]
fn single_node_solve_is_minimal() {
    let (repos, config) = world();
    let (dag, stats) = Concretizer::new(&repos, &config)
        .concretize_with_stats(&Spec::parse("leaf").unwrap())
        .unwrap();
    assert_eq!(dag.len(), 1);
    assert_eq!(stats.pins, 1);
    assert_eq!(stats.virtuals_resolved, 0);
}
