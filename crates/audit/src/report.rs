//! Diagnostics and the audit report: stable codes, severities, and both
//! human-readable and machine-readable renderings.

use std::fmt;

/// How bad a finding is.
///
/// Ordering matters: `Error` sorts before `Warn` before `Info`, so a
/// sorted report leads with what must be fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The recipe is wrong: concretization or install of some requested
    /// configuration will fail, or can never succeed as written.
    Error,
    /// The recipe is suspicious: dead rules, shadowed directives, default
    /// configurations that trip declared conflicts.
    Warn,
    /// Informational: nothing is broken, but the repository carries
    /// vestigial declarations worth knowing about.
    Info,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from one audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-matchable code, e.g. `AUD001`. Codes are never
    /// reused for a different meaning once published.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Package the finding is anchored to.
    pub package: String,
    /// The directive (rendered roughly as it appears in the recipe) that
    /// triggered the finding, when one directive is to blame.
    pub directive: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:5} [{}]", self.code, self.severity, self.package)?;
        if let Some(d) = &self.directive {
            write!(f, " {d}:")?;
        }
        write!(f, " {}", self.message)
    }
}

/// The result of auditing a repository: every diagnostic from every pass,
/// sorted by (severity, package, code) for stable output.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// Record one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Sort diagnostics into canonical order: errors first, then by
    /// package, code, and message. Called once after all passes run.
    pub(crate) fn finalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.severity, &a.package, a.code, &a.message)
                .cmp(&(b.severity, &b.package, b.code, &b.message))
        });
        self.diagnostics.dedup();
    }

    /// All diagnostics, in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Iterate over the diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn`-severity findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of `Info`-severity findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Clean means no errors; warnings and infos do not make a repository
    /// dirty.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings with a given code, for targeted assertions in tests.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human-readable rendering: one line per diagnostic plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.error_count(),
            self.warn_count(),
            self.info_count()
        ));
        out
    }

    /// Machine-readable rendering. Hand-rolled (the workspace carries no
    /// serialization dependency); the schema is:
    ///
    /// ```json
    /// {"diagnostics": [{"code": "...", "severity": "...", "package": "...",
    ///                   "directive": "..."|null, "message": "..."}],
    ///  "errors": 0, "warnings": 0, "infos": 0}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"package\":{},\"directive\":{},\"message\":{}}}",
                json_string(d.code),
                json_string(d.severity.label()),
                json_string(&d.package),
                match &d.directive {
                    Some(dir) => json_string(dir),
                    None => "null".to_string(),
                },
                json_string(&d.message),
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.error_count(),
            self.warn_count(),
            self.info_count()
        ));
        out
    }
}

/// Escape and quote a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, severity: Severity, package: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            package: package.to_string(),
            directive: Some(format!("depends_on(\"{package}\")")),
            message: "something is off".to_string(),
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut r = AuditReport::new();
        assert!(r.is_clean() && r.is_empty());
        r.push(diag("AUD001", Severity::Error, "b"));
        r.push(diag("AUD005", Severity::Warn, "a"));
        r.push(diag("AUD010", Severity::Info, "c"));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.info_count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn finalize_sorts_errors_first_and_dedups() {
        let mut r = AuditReport::new();
        r.push(diag("AUD010", Severity::Info, "a"));
        r.push(diag("AUD001", Severity::Error, "z"));
        r.push(diag("AUD001", Severity::Error, "z"));
        r.finalize();
        assert_eq!(r.len(), 2);
        assert_eq!(r.diagnostics()[0].code, "AUD001");
        assert_eq!(r.diagnostics()[1].code, "AUD010");
    }

    #[test]
    fn text_rendering_is_one_line_per_finding() {
        let mut r = AuditReport::new();
        r.push(diag("AUD001", Severity::Error, "mpileaks"));
        let text = r.render_text();
        assert!(text.contains("AUD001 error [mpileaks] depends_on(\"mpileaks\"):"));
        assert!(text.contains("1 error(s), 0 warning(s), 0 info(s)"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let mut r = AuditReport::new();
        r.push(Diagnostic {
            code: "AUD003",
            severity: Severity::Error,
            package: "libdwarf".to_string(),
            directive: None,
            message: "a \"quoted\"\nthing".to_string(),
        });
        let json = r.to_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\"directive\":null"));
        assert!(json.contains("a \\\"quoted\\\"\\nthing"));
        assert!(json.ends_with("\"errors\":1,\"warnings\":0,\"infos\":0}"));
    }
}
