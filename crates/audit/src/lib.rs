//! # spack-audit
//!
//! Static analysis over package repositories: a multi-pass auditor that
//! walks every visible [`spack_package::PackageDef`] in a
//! [`spack_package::RepoStack`] — plus the cross-package dependency
//! graph — and reports recipe defects *before* any user hits them at
//! concretization or install time.
//!
//! The SC'15 paper's position is that package recipes are code; code
//! deserves linting. A repository accumulates hundreds of recipes
//! written by many hands (§6 reports 480+ packages across Spack's early
//! forks), and the directive DSL makes it easy to declare conditions
//! that can never fire, dependencies that can never resolve, or version
//! ranges that no release satisfies. Each such defect is invisible until
//! someone asks for exactly the wrong spec. The auditor finds them all
//! at once, statically.
//!
//! Every finding carries a stable code (`AUD001`..`AUD010`), a severity,
//! the package and directive at fault, and a human-readable message; the
//! report renders as text or JSON. See [`passes`] for the code table.
//!
//! ```
//! use spack_audit::audit_repo;
//! use spack_package::{PackageBuilder, Repository, RepoStack};
//!
//! let mut repo = Repository::new("site");
//! repo.register(
//!     PackageBuilder::new("broken")
//!         .version_unchecked("1.0")
//!         .depends_on("no-such-package")
//!         .build()
//!         .unwrap(),
//! ).unwrap();
//! let report = audit_repo(&RepoStack::with_builtin(repo));
//! assert!(!report.is_clean());
//! assert_eq!(report.with_code("AUD001").len(), 1);
//! ```

#![warn(missing_docs)]

mod cycles;
pub mod passes;
pub mod report;

pub use passes::{Auditor, CONVENTIONAL_VIRTUALS};
pub use report::{AuditReport, Diagnostic, Severity};

use spack_package::RepoStack;

/// Run every audit pass over the visible packages of `repos` and return
/// the finalized report.
pub fn audit_repo(repos: &RepoStack) -> AuditReport {
    Auditor::new(repos).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::{PackageBuilder, PackageDef, Repository};

    /// A repo stack holding exactly the given fixture packages.
    fn stack(pkgs: Vec<PackageDef>) -> RepoStack {
        let mut repo = Repository::new("fixture");
        for p in pkgs {
            repo.register(p).unwrap();
        }
        RepoStack::with_builtin(repo)
    }

    fn pkg(name: &str) -> PackageBuilder {
        PackageBuilder::new(name).version_unchecked("1.0")
    }

    #[test]
    fn aud001_unknown_dependency_name() {
        let repos = stack(vec![pkg("a").depends_on("no-such-thing").build().unwrap()]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD001");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert_eq!(hits[0].package, "a");
        assert!(hits[0].message.contains("no-such-thing"));
        assert!(!report.is_clean());
    }

    #[test]
    fn aud001_not_raised_for_provided_virtuals() {
        // `fastio` is no conventional virtual, but a provider makes it one.
        let repos = stack(vec![
            pkg("a").depends_on("fastio").build().unwrap(),
            pkg("iolib").provides("fastio").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        assert!(report.with_code("AUD001").is_empty());
    }

    #[test]
    fn aud002_virtual_with_no_provider() {
        let repos = stack(vec![pkg("a").depends_on("mpi").build().unwrap()]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD002");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0]
            .message
            .contains("no package in the repository provides"));
        // It is a *known* virtual, so AUD001 must not also fire.
        assert!(report.with_code("AUD001").is_empty());
    }

    #[test]
    fn aud002_suppressed_once_a_provider_exists() {
        let repos = stack(vec![
            pkg("a").depends_on("mpi").build().unwrap(),
            pkg("mpich").provides("mpi").build().unwrap(),
        ]);
        assert!(audit_repo(&repos).with_code("AUD002").is_empty());
    }

    #[test]
    fn aud003_dep_version_range_matches_nothing() {
        let repos = stack(vec![
            pkg("a").depends_on("b@3:").build().unwrap(),
            PackageBuilder::new("b")
                .version_unchecked("1.0")
                .version_unchecked("2.0")
                .build()
                .unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD003");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(
            hits[0].message.contains("declared versions (2.0, 1.0)")
                || hits[0].message.contains("declared versions (1.0, 2.0)")
        );
    }

    #[test]
    fn aud003_virtual_interface_versions_checked_against_providers() {
        let repos = stack(vec![
            pkg("a").depends_on("mpi@3:").build().unwrap(),
            pkg("mpich").provides("mpi@:2.2").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        assert_eq!(report.with_code("AUD003").len(), 1);

        // A provider covering MPI 3 silences it.
        let repos = stack(vec![
            pkg("a").depends_on("mpi@3:").build().unwrap(),
            pkg("mpich").provides("mpi@:2.2").build().unwrap(),
            pkg("openmpi").provides("mpi@:3.1").build().unwrap(),
        ]);
        assert!(audit_repo(&repos).with_code("AUD003").is_empty());
    }

    #[test]
    fn aud004_when_condition_on_undeclared_variant() {
        let repos = stack(vec![
            pkg("a")
                .variant("debug", false, "debug build")
                .depends_on_when("b", "+fast")
                .build()
                .unwrap(),
            pkg("b").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD004");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("`fast`"));
    }

    #[test]
    fn aud004_covers_patch_provides_conflicts_and_install_rules() {
        let repos = stack(vec![pkg("a")
            .patch_when("fix.patch", "+p1")
            .provides_when("mpi", "+p2")
            .conflicts("+p3", "never builds")
            .install_when("+p4", spack_package::BuildRecipe::autotools())
            .build()
            .unwrap()]);
        let report = audit_repo(&repos);
        assert_eq!(report.with_code("AUD004").len(), 4);
    }

    #[test]
    fn aud005_default_variants_trip_own_conflict() {
        let repos = stack(vec![pkg("a")
            .variant("debug", true, "debug build")
            .conflicts("+debug", "debug builds are broken on this release")
            .build()
            .unwrap()]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD005");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].message.contains("default configuration"));

        // Flip the default: conflict no longer triggered by default config.
        let repos = stack(vec![pkg("a")
            .variant("debug", false, "debug build")
            .conflicts("+debug", "debug builds are broken on this release")
            .build()
            .unwrap()]);
        assert!(audit_repo(&repos).with_code("AUD005").is_empty());
    }

    #[test]
    fn aud006_unconditional_cycle_is_an_error() {
        let repos = stack(vec![
            pkg("a").depends_on("b").build().unwrap(),
            pkg("b").depends_on("a").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD006");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("a -> b -> a"));
    }

    #[test]
    fn aud006_conditional_cycle_is_a_warning() {
        let repos = stack(vec![
            pkg("a")
                .variant("withb", false, "pull in b")
                .depends_on_when("b", "+withb")
                .build()
                .unwrap(),
            pkg("b").depends_on("a").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD006");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
    }

    #[test]
    fn aud007_exact_duplicate_is_a_warning() {
        let repos = stack(vec![
            pkg("a").depends_on("b").depends_on("b").build().unwrap(),
            pkg("b").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD007");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
    }

    #[test]
    fn aud007_contradictory_duplicates_are_an_error() {
        let repos = stack(vec![
            pkg("a")
                .depends_on("b@1.0")
                .depends_on("b@2.0")
                .build()
                .unwrap(),
            PackageBuilder::new("b")
                .version_unchecked("1.0")
                .version_unchecked("2.0")
                .build()
                .unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD007");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("cannot both hold"));
    }

    #[test]
    fn aud008_dead_version_guard() {
        let repos = stack(vec![pkg("a")
            .patch_when("old-compilers.patch", "@2:")
            .build()
            .unwrap()]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD008");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].message.contains("dead"));
    }

    #[test]
    fn aud008_live_version_guard_is_silent() {
        let repos = stack(vec![pkg("a")
            .version_unchecked("2.1")
            .patch_when("old-compilers.patch", "@2:")
            .build()
            .unwrap()]);
        assert!(audit_repo(&repos).with_code("AUD008").is_empty());
    }

    #[test]
    fn aud009_dep_sets_variant_target_lacks() {
        let repos = stack(vec![
            pkg("a").depends_on("b+shared").build().unwrap(),
            pkg("b").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD009");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].message.contains("`shared`"));
    }

    #[test]
    fn aud010_provided_but_unused_virtual() {
        let repos = stack(vec![pkg("mpich").provides("mpi").build().unwrap()]);
        let report = audit_repo(&repos);
        let hits = report.with_code("AUD010");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Info);
        assert_eq!(hits[0].package, "mpich");
        // Info findings do not make the repository dirty.
        assert!(report.is_clean());
    }

    #[test]
    fn healthy_repo_is_fully_quiet() {
        let repos = stack(vec![
            pkg("app")
                .variant("fast", true, "optimized build")
                .depends_on("lib@1:")
                .depends_on("mpi")
                .build()
                .unwrap(),
            pkg("lib").build().unwrap(),
            pkg("mpich").provides("mpi@:3").build().unwrap(),
        ]);
        let report = audit_repo(&repos);
        assert!(report.is_empty(), "{}", report.render_text());
    }
}
