//! The audit passes: each walks the package set (and, for AUD006, the
//! cross-package dependency graph) and appends diagnostics to a report.
//!
//! | Code   | Severity | Finding |
//! |--------|----------|---------|
//! | AUD001 | error    | dependency names neither a package nor a provided virtual |
//! | AUD002 | error    | known virtual depended on but no package provides it |
//! | AUD003 | error    | dependency version constraint admits none of the target's versions |
//! | AUD004 | error    | `when=` condition references a variant the package never declares |
//! | AUD005 | warn     | default-variant configuration trips the package's own `conflicts()` |
//! | AUD006 | error/warn | dependency cycle in the package graph (warn when `when=`-broken) |
//! | AUD007 | warn/error | duplicate directives (error when their constraints conflict) |
//! | AUD008 | warn     | self-referential version constraint matches no declared version |
//! | AUD009 | warn     | dependency spec sets a variant the target never declares |
//! | AUD010 | info     | virtual is provided but nothing in the repository depends on it |

use crate::cycles::{find_cycles, DepGraph};
use crate::report::{AuditReport, Diagnostic, Severity};
use spack_package::{DepKind, DependencyDirective, PackageDef, RepoStack};
use spack_spec::{Spec, Version, VersionList};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Virtual names that are conventionally virtual interfaces in HPC stacks
/// (SC'15 §3.3). A dependency on one of these with no registered provider
/// is reported as a missing provider (AUD002) rather than an unknown
/// package (AUD001).
pub const CONVENTIONAL_VIRTUALS: &[&str] = &["blas", "fft", "lapack", "mpi"];

/// The multi-pass repository auditor. Construct with [`Auditor::new`],
/// run every pass with [`Auditor::run`], or call individual `pass_*`
/// methods to scope the analysis.
pub struct Auditor<'a> {
    packages: Vec<&'a Arc<PackageDef>>,
    /// Real package names visible in the stack.
    names: BTreeSet<&'a str>,
    /// Virtual name → providers (packages with a `provides()` for it).
    providers: BTreeMap<&'a str, Vec<&'a str>>,
}

impl<'a> Auditor<'a> {
    /// Index the visible packages of a repository stack (shadowed
    /// packages in lower repos are not audited — site overrides replace
    /// them, exactly as concretization would see it).
    pub fn new(repos: &'a RepoStack) -> Auditor<'a> {
        let mut packages = repos.visible_packages();
        packages.sort_by(|a, b| a.name.cmp(&b.name));
        let names = packages.iter().map(|p| p.name.as_str()).collect();
        let mut providers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for pkg in &packages {
            for p in &pkg.provides {
                if let Some(v) = p.vspec.name.as_deref() {
                    providers.entry(v).or_default().push(pkg.name.as_str());
                }
            }
        }
        Auditor {
            packages,
            names,
            providers,
        }
    }

    /// Run every pass and return the finalized report.
    pub fn run(&self) -> AuditReport {
        let mut report = AuditReport::new();
        self.pass_unknown_dependencies(&mut report);
        self.pass_unprovided_virtuals(&mut report);
        self.pass_unsatisfiable_dep_versions(&mut report);
        self.pass_undeclared_when_variants(&mut report);
        self.pass_default_conflicts(&mut report);
        self.pass_dependency_cycles(&mut report);
        self.pass_duplicate_directives(&mut report);
        self.pass_dead_self_versions(&mut report);
        self.pass_undeclared_dep_variants(&mut report);
        self.pass_unused_virtuals(&mut report);
        report.finalize();
        report
    }

    /// Is `name` a virtual as far as this repository is concerned: either
    /// some package provides it, or it is a conventional HPC interface.
    fn is_virtual(&self, name: &str) -> bool {
        self.providers.contains_key(name) || CONVENTIONAL_VIRTUALS.contains(&name)
    }

    /// AUD001: `depends_on` naming something that is neither a package in
    /// the repository nor a virtual anything provides (or could).
    pub fn pass_unknown_dependencies(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            for dep in &pkg.dependencies {
                let Some(name) = dep.spec.name.as_deref() else {
                    continue;
                };
                if !self.names.contains(name) && !self.is_virtual(name) {
                    report.push(Diagnostic {
                        code: "AUD001",
                        severity: Severity::Error,
                        package: pkg.name.clone(),
                        directive: Some(render_depends_on(dep)),
                        message: format!(
                            "depends on `{name}`, which is neither a package in the \
                             repository nor a provided virtual"
                        ),
                    });
                }
            }
        }
    }

    /// AUD002: a known virtual is depended on, but zero packages provide
    /// it — every spec requiring it would fail to concretize.
    pub fn pass_unprovided_virtuals(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            for dep in &pkg.dependencies {
                let Some(name) = dep.spec.name.as_deref() else {
                    continue;
                };
                if self.names.contains(name) {
                    continue;
                }
                if CONVENTIONAL_VIRTUALS.contains(&name)
                    && self.providers.get(name).is_none_or(|p| p.is_empty())
                {
                    report.push(Diagnostic {
                        code: "AUD002",
                        severity: Severity::Error,
                        package: pkg.name.clone(),
                        directive: Some(render_depends_on(dep)),
                        message: format!(
                            "depends on virtual `{name}`, but no package in the \
                             repository provides it"
                        ),
                    });
                }
            }
        }
    }

    /// AUD003: a dependency's version constraint is disjoint from every
    /// version the target declares (or, for a virtual, from every
    /// provider's provided interface versions).
    pub fn pass_unsatisfiable_dep_versions(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            for dep in &pkg.dependencies {
                let Some(name) = dep.spec.name.as_deref() else {
                    continue;
                };
                let constraint = &dep.spec.versions;
                if constraint.is_any() {
                    continue;
                }
                if let Some(target) = self.package(name) {
                    let declared = target.known_versions();
                    if declared.is_empty() {
                        continue;
                    }
                    if !declared.iter().any(|v| constraint.contains(v)) {
                        report.push(Diagnostic {
                            code: "AUD003",
                            severity: Severity::Error,
                            package: pkg.name.clone(),
                            directive: Some(render_depends_on(dep)),
                            message: format!(
                                "version constraint `@{constraint}` admits none of \
                                 `{name}`'s declared versions ({})",
                                render_versions(&declared)
                            ),
                        });
                    }
                } else if let Some(providers) = self.providers.get(name) {
                    // Virtual: some provider's provides() interface
                    // versions must intersect the constraint.
                    let satisfiable = providers.iter().any(|p| {
                        self.package(p).is_some_and(|prov| {
                            prov.provides.iter().any(|d| {
                                d.vspec.name.as_deref() == Some(name)
                                    && d.vspec.versions.intersection(constraint).is_some()
                            })
                        })
                    });
                    if !satisfiable {
                        report.push(Diagnostic {
                            code: "AUD003",
                            severity: Severity::Error,
                            package: pkg.name.clone(),
                            directive: Some(render_depends_on(dep)),
                            message: format!(
                                "no provider of virtual `{name}` provides a version \
                                 satisfying `@{constraint}`"
                            ),
                        });
                    }
                }
            }
        }
    }

    /// AUD004: a `when=` predicate (on `depends_on`, `patch`, `provides`,
    /// `conflicts`, or an `@when` install rule) tests a variant the
    /// package never declares — the condition can never hold.
    pub fn pass_undeclared_when_variants(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            let declared = pkg.variant_names();
            let check = |when: &Spec, context: String, report: &mut AuditReport| {
                // Only self-referential conditions: a named condition on a
                // different package is judged against that package.
                if when.name.as_deref().is_some_and(|n| n != pkg.name) {
                    return;
                }
                for var in when.variants.keys() {
                    if !declared.contains(var.as_str()) {
                        report.push(Diagnostic {
                            code: "AUD004",
                            severity: Severity::Error,
                            package: pkg.name.clone(),
                            directive: Some(context.clone()),
                            message: format!(
                                "condition references variant `{var}`, which \
                                 `{}` does not declare",
                                pkg.name
                            ),
                        });
                    }
                }
            };
            for dep in &pkg.dependencies {
                if let Some(w) = &dep.when {
                    check(w, render_depends_on(dep), report);
                }
            }
            for patch in &pkg.patches {
                if let Some(w) = &patch.when {
                    check(
                        w,
                        format!("patch(\"{}\", when=\"{w}\")", patch.name),
                        report,
                    );
                }
            }
            for prov in &pkg.provides {
                if let Some(w) = &prov.when {
                    check(
                        w,
                        format!("provides(\"{}\", when=\"{w}\")", prov.vspec),
                        report,
                    );
                }
            }
            for conflict in &pkg.conflicts {
                check(
                    &conflict.spec,
                    format!("conflicts(\"{}\")", conflict.spec),
                    report,
                );
                if let Some(w) = &conflict.when {
                    check(
                        w,
                        format!("conflicts(\"{}\", when=\"{w}\")", conflict.spec),
                        report,
                    );
                }
            }
            for (when, _) in pkg.install_rules.cases() {
                check(when, format!("@when(\"{when}\") install"), report);
            }
        }
    }

    /// AUD005: the package's *default* configuration — preferred (or
    /// newest) version, every variant at its default — satisfies one of
    /// its own `conflicts()` directives, so a bare `spack install <name>`
    /// would be refused.
    pub fn pass_default_conflicts(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            if pkg.conflicts.is_empty() {
                continue;
            }
            let mut spec = Spec::named(&pkg.name);
            if let Some(v) = default_version(pkg) {
                spec.versions = VersionList::exact(v.clone());
            }
            for var in &pkg.variants {
                spec.variants.insert(var.name.clone(), var.default);
            }
            if let Some(c) = pkg.conflict_for(&spec) {
                report.push(Diagnostic {
                    code: "AUD005",
                    severity: Severity::Warn,
                    package: pkg.name.clone(),
                    directive: Some(format!("conflicts(\"{}\")", c.spec)),
                    message: format!(
                        "default configuration `{spec}` trips this conflict: {}",
                        c.message
                    ),
                });
            }
        }
    }

    /// AUD006: cycles in the cross-package dependency graph. A cycle of
    /// unconditional edges can never concretize (error); one involving a
    /// `when=` edge may be satisfiable, but deserves a look (warn).
    pub fn pass_dependency_cycles(&self, report: &mut AuditReport) {
        let mut graph = DepGraph::new();
        for pkg in &self.packages {
            let entry = graph.entry(pkg.name.clone()).or_default();
            for dep in &pkg.dependencies {
                if let Some(name) = dep.spec.name.as_deref() {
                    if self.names.contains(name) {
                        entry.push((name.to_string(), dep.when.is_some()));
                    }
                }
            }
        }
        for cycle in find_cycles(&graph) {
            let (severity, qualifier) = if cycle.conditional {
                (Severity::Warn, "conditional on `when=` predicates")
            } else {
                (Severity::Error, "unconditional, so it can never concretize")
            };
            report.push(Diagnostic {
                code: "AUD006",
                severity,
                package: cycle.path[0].clone(),
                directive: None,
                message: format!("dependency cycle {} ({qualifier})", cycle.render()),
            });
        }
    }

    /// AUD007: duplicate or shadowed directives. Two `depends_on` for the
    /// same target under the same condition are redundant (warn) — unless
    /// their constraints cannot be merged, in which case concretization of
    /// any spec reaching both is doomed (error). Duplicate `version()` and
    /// `variant()` declarations are also flagged.
    pub fn pass_duplicate_directives(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            // depends_on pairs on the same target with the same when=.
            for (i, a) in pkg.dependencies.iter().enumerate() {
                for b in pkg.dependencies.iter().skip(i + 1) {
                    if a.spec.name != b.spec.name || a.when != b.when {
                        continue;
                    }
                    if a.spec == b.spec && a.kind == b.kind {
                        report.push(Diagnostic {
                            code: "AUD007",
                            severity: Severity::Warn,
                            package: pkg.name.clone(),
                            directive: Some(render_depends_on(a)),
                            message: "duplicate depends_on directive".to_string(),
                        });
                    } else if a.spec.clone().constrain(&b.spec).is_err() {
                        report.push(Diagnostic {
                            code: "AUD007",
                            severity: Severity::Error,
                            package: pkg.name.clone(),
                            directive: Some(render_depends_on(a)),
                            message: format!(
                                "conflicts with sibling directive {}: the \
                                 constraints cannot both hold",
                                render_depends_on(b)
                            ),
                        });
                    }
                }
            }
            // Duplicate version() declarations.
            let mut seen_versions: BTreeSet<&Version> = BTreeSet::new();
            for v in &pkg.versions {
                if !seen_versions.insert(&v.version) {
                    report.push(Diagnostic {
                        code: "AUD007",
                        severity: Severity::Warn,
                        package: pkg.name.clone(),
                        directive: Some(format!("version(\"{}\")", v.version)),
                        message: "version declared more than once".to_string(),
                    });
                }
            }
            // Duplicate variant() declarations.
            let mut seen_variants: BTreeSet<&str> = BTreeSet::new();
            for var in &pkg.variants {
                if !seen_variants.insert(var.name.as_str()) {
                    report.push(Diagnostic {
                        code: "AUD007",
                        severity: Severity::Warn,
                        package: pkg.name.clone(),
                        directive: Some(format!("variant(\"{}\")", var.name)),
                        message: "variant declared more than once".to_string(),
                    });
                }
            }
        }
    }

    /// AUD008: a self-referential version constraint (in a `when=`, a
    /// `conflicts()`, or an `@when` install guard) admits none of the
    /// package's declared versions — the rule is dead as written. Warn
    /// rather than error: URL-extrapolated versions outside the declared
    /// set could still trigger it.
    pub fn pass_dead_self_versions(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            let declared = pkg.known_versions();
            if declared.is_empty() {
                continue;
            }
            let check = |cond: &Spec, context: String, report: &mut AuditReport| {
                if cond.name.as_deref().is_some_and(|n| n != pkg.name) {
                    return;
                }
                let vl = &cond.versions;
                if vl.is_any() || declared.iter().any(|v| vl.contains(v)) {
                    return;
                }
                report.push(Diagnostic {
                    code: "AUD008",
                    severity: Severity::Warn,
                    package: pkg.name.clone(),
                    directive: Some(context),
                    message: format!(
                        "version constraint `@{vl}` matches none of the declared \
                         versions ({}); the rule is dead as written",
                        render_versions(&declared)
                    ),
                });
            };
            for dep in &pkg.dependencies {
                if let Some(w) = &dep.when {
                    check(w, render_depends_on(dep), report);
                }
            }
            for patch in &pkg.patches {
                if let Some(w) = &patch.when {
                    check(
                        w,
                        format!("patch(\"{}\", when=\"{w}\")", patch.name),
                        report,
                    );
                }
            }
            for prov in &pkg.provides {
                if let Some(w) = &prov.when {
                    check(
                        w,
                        format!("provides(\"{}\", when=\"{w}\")", prov.vspec),
                        report,
                    );
                }
            }
            for conflict in &pkg.conflicts {
                check(
                    &conflict.spec,
                    format!("conflicts(\"{}\")", conflict.spec),
                    report,
                );
                if let Some(w) = &conflict.when {
                    check(
                        w,
                        format!("conflicts(\"{}\", when=\"{w}\")", conflict.spec),
                        report,
                    );
                }
            }
            for (when, _) in pkg.install_rules.cases() {
                check(when, format!("@when(\"{when}\") install"), report);
            }
        }
    }

    /// AUD009: a dependency spec forces a variant (`+x`/`~x`) that the
    /// target package never declares. The concretizer would carry the
    /// setting nowhere; almost always a typo or a stale recipe.
    pub fn pass_undeclared_dep_variants(&self, report: &mut AuditReport) {
        for pkg in &self.packages {
            for dep in &pkg.dependencies {
                let Some(target) = dep.spec.name.as_deref().and_then(|n| self.package(n)) else {
                    continue;
                };
                let declared = target.variant_names();
                for var in dep.spec.variants.keys() {
                    if !declared.contains(var.as_str()) {
                        report.push(Diagnostic {
                            code: "AUD009",
                            severity: Severity::Warn,
                            package: pkg.name.clone(),
                            directive: Some(render_depends_on(dep)),
                            message: format!(
                                "sets variant `{var}` on `{}`, which declares no \
                                 such variant",
                                target.name
                            ),
                        });
                    }
                }
            }
        }
    }

    /// AUD010: a virtual interface is provided but nothing in the
    /// repository depends on it. Harmless — external consumers may — but
    /// worth knowing when pruning a repository.
    pub fn pass_unused_virtuals(&self, report: &mut AuditReport) {
        let mut depended: BTreeSet<&str> = BTreeSet::new();
        for pkg in &self.packages {
            for dep in &pkg.dependencies {
                if let Some(n) = dep.spec.name.as_deref() {
                    depended.insert(n);
                }
            }
        }
        for (virt, providers) in &self.providers {
            if !depended.contains(virt) && !self.names.contains(virt) {
                report.push(Diagnostic {
                    code: "AUD010",
                    severity: Severity::Info,
                    package: providers[0].to_string(),
                    directive: Some(format!("provides(\"{virt}\")")),
                    message: format!(
                        "virtual `{virt}` is provided (by {}) but no package \
                         depends on it",
                        providers.join(", ")
                    ),
                });
            }
        }
    }

    fn package(&self, name: &str) -> Option<&PackageDef> {
        self.packages
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.as_ref())
    }
}

/// The version a bare `install <name>` would pick: the preferred version
/// if one is flagged, otherwise the highest declared.
fn default_version(pkg: &PackageDef) -> Option<&Version> {
    pkg.versions
        .iter()
        .find(|v| v.preferred)
        .map(|v| &v.version)
        .or_else(|| pkg.versions.iter().map(|v| &v.version).max())
}

/// Render a dependency directive roughly as it appears in a recipe.
fn render_depends_on(dep: &DependencyDirective) -> String {
    let mut out = format!("depends_on(\"{}\"", dep.spec);
    if let Some(w) = &dep.when {
        out.push_str(&format!(", when=\"{w}\""));
    }
    if dep.kind != DepKind::Link {
        out.push_str(&format!(", type={:?}", dep.kind).to_lowercase());
    }
    out.push(')');
    out
}

/// Comma-joined version list for messages.
fn render_versions(versions: &[&Version]) -> String {
    versions
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
