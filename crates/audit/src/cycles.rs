//! Cycle detection over the name-level dependency graph.
//!
//! Concrete DAGs are acyclic by construction, but the *package-level*
//! graph — "libdwarf's recipe mentions libelf" — can contain cycles the
//! concretizer would only discover at solve time, deep in a user's
//! session. The auditor finds them statically. A cycle composed entirely
//! of unconditional `depends_on` edges can never concretize; a cycle
//! broken by `when=` predicates may be fine (the conditions may be
//! mutually exclusive), so it is reported at a lower severity.

use std::collections::{BTreeMap, BTreeSet};

/// Name-level adjacency: package → (dependency, edge-is-conditional).
/// Only real (non-virtual) packages appear on either side.
pub(crate) type DepGraph = BTreeMap<String, Vec<(String, bool)>>;

/// One representative cycle through the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Cycle {
    /// Package names in order; the last element depends back on the first.
    pub path: Vec<String>,
    /// True when at least one edge on the cycle has a `when=` predicate.
    pub conditional: bool,
}

impl Cycle {
    /// `a -> b -> c -> a` rendering.
    pub fn render(&self) -> String {
        let mut out = self.path.join(" -> ");
        out.push_str(" -> ");
        out.push_str(&self.path[0]);
        out
    }
}

/// Nodes that lie on at least one cycle, found by Kahn's algorithm:
/// repeatedly strip nodes with no remaining incoming edges; whatever
/// survives is cyclic (or downstream-of-cyclic within the core).
fn cyclic_core(graph: &DepGraph) -> BTreeSet<&str> {
    let mut indegree: BTreeMap<&str, usize> = graph.keys().map(|k| (k.as_str(), 0)).collect();
    for edges in graph.values() {
        for (to, _) in edges {
            if let Some(d) = indegree.get_mut(to.as_str()) {
                *d += 1;
            }
        }
    }
    let mut queue: Vec<&str> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut remaining: BTreeSet<&str> = graph.keys().map(|k| k.as_str()).collect();
    while let Some(n) = queue.pop() {
        remaining.remove(n);
        for (to, _) in &graph[n] {
            if let Some(d) = indegree.get_mut(to.as_str()) {
                if *d > 0 {
                    *d -= 1;
                    if *d == 0 && remaining.contains(to.as_str()) {
                        queue.push(to.as_str());
                    }
                }
            }
        }
    }
    // Strip the other direction too: nodes in `remaining` that have no
    // outgoing edge into `remaining` are tails hanging off the core.
    loop {
        let dead: Vec<&str> = remaining
            .iter()
            .filter(|&&n| {
                !graph[n]
                    .iter()
                    .any(|(to, _)| remaining.contains(to.as_str()))
            })
            .copied()
            .collect();
        if dead.is_empty() {
            break;
        }
        for n in dead {
            remaining.remove(n);
        }
    }
    remaining
}

/// Extract one representative cycle per cyclic region of the graph.
/// Deterministic: starts are visited in name order and unconditional
/// edges are preferred, so a fully-unconditional cycle is reported as
/// such whenever one exists through the start node.
pub(crate) fn find_cycles(graph: &DepGraph) -> Vec<Cycle> {
    let core = cyclic_core(graph);
    let mut cycles = Vec::new();
    let mut claimed: BTreeSet<&str> = BTreeSet::new();
    for &start in &core {
        if claimed.contains(start) {
            continue;
        }
        // Iterative DFS restricted to the cyclic core. The path records
        // (node, conditional-flag-of-edge-into-node).
        let mut path: Vec<(&str, bool)> = vec![(start, false)];
        let mut on_path: BTreeSet<&str> = [start].into();
        // Per-path-frame iterator position over sorted neighbors.
        let mut neighbors: Vec<Vec<(&str, bool)>> = vec![sorted_neighbors(graph, &core, start)];
        let mut found: Option<Cycle> = None;
        while let Some(frame) = neighbors.last_mut() {
            let Some((next, cond)) = frame.pop() else {
                let (left, _) = path.pop().unwrap();
                on_path.remove(left);
                neighbors.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&(n, _)| n == next) {
                // Closed a loop: the cycle is path[pos..] with the closing
                // edge's conditionality folded in.
                let slice = &path[pos..];
                let conditional = cond || slice.iter().skip(1).any(|&(_, c)| c);
                found = Some(Cycle {
                    path: slice.iter().map(|&(n, _)| n.to_string()).collect(),
                    conditional,
                });
                break;
            }
            path.push((next, cond));
            on_path.insert(next);
            neighbors.push(sorted_neighbors(graph, &core, next));
        }
        if let Some(cycle) = found {
            for name in &cycle.path {
                // Borrow from the graph's keys so lifetimes line up.
                if let Some((k, _)) = graph.get_key_value(name.as_str()) {
                    claimed.insert(k.as_str());
                }
            }
            cycles.push(cycle);
        }
    }
    cycles
}

/// Neighbors of `n` inside the cyclic core, ordered so that unconditional
/// edges are tried first (popped last → pushed last). `pop()` takes from
/// the back, so sort conditional-first / name-descending.
fn sorted_neighbors<'g>(
    graph: &'g DepGraph,
    core: &BTreeSet<&'g str>,
    n: &str,
) -> Vec<(&'g str, bool)> {
    let mut out: Vec<(&str, bool)> = graph[n]
        .iter()
        .filter(|(to, _)| core.contains(to.as_str()))
        .map(|(to, c)| (to.as_str(), *c))
        .collect();
    out.sort_by(|a, b| (b.1, b.0).cmp(&(a.1, a.0)));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(&str, &str, bool)]) -> DepGraph {
        let mut g = DepGraph::new();
        for &(from, to, cond) in edges {
            g.entry(from.to_string()).or_default();
            g.entry(to.to_string()).or_default();
            g.get_mut(from).unwrap().push((to.to_string(), cond));
        }
        g
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let g = graph(&[("a", "b", false), ("b", "c", false), ("a", "c", false)]);
        assert!(find_cycles(&g).is_empty());
    }

    #[test]
    fn simple_unconditional_cycle() {
        let g = graph(&[("a", "b", false), ("b", "a", false)]);
        let cycles = find_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert!(!cycles[0].conditional);
        assert_eq!(cycles[0].render(), "a -> b -> a");
    }

    #[test]
    fn conditional_edge_marks_cycle_conditional() {
        let g = graph(&[("a", "b", false), ("b", "c", true), ("c", "a", false)]);
        let cycles = find_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].conditional);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(&[("a", "a", false), ("a", "b", false)]);
        let cycles = find_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].path, vec!["a".to_string()]);
    }

    #[test]
    fn disjoint_cycles_are_each_reported() {
        let g = graph(&[
            ("a", "b", false),
            ("b", "a", false),
            ("x", "y", true),
            ("y", "x", false),
        ]);
        let cycles = find_cycles(&g);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn tails_into_a_cycle_are_not_part_of_it() {
        // d -> a -> b -> a; d is upstream of the cycle, not on it.
        let g = graph(&[("d", "a", false), ("a", "b", false), ("b", "a", false)]);
        let cycles = find_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert!(!cycles[0].path.contains(&"d".to_string()));
    }
}
