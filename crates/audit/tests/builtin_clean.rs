//! Integration: every audit pass over the full builtin repository.
//!
//! The acceptance bar for the repository we ship: zero errors, zero
//! warnings. Informational findings are allowed (the `fft` virtual is
//! provided for site-policy and external consumers, which AUD010 cannot
//! see), but anything stronger means a recipe regressed.

use spack_audit::{audit_repo, Auditor, Severity};

#[test]
fn builtin_repo_is_audit_clean() {
    let repos = spack_repo_builtin::repo_stack();
    let report = audit_repo(&repos);
    assert!(report.is_clean(), "audit errors:\n{}", report.render_text());
    assert_eq!(
        report.warn_count(),
        0,
        "audit warnings:\n{}",
        report.render_text()
    );
}

#[test]
fn every_pass_runs_over_the_builtin_repo() {
    // Run each pass individually over all 280 builtin packages: none may
    // panic, and none may produce an error-severity finding.
    let repos = spack_repo_builtin::repo_stack();
    let auditor = Auditor::new(&repos);
    type Pass<'x> = Box<dyn Fn(&mut spack_audit::AuditReport) + 'x>;
    let passes: Vec<(&str, Pass)> = vec![
        (
            "unknown_dependencies",
            Box::new(|r| auditor.pass_unknown_dependencies(r)),
        ),
        (
            "unprovided_virtuals",
            Box::new(|r| auditor.pass_unprovided_virtuals(r)),
        ),
        (
            "unsatisfiable_dep_versions",
            Box::new(|r| auditor.pass_unsatisfiable_dep_versions(r)),
        ),
        (
            "undeclared_when_variants",
            Box::new(|r| auditor.pass_undeclared_when_variants(r)),
        ),
        (
            "default_conflicts",
            Box::new(|r| auditor.pass_default_conflicts(r)),
        ),
        (
            "dependency_cycles",
            Box::new(|r| auditor.pass_dependency_cycles(r)),
        ),
        (
            "duplicate_directives",
            Box::new(|r| auditor.pass_duplicate_directives(r)),
        ),
        (
            "dead_self_versions",
            Box::new(|r| auditor.pass_dead_self_versions(r)),
        ),
        (
            "undeclared_dep_variants",
            Box::new(|r| auditor.pass_undeclared_dep_variants(r)),
        ),
        (
            "unused_virtuals",
            Box::new(|r| auditor.pass_unused_virtuals(r)),
        ),
    ];
    assert!(passes.len() >= 8, "the tentpole promises at least 8 passes");
    for (name, pass) in passes {
        let mut report = spack_audit::AuditReport::new();
        pass(&mut report);
        assert!(
            report.iter().all(|d| d.severity != Severity::Error),
            "pass {name} found errors:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn json_report_round_trips_the_counts() {
    let repos = spack_repo_builtin::repo_stack();
    let report = audit_repo(&repos);
    let json = report.to_json();
    assert!(json.contains("\"errors\":0"), "{json}");
    assert!(json.contains(&format!("\"infos\":{}", report.info_count())));
}
