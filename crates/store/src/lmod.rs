//! Lmod module hierarchies (SC'15 §3.5.4, the paper's stated extension:
//! "Future versions of Spack may also allow the creation of Lmod
//! hierarchies. Spack's rich dependency information would allow automatic
//! generation of such hierarchies.")
//!
//! An Lmod hierarchy solves the "matrix problem" (§2) by nesting module
//! trees: `Core/` holds compiler modules; loading a compiler exposes
//! `compiler/<name>/<version>/` with the packages built by it; loading an
//! MPI exposes `mpi/<compiler>/<mpi>/` with MPI-dependent packages. We
//! generate the full hierarchy automatically from the install database's
//! concrete specs — exactly the information manual conventions lack.

use crate::database::InstallRecord;
use crate::layout::mpi_of;

/// Where in the Lmod tree a package's module lives.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LmodLevel {
    /// `Core/<name>/<version>.lua` — compiler-independent tools.
    Core,
    /// `<compiler>/<compiler-version>/<name>/<version>.lua`.
    Compiler {
        /// Compiler name.
        name: String,
        /// Compiler version.
        version: String,
    },
    /// `<mpi>/<mpi-version>/<compiler>/<compiler-version>/<name>/<version>.lua`.
    Mpi {
        /// MPI implementation name.
        mpi: String,
        /// MPI version.
        mpi_version: String,
        /// Compiler name.
        compiler: String,
        /// Compiler version.
        compiler_version: String,
    },
}

/// A generated Lmod module: its path in the hierarchy plus file content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmodModule {
    /// Level in the hierarchy.
    pub level: LmodLevel,
    /// Path relative to the module root, e.g.
    /// `gcc/4.9.3/mpileaks/2.3.lua`.
    pub path: String,
    /// Lua module file content.
    pub content: String,
}

/// Classify one install into its hierarchy level.
pub fn level_of(rec: &InstallRecord, is_compiler: impl Fn(&str) -> bool) -> LmodLevel {
    let root = rec.dag.root_node();
    // Compilers themselves (and compiler-independent externals like
    // environment tools) live in Core.
    if is_compiler(&root.name) {
        return LmodLevel::Core;
    }
    let (mpi, mpi_version) = mpi_of(&rec.dag, rec.dag.root());
    if mpi != "none" {
        LmodLevel::Mpi {
            mpi,
            mpi_version,
            compiler: root.compiler.name.clone(),
            compiler_version: root.compiler.version.to_string(),
        }
    } else {
        LmodLevel::Compiler {
            name: root.compiler.name.clone(),
            version: root.compiler.version.to_string(),
        }
    }
}

/// Generate the Lua module file for one install.
pub fn lua_module(rec: &InstallRecord, description: &str) -> String {
    let n = rec.dag.root_node();
    let mut out = String::new();
    out.push_str(&format!(
        "-- {} (hash {})\n",
        n.format_node(),
        &rec.hash[..8]
    ));
    out.push_str(&format!("whatis(\"{description}\")\n"));
    out.push_str(&format!("whatis(\"Version: {}\")\n\n", n.version));
    for (var, dir) in [
        ("PATH", "bin"),
        ("MANPATH", "man"),
        ("LD_LIBRARY_PATH", "lib"),
        ("PKG_CONFIG_PATH", "lib/pkgconfig"),
    ] {
        out.push_str(&format!(
            "prepend_path(\"{var}\", \"{}/{dir}\")\n",
            rec.prefix
        ));
    }
    out.push_str(&format!(
        "prepend_path(\"CMAKE_PREFIX_PATH\", \"{}\")\n",
        rec.prefix
    ));
    out
}

/// Generate the hierarchy for a set of installs.
pub fn generate_hierarchy<'a>(
    records: impl IntoIterator<Item = &'a InstallRecord>,
    is_compiler: impl Fn(&str) -> bool + Copy,
    describe: impl Fn(&str) -> String,
) -> Vec<LmodModule> {
    let mut modules = Vec::new();
    for rec in records {
        let n = rec.dag.root_node();
        let level = level_of(rec, is_compiler);
        let dir = match &level {
            LmodLevel::Core => "Core".to_string(),
            LmodLevel::Compiler { name, version } => format!("{name}/{version}"),
            LmodLevel::Mpi {
                mpi,
                mpi_version,
                compiler,
                compiler_version,
            } => format!("{mpi}/{mpi_version}/{compiler}/{compiler_version}"),
        };
        let mut content = lua_module(rec, &describe(&n.name));
        // An MPI module at the Compiler level opens its Mpi subtree.
        if crate::layout::MPI_PROVIDERS.contains(&n.name.as_str()) {
            content.push_str(&format!(
                "prepend_path(\"MODULEPATH\", \"{}/{}/{}/{}\")\nfamily(\"mpi\")\n",
                n.name, n.version, n.compiler.name, n.compiler.version
            ));
        }
        modules.push(LmodModule {
            path: format!("{dir}/{}/{}.lua", n.name, n.version),
            level,
            content,
        });
    }
    modules.sort_by(|a, b| a.path.cmp(&b.path));
    modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use spack_spec::{dag::node, DagBuilder, Spec};

    fn db() -> Database {
        let mut db = Database::new("/spack/opt");
        // An MPI-dependent tool.
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("mpileaks", "2.3", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let mpi = b
            .add_node(node("mpich", "3.1.4", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, mpi);
        db.install_dag(&b.build(root).unwrap());
        // A compiler-level library.
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("libelf", "0.8.13", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        db.install_dag(&b.build(root).unwrap());
        // A Core-level compiler package.
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("gcc", "4.9.3", ("gcc", "4.4.7"), "linux-x86_64"))
            .unwrap();
        db.install_dag(&b.build(root).unwrap());
        db
    }

    fn hierarchy(db: &Database) -> Vec<LmodModule> {
        generate_hierarchy(db.iter(), |n| n == "gcc", |_| "pkg".to_string())
    }

    #[test]
    fn levels_are_classified_by_dependencies() {
        let db = db();
        let modules = hierarchy(&db);
        let by_name: std::collections::BTreeMap<&str, &LmodModule> = modules
            .iter()
            .map(|m| {
                let name = m.path.split('/').rev().nth(1).unwrap();
                (name, m)
            })
            .collect();
        assert_eq!(by_name["gcc"].level, LmodLevel::Core);
        assert!(matches!(
            by_name["libelf"].level,
            LmodLevel::Compiler { .. }
        ));
        assert!(matches!(by_name["mpileaks"].level, LmodLevel::Mpi { .. }));
        assert_eq!(by_name["gcc"].path, "Core/gcc/4.9.3.lua");
        assert_eq!(by_name["libelf"].path, "gcc/4.9.3/libelf/0.8.13.lua");
        assert_eq!(
            by_name["mpileaks"].path,
            "mpich/3.1.4/gcc/4.9.3/mpileaks/2.3.lua"
        );
        // The mpich node itself (installed as part of the mpileaks DAG)
        // sits at the compiler level and opens the MPI subtree.
        assert!(by_name["mpich"].content.contains("family(\"mpi\")"));
        assert!(by_name["mpich"].content.contains("MODULEPATH"));
    }

    #[test]
    fn lua_content_sets_paths() {
        let db = db();
        let rec = db.query(&Spec::parse("libelf").unwrap())[0];
        let lua = lua_module(rec, "ELF library");
        assert!(lua.contains("whatis(\"ELF library\")"));
        assert!(lua.contains(&format!("prepend_path(\"PATH\", \"{}/bin\")", rec.prefix)));
        assert!(lua.contains("LD_LIBRARY_PATH"));
    }

    #[test]
    fn hierarchy_solves_the_matrix_problem() {
        // Two compilers x one package -> two distinct module paths with
        // the SAME leaf name/version: users `module load gcc; module load
        // libelf` without combinatorial names (the 2 "matrix problem").
        let mut db = Database::new("/spack/opt");
        for compiler in [("gcc", "4.9.3"), ("intel", "15.0.1")] {
            let mut b = DagBuilder::new();
            let root = b
                .add_node(node("libelf", "0.8.13", compiler, "linux-x86_64"))
                .unwrap();
            db.install_dag(&b.build(root).unwrap());
        }
        let modules = hierarchy(&db);
        let paths: Vec<&str> = modules.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"gcc/4.9.3/libelf/0.8.13.lua"));
        assert!(paths.contains(&"intel/15.0.1/libelf/0.8.13.lua"));
    }
}
