//! A minimal in-memory file tree.
//!
//! The store tracks the *logical contents* of install prefixes — regular
//! files and symbolic links — so that views (§4.3.1) and extension
//! activation (§4.2) can create, collide on, and remove links exactly the
//! way Spack does on a real filesystem. (The performance-modeling
//! filesystem used for build timing lives in `spack-buildenv`; this tree
//! is purely about structure.)

use std::collections::BTreeMap;

use crate::error::StoreError;

/// A node in the file tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A regular file with a size in bytes.
    File {
        /// Size in bytes.
        size: u64,
    },
    /// A symbolic link to an absolute target path.
    Symlink {
        /// Link target.
        target: String,
    },
}

/// An in-memory tree of absolute paths (directories are implicit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsTree {
    entries: BTreeMap<String, Entry>,
}

impl FsTree {
    /// An empty tree.
    pub fn new() -> FsTree {
        FsTree::default()
    }

    /// Create or overwrite a regular file.
    pub fn write_file(&mut self, path: &str, size: u64) {
        self.entries.insert(normalize(path), Entry::File { size });
    }

    /// Create a symlink; errors if anything already exists at `path`.
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), StoreError> {
        let path = normalize(path);
        if self.entries.contains_key(&path) {
            return Err(StoreError::PathConflict(path));
        }
        self.entries.insert(
            path,
            Entry::Symlink {
                target: normalize(target),
            },
        );
        Ok(())
    }

    /// Replace or create a symlink regardless of what is there.
    pub fn symlink_force(&mut self, path: &str, target: &str) {
        self.entries.insert(
            normalize(path),
            Entry::Symlink {
                target: normalize(target),
            },
        );
    }

    /// Remove one entry. Errors when absent.
    pub fn remove(&mut self, path: &str) -> Result<(), StoreError> {
        let path = normalize(path);
        self.entries
            .remove(&path)
            .map(|_| ())
            .ok_or(StoreError::NoSuchInstall(path))
    }

    /// Remove every entry under a prefix (recursive delete). Returns the
    /// number of entries removed.
    pub fn remove_tree(&mut self, prefix: &str) -> usize {
        let prefix = normalize(prefix);
        let keys: Vec<String> = self
            .entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| under(k, &prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &keys {
            self.entries.remove(k);
        }
        keys.len()
    }

    /// Look up one entry.
    pub fn get(&self, path: &str) -> Option<&Entry> {
        self.entries.get(&normalize(path))
    }

    /// Does anything exist at this exact path?
    pub fn exists(&self, path: &str) -> bool {
        self.entries.contains_key(&normalize(path))
    }

    /// Resolve a path through at most 40 levels of symlinks.
    pub fn resolve(&self, path: &str) -> Option<String> {
        let mut current = normalize(path);
        for _ in 0..40 {
            match self.entries.get(&current) {
                Some(Entry::Symlink { target }) => current = target.clone(),
                Some(Entry::File { .. }) => return Some(current),
                None => return None,
            }
        }
        None
    }

    /// All entry paths under a prefix, relative to it, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let prefix = normalize(prefix);
        self.entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| under(k, &prefix))
            .map(|(k, _)| k[prefix.len()..].trim_start_matches('/').to_string())
            .collect()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn normalize(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    if !path.starts_with('/') {
        out.push('/');
    }
    let mut last_slash = false;
    for c in path.chars() {
        if c == '/' {
            if last_slash {
                continue;
            }
            last_slash = true;
        } else {
            last_slash = false;
        }
        out.push(c);
    }
    if out.len() > 1 && out.ends_with('/') {
        out.pop();
    }
    out
}

fn under(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.starts_with(prefix)
            && (prefix.ends_with('/') || path.as_bytes().get(prefix.len()) == Some(&b'/')))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_and_links() {
        let mut fs = FsTree::new();
        fs.write_file("/opt/pkg/lib/libx.so", 100);
        fs.symlink("/opt/view/libx.so", "/opt/pkg/lib/libx.so")
            .unwrap();
        assert!(fs.exists("/opt/view/libx.so"));
        assert_eq!(
            fs.resolve("/opt/view/libx.so").as_deref(),
            Some("/opt/pkg/lib/libx.so")
        );
        // Symlink collision errors.
        assert!(fs.symlink("/opt/view/libx.so", "/elsewhere").is_err());
        // Force replaces.
        fs.symlink_force("/opt/view/libx.so", "/opt/pkg/lib/libx.so");
    }

    #[test]
    fn chained_symlinks_resolve() {
        let mut fs = FsTree::new();
        fs.write_file("/a/f", 1);
        fs.symlink("/b", "/a/f").unwrap();
        fs.symlink("/c", "/b").unwrap();
        assert_eq!(fs.resolve("/c").as_deref(), Some("/a/f"));
        // Dangling chains resolve to None.
        let mut fs2 = FsTree::new();
        fs2.symlink("/x", "/nowhere").unwrap();
        assert_eq!(fs2.resolve("/x"), None);
    }

    #[test]
    fn symlink_cycle_terminates() {
        let mut fs = FsTree::new();
        fs.symlink("/a", "/b").unwrap();
        fs.symlink("/b", "/a").unwrap();
        assert_eq!(fs.resolve("/a"), None);
    }

    #[test]
    fn list_and_remove_tree() {
        let mut fs = FsTree::new();
        fs.write_file("/opt/p/bin/tool", 10);
        fs.write_file("/opt/p/lib/lib.so", 20);
        fs.write_file("/opt/p2/bin/other", 5);
        assert_eq!(fs.list("/opt/p"), vec!["bin/tool", "lib/lib.so"]);
        // `/opt/p2` must not be swept up by the `/opt/p` prefix.
        assert_eq!(fs.remove_tree("/opt/p"), 2);
        assert!(fs.exists("/opt/p2/bin/other"));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn normalization() {
        let mut fs = FsTree::new();
        fs.write_file("opt//x///f/", 1);
        assert!(fs.exists("/opt/x/f"));
    }
}
