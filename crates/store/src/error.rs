//! Errors from the store layer.

use std::fmt;

/// Errors raised by the install database, views, and extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced install does not exist.
    NoSuchInstall(String),
    /// Uninstall refused: other installed packages depend on this one.
    StillNeeded {
        /// Hash of the install that was to be removed.
        hash: String,
        /// Names of installed dependents.
        dependents: Vec<String>,
    },
    /// A filesystem-level conflict (existing path, activation collision).
    PathConflict(String),
    /// Extension operations applied to a non-extension or non-extendable
    /// package.
    NotAnExtension(String),
    /// The extension is not activated / already activated.
    ActivationState(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchInstall(h) => write!(f, "no installed spec with hash {h}"),
            StoreError::StillNeeded { hash, dependents } => write!(
                f,
                "cannot uninstall {hash}: still needed by {}",
                dependents.join(", ")
            ),
            StoreError::PathConflict(p) => write!(f, "path conflict: {p}"),
            StoreError::NotAnExtension(p) => write!(f, "`{p}` is not an extension"),
            StoreError::ActivationState(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for StoreError {}
