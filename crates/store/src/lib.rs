//! # spack-store
//!
//! The store layer of `spack-rs` (SC'15 §3.4.2–§3.5.4, §4.2, §4.3):
//!
//! * **install layouts** — Spack's hashed prefix scheme and the baseline
//!   site conventions of Table 1 ([`layout`]);
//! * the **install database** — every configuration in a unique prefix,
//!   identical sub-DAGs shared across builds (Fig. 9), ref-counted
//!   uninstalls, satisfying-install reuse, and stored spec files for
//!   reproducibility ([`database`]);
//! * **views** — policy-resolved symlink projections onto human-readable
//!   paths ([`views`]);
//! * **environment modules** — generated dotkit and TCL module files
//!   ([`modules`]);
//! * **extensions** — activate/deactivate of Python-style extension
//!   packages with atomic rollback ([`extensions`]).

#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod extensions;
pub mod fstree;
pub mod layout;
pub mod lmod;
pub mod modules;
pub mod views;

pub use database::{Database, InstallPlan, InstallRecord};
pub use error::StoreError;
pub use extensions::{ConflictPolicy, ExtensionRegistry};
pub use fstree::{Entry, FsTree};
pub use layout::{mpi_of, NamingScheme, MPI_PROVIDERS};
pub use lmod::{generate_hierarchy, lua_module, LmodLevel, LmodModule};
pub use modules::{dotkit, env_entries, module_name, tcl_module};
pub use views::{View, ViewPolicy, ViewRule};
