//! Package views: human-readable symlink layouts (SC'15 §4.3.1).
//!
//! Views project points in the high-dimensional space of concrete specs
//! onto short, legacy-friendly link names like
//! `/opt/mpileaks-1.0-openmpi`. Several installs may map to one link;
//! conflicts are resolved by site policy: an explicit `compiler_order`
//! first, then newer package versions, then newer compilers — "Spack
//! prefers newer versions of packages compiled with newer compilers".

use std::collections::BTreeMap;

use spack_spec::{CompilerSpec, Spec};

use crate::database::InstallRecord;
use crate::error::StoreError;
use crate::fstree::FsTree;
use crate::layout::mpi_of;

/// One link rule: a template expanded per matching install.
///
/// Template variables: `${PACKAGE}`, `${VERSION}`, `${COMPILER}`,
/// `${COMPILERVER}`, `${MPINAME}`, `${MPIVER}`, `${ARCH}`, `${HASH}`.
///
/// A rule links either the whole install prefix or, with `subpath`, a
/// single file inside it — §4.3.1's "views can also be used to create
/// symbolic links to specific executables or libraries in an install, so
/// a Spack-built gcc@4.9 may have a view that creates links from
/// /bin/gcc49 ... to the appropriate gcc executable".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewRule {
    /// Link-path template, e.g. `/opt/${PACKAGE}-${VERSION}-${MPINAME}`.
    pub template: String,
    /// Restrict the rule to installs satisfying this spec (`None` = all).
    pub selector: Option<Spec>,
    /// Link to this prefix-relative file instead of the prefix itself.
    pub subpath: Option<String>,
}

impl ViewRule {
    /// A rule applying to every install.
    pub fn for_all(template: &str) -> ViewRule {
        ViewRule {
            template: template.to_string(),
            selector: None,
            subpath: None,
        }
    }

    /// A rule restricted to installs satisfying `selector`.
    pub fn for_spec(template: &str, selector: Spec) -> ViewRule {
        ViewRule {
            template: template.to_string(),
            selector: Some(selector),
            subpath: None,
        }
    }

    /// A rule linking one file inside matching prefixes: the `/bin/gcc49`
    /// pattern of §4.3.1.
    pub fn for_file(template: &str, subpath: &str, selector: Spec) -> ViewRule {
        ViewRule {
            template: template.to_string(),
            selector: Some(selector),
            subpath: Some(subpath.trim_start_matches('/').to_string()),
        }
    }

    fn expand(&self, rec: &InstallRecord) -> String {
        let n = rec.dag.root_node();
        let (mpi, mpi_version) = mpi_of(&rec.dag, rec.dag.root());
        self.template
            .replace("${PACKAGE}", &n.name)
            .replace("${VERSION}", &n.version.to_string())
            .replace("${COMPILER}", &n.compiler.name)
            .replace("${COMPILERVER}", &n.compiler.version.to_string())
            .replace("${MPINAME}", &mpi)
            .replace("${MPIVER}", &mpi_version)
            .replace("${ARCH}", &n.architecture)
            .replace("${HASH}", &rec.hash[..8])
    }
}

/// Conflict-resolution policy for links with several candidate targets.
#[derive(Debug, Clone, Default)]
pub struct ViewPolicy {
    /// Preferred compilers, best first (§4.3.1 `compiler_order`).
    /// Compilers not listed are less preferred than every listed one.
    pub compiler_order: Vec<CompilerSpec>,
}

impl ViewPolicy {
    fn compiler_rank(&self, rec: &InstallRecord) -> usize {
        let c = &rec.dag.root_node().compiler;
        for (i, pref) in self.compiler_order.iter().enumerate() {
            if pref.name == c.name && pref.versions.contains(&c.version) {
                return i;
            }
        }
        usize::MAX
    }

    /// Is `a` preferred over `b` as the target of one link?
    pub fn prefers(&self, a: &InstallRecord, b: &InstallRecord) -> bool {
        let (ra, rb) = (self.compiler_rank(a), self.compiler_rank(b));
        if ra != rb {
            return ra < rb;
        }
        let (na, nb) = (a.dag.root_node(), b.dag.root_node());
        match nb.version.version_cmp(&na.version) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
        match nb.compiler.version.version_cmp(&na.compiler.version) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
        a.hash < b.hash
    }
}

/// A computed view: link path → (target prefix, winning install hash).
#[derive(Debug, Clone, Default)]
pub struct View {
    links: BTreeMap<String, (String, String)>,
}

impl View {
    /// Compute a view over a set of installs. "On installation and
    /// removal, links are automatically created, deleted, or updated
    /// according to these rules" — recomputation is idempotent, so callers
    /// rebuild after each database change.
    pub fn compute<'a>(
        rules: &[ViewRule],
        records: impl IntoIterator<Item = &'a InstallRecord>,
        policy: &ViewPolicy,
    ) -> View {
        let mut winners: BTreeMap<String, (&InstallRecord, &ViewRule)> = BTreeMap::new();
        for rec in records {
            for rule in rules {
                if let Some(sel) = &rule.selector {
                    if !rec.dag.satisfies(sel) {
                        continue;
                    }
                }
                let link = rule.expand(rec);
                match winners.get(&link) {
                    Some((current, _)) if !policy.prefers(rec, current) => {}
                    _ => {
                        winners.insert(link, (rec, rule));
                    }
                }
            }
        }
        View {
            links: winners
                .into_iter()
                .map(|(link, (rec, rule))| {
                    let target = match &rule.subpath {
                        Some(sub) => format!("{}/{sub}", rec.prefix),
                        None => rec.prefix.clone(),
                    };
                    (link, (target, rec.hash.clone()))
                })
                .collect(),
        }
    }

    /// The resolved links: path → (target prefix, install hash).
    pub fn links(&self) -> &BTreeMap<String, (String, String)> {
        &self.links
    }

    /// Target prefix of one link.
    pub fn target_of(&self, link: &str) -> Option<&str> {
        self.links.get(link).map(|(p, _)| p.as_str())
    }

    /// Materialize the view into a file tree, replacing stale links.
    pub fn apply(&self, fs: &mut FsTree) -> Result<usize, StoreError> {
        for (link, (target, _)) in &self.links {
            fs.symlink_force(link, target);
        }
        Ok(self.links.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use spack_spec::{dag::node, ConcreteDag, DagBuilder, VersionList};

    fn build(mpi: &str, version: &str, compiler: (&str, &str)) -> ConcreteDag {
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("mpileaks", version, compiler, "linux-x86_64"))
            .unwrap();
        let m = b
            .add_node(node(mpi, "3.0", compiler, "linux-x86_64"))
            .unwrap();
        b.add_edge(root, m);
        b.build(root).unwrap()
    }

    fn db_with(dags: &[ConcreteDag]) -> Database {
        let mut db = Database::new("/spack/opt");
        for d in dags {
            db.install_dag(d);
        }
        db
    }

    #[test]
    fn template_expansion_paper_example() {
        // §4.3.1: /opt/${PACKAGE}-${VERSION}-${MPINAME}
        let db = db_with(&[build("openmpi", "1.0", ("gcc", "4.9.2"))]);
        let rules = [ViewRule::for_spec(
            "/opt/${PACKAGE}-${VERSION}-${MPINAME}",
            Spec::parse("mpileaks").unwrap(),
        )];
        let view = View::compute(
            &rules,
            db.query(&Spec::parse("mpileaks").unwrap()),
            &ViewPolicy::default(),
        );
        assert!(view.target_of("/opt/mpileaks-1.0-openmpi").is_some());
    }

    #[test]
    fn generic_link_resolves_conflicts_by_version() {
        // Two versions map onto /opt/mpileaks-openmpi: the newer wins.
        let db = db_with(&[
            build("openmpi", "1.0", ("gcc", "4.9.2")),
            build("openmpi", "2.1", ("gcc", "4.9.2")),
        ]);
        let rules = [ViewRule::for_spec(
            "/opt/${PACKAGE}-${MPINAME}",
            Spec::parse("mpileaks").unwrap(),
        )];
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        let target = view.target_of("/opt/mpileaks-openmpi").unwrap();
        assert!(target.contains("mpileaks-2.1"), "{target}");
    }

    #[test]
    fn compiler_order_overrides_version_preference() {
        // §4.3.1: `compiler_order = icc,gcc@4.9.3` makes an older icc
        // build beat a newer gcc build.
        let db = db_with(&[
            build("openmpi", "2.1", ("gcc", "4.9.3")),
            build("openmpi", "1.0", ("icc", "14.1")),
        ]);
        let rules = [ViewRule::for_spec(
            "/opt/${PACKAGE}-${MPINAME}",
            Spec::parse("mpileaks").unwrap(),
        )];
        let policy = ViewPolicy {
            compiler_order: vec![
                CompilerSpec::by_name("icc"),
                CompilerSpec {
                    name: "gcc".to_string(),
                    versions: VersionList::parse("4.9.3").unwrap(),
                },
            ],
        };
        let view = View::compute(&rules, db.iter(), &policy);
        let target = view.target_of("/opt/mpileaks-openmpi").unwrap();
        assert!(target.contains("icc"), "{target}");
        // Without the policy, the newer version (gcc build) wins.
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        assert!(view
            .target_of("/opt/mpileaks-openmpi")
            .unwrap()
            .contains("2.1"));
    }

    #[test]
    fn selector_restricts_rule() {
        let db = db_with(&[
            build("openmpi", "1.0", ("gcc", "4.9.2")),
            build("mpich", "1.0", ("gcc", "4.9.2")),
        ]);
        let rules = [ViewRule::for_spec(
            "/opt/${PACKAGE}-latest",
            Spec::parse("mpileaks^openmpi").unwrap(),
        )];
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        let target = view.target_of("/opt/mpileaks-latest").unwrap();
        // Only the openmpi build matched the selector.
        let rec = db.get(&view.links()["/opt/mpileaks-latest"].1).unwrap();
        assert!(rec.dag.by_name("openmpi").is_some());
        assert!(!target.is_empty());
    }

    #[test]
    fn apply_materializes_symlinks() {
        let db = db_with(&[build("openmpi", "1.0", ("gcc", "4.9.2"))]);
        let rules = [ViewRule::for_all("/opt/${PACKAGE}-${VERSION}")];
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        let mut fs = FsTree::new();
        let n = view.apply(&mut fs).unwrap();
        assert_eq!(n, 2); // mpileaks and openmpi each get a link
        assert!(fs.exists("/opt/mpileaks-1.0"));
        assert!(fs.exists("/opt/openmpi-3.0"));
        // Re-applying after a change just updates links.
        view.apply(&mut fs).unwrap();
    }

    #[test]
    fn file_level_links_the_gcc49_example() {
        // §4.3.1: /bin/gcc49 -> the gcc executable inside the prefix.
        let mut db = Database::new("/spack/opt");
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("gcc", "4.9.2", ("gcc", "4.4.7"), "linux-x86_64"))
            .unwrap();
        db.install_dag(&b.build(root).unwrap());
        let rules = [
            ViewRule::for_file("/bin/gcc49", "bin/gcc", Spec::parse("gcc@4.9").unwrap()),
            ViewRule::for_file("/bin/g++49", "bin/g++", Spec::parse("gcc@4.9").unwrap()),
        ];
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        let target = view.target_of("/bin/gcc49").unwrap();
        assert!(target.ends_with("/bin/gcc"), "{target}");
        assert!(target.starts_with("/spack/opt/"));
        assert!(view.target_of("/bin/g++49").unwrap().ends_with("/bin/g++"));
    }

    #[test]
    fn hash_template_disambiguates_fully() {
        let db = db_with(&[
            build("openmpi", "1.0", ("gcc", "4.9.2")),
            build("mpich", "1.0", ("gcc", "4.9.2")),
        ]);
        let rules = [ViewRule::for_spec(
            "/opt/${PACKAGE}-${HASH}",
            Spec::parse("mpileaks").unwrap(),
        )];
        let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
        assert_eq!(view.links().len(), 2, "hash links never collide");
    }
}
