//! Install-prefix naming schemes (SC'15 Table 1, §3.4.2).
//!
//! Table 1 catalogues how HPC sites organize installed software on shared
//! filesystems. All the manual conventions encode *some* parameters in the
//! path — architecture, compiler, package, version, an ad-hoc build tag —
//! but "none of these naming conventions covers the entire configuration
//! space", so distinct configurations can collide. Spack's scheme appends
//! a hash of the full concrete spec, making the mapping injective.
//!
//! Each scheme here formats a prefix for a node of a concrete DAG; the
//! Table 1 harness measures collision rates across a configuration sweep.

use spack_spec::{ConcreteDag, DagHashes, NodeId};

/// Package names recognized as MPI implementations, used by schemes (like
/// TACC's) that encode "the MPI" in the path.
pub const MPI_PROVIDERS: &[&str] = &[
    "mpich",
    "mpich2",
    "openmpi",
    "mvapich",
    "mvapich2",
    "spectrum-mpi",
    "cray-mpich",
    "bgq-mpi",
    "intel-mpi",
    "strictmpi",
    "loosempi",
];

/// A site naming convention from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingScheme {
    /// Spack's default:
    /// `$root/$arch/$compiler-$compver/$package-$version-$hash`.
    SpackDefault,
    /// LLNL `/usr/global/tools`: `$root/$arch/$package/$version`.
    LlnlGlobal,
    /// LLNL `/usr/local/tools`: `$root/$package-$compiler-$build-$version`
    /// (the build tag is ad hoc; we use the compiler version).
    LlnlLocal,
    /// ORNL: `$root/$arch/$package/$version/$build` (build tag = compiler
    /// name + version, per the CUG'08 conventions).
    Ornl,
    /// TACC / Lmod hierarchy:
    /// `$root/$compiler-$compver/$mpi/$mpiver/$package/$version`.
    Tacc,
}

impl NamingScheme {
    /// All Table 1 schemes, in the table's order.
    pub fn all() -> [NamingScheme; 5] {
        [
            NamingScheme::LlnlGlobal,
            NamingScheme::LlnlLocal,
            NamingScheme::Ornl,
            NamingScheme::Tacc,
            NamingScheme::SpackDefault,
        ]
    }

    /// Human-readable site label.
    pub fn site(&self) -> &'static str {
        match self {
            NamingScheme::SpackDefault => "Spack default",
            NamingScheme::LlnlGlobal => "LLNL /usr/global/tools",
            NamingScheme::LlnlLocal => "LLNL /usr/local/tools",
            NamingScheme::Ornl => "ORNL",
            NamingScheme::Tacc => "TACC / Lmod",
        }
    }

    /// Format the install prefix for `id` within `dag` under this scheme.
    pub fn prefix_for(
        &self,
        root: &str,
        dag: &ConcreteDag,
        id: NodeId,
        hashes: &DagHashes,
    ) -> String {
        let n = dag.node(id);
        let compiler = format!("{}-{}", n.compiler.name, n.compiler.version);
        match self {
            NamingScheme::SpackDefault => {
                // §3.4.2: "$arch / $compiler-$comp_version /
                //          $package-$version-$options-$hash"
                let mut options = String::new();
                for (var, on) in &n.variants {
                    options.push(if *on { '+' } else { '~' });
                    options.push_str(var);
                }
                format!(
                    "{root}/{}/{compiler}/{}-{}{}-{}",
                    n.architecture,
                    n.name,
                    n.version,
                    options,
                    hashes.short(id)
                )
            }
            NamingScheme::LlnlGlobal => {
                format!("{root}/{}/{}/{}", n.architecture, n.name, n.version)
            }
            NamingScheme::LlnlLocal => {
                format!(
                    "{root}/{}-{}-{}-{}",
                    n.name, n.compiler.name, n.compiler.version, n.version
                )
            }
            NamingScheme::Ornl => {
                format!(
                    "{root}/{}/{}/{}/{compiler}",
                    n.architecture, n.name, n.version
                )
            }
            NamingScheme::Tacc => {
                let (mpi, mpi_version) = mpi_of(dag, id);
                format!(
                    "{root}/{compiler}/{mpi}/{mpi_version}/{}/{}",
                    n.name, n.version
                )
            }
        }
    }
}

/// The MPI implementation in the sub-DAG of `id`, as (name, version);
/// ("none", "0") when the package does not depend on MPI.
pub fn mpi_of(dag: &ConcreteDag, id: NodeId) -> (String, String) {
    let sub = dag.subdag(id);
    for n in sub.nodes() {
        if MPI_PROVIDERS.contains(&n.name.as_str()) {
            return (n.name.clone(), n.version.to_string());
        }
    }
    ("none".to_string(), "0".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::{dag::node, DagBuilder};

    fn sample() -> ConcreteDag {
        let mut b = DagBuilder::new();
        let root = b
            .add_node({
                let mut n = node("mpileaks", "1.0", ("gcc", "4.9.2"), "linux-x86_64");
                n.variants.insert("debug".into(), true);
                n
            })
            .unwrap();
        let mpi = b
            .add_node(node("mpich", "3.0.4", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, mpi);
        b.build(root).unwrap()
    }

    #[test]
    fn spack_scheme_includes_hash_and_options() {
        let dag = sample();
        let hashes = DagHashes::compute(&dag);
        let p = NamingScheme::SpackDefault.prefix_for("/spack/opt", &dag, dag.root(), &hashes);
        assert!(p.starts_with("/spack/opt/linux-x86_64/gcc-4.9.2/mpileaks-1.0+debug-"));
        assert!(p.ends_with(hashes.short(dag.root())));
    }

    #[test]
    fn table1_baseline_schemes() {
        let dag = sample();
        let hashes = DagHashes::compute(&dag);
        let r = dag.root();
        assert_eq!(
            NamingScheme::LlnlGlobal.prefix_for("/usr/global/tools", &dag, r, &hashes),
            "/usr/global/tools/linux-x86_64/mpileaks/1.0"
        );
        assert_eq!(
            NamingScheme::LlnlLocal.prefix_for("/usr/local/tools", &dag, r, &hashes),
            "/usr/local/tools/mpileaks-gcc-4.9.2-1.0"
        );
        assert_eq!(
            NamingScheme::Ornl.prefix_for("/sw", &dag, r, &hashes),
            "/sw/linux-x86_64/mpileaks/1.0/gcc-4.9.2"
        );
        assert_eq!(
            NamingScheme::Tacc.prefix_for("/apps", &dag, r, &hashes),
            "/apps/gcc-4.9.2/mpich/3.0.4/mpileaks/1.0"
        );
    }

    #[test]
    fn mpi_detection() {
        let dag = sample();
        assert_eq!(mpi_of(&dag, dag.root()).0, "mpich");
        // A leaf with no MPI below it.
        let mpich = dag.by_name("mpich").unwrap();
        assert_eq!(mpi_of(&dag, mpich).0, "mpich"); // itself an MPI
    }
}
