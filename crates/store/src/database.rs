//! The install database: every configuration in its own prefix, shared
//! sub-DAGs reused (SC'15 §3.4.2, Fig. 9), provenance preserved (§3.4.3),
//! and reuse of satisfying installs (§3.2.3: "Spack will use the
//! previously-built installation instead of building a new one").

use std::collections::BTreeMap;

use spack_spec::{serial, ConcreteDag, DagHashes, NodeId, Spec};

use crate::error::StoreError;
use crate::layout::NamingScheme;

/// One installed package configuration.
#[derive(Debug, Clone)]
pub struct InstallRecord {
    /// Full Merkle hash of the installed sub-DAG.
    pub hash: String,
    /// The sub-DAG rooted at this install (its complete provenance).
    pub dag: ConcreteDag,
    /// Unique install prefix.
    pub prefix: String,
    /// Serialized spec file stored in the prefix for reproducibility
    /// (§3.4.3).
    pub specfile: String,
    /// Whether a user asked for this install directly (vs. pulled in as a
    /// dependency).
    pub explicit: bool,
    /// Build log stored alongside the spec file in the prefix (§3.4.3:
    /// "a build log that contains output and error messages").
    pub build_log: Option<String>,
    /// Hashes of installed packages that depend on this one.
    pub dependents: Vec<String>,
}

/// Result of registering a DAG: which nodes were new and which reused.
#[derive(Debug, Clone, Default)]
pub struct InstallPlan {
    /// (package name, hash) pairs that must be built, bottom-up.
    pub to_build: Vec<(String, String)>,
    /// (package name, hash) pairs already present (Fig. 9 sharing).
    pub reused: Vec<(String, String)>,
}

/// The database of installed specs under one store root.
#[derive(Debug, Clone)]
pub struct Database {
    root: String,
    scheme: NamingScheme,
    records: BTreeMap<String, InstallRecord>,
}

impl Database {
    /// An empty database rooted at `root` using Spack's naming scheme.
    pub fn new(root: &str) -> Database {
        Database {
            root: root.to_string(),
            scheme: NamingScheme::SpackDefault,
            records: BTreeMap::new(),
        }
    }

    /// The store root directory.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Compute the install plan for a concrete DAG without modifying the
    /// database: which sub-DAGs are already present, which must be built.
    pub fn plan(&self, dag: &ConcreteDag) -> InstallPlan {
        let hashes = DagHashes::compute(dag);
        let mut plan = InstallPlan::default();
        for id in dag.topo_order() {
            let h = hashes.node_hash(id).to_string();
            let name = dag.node(id).name.clone();
            if self.records.contains_key(&h) {
                plan.reused.push((name, h));
            } else {
                plan.to_build.push((name, h));
            }
        }
        plan
    }

    /// Register every node of a concrete DAG as installed, reusing nodes
    /// whose sub-DAG hash is already present. Returns the plan that was
    /// executed. The DAG root is marked explicit.
    pub fn install_dag(&mut self, dag: &ConcreteDag) -> InstallPlan {
        self.install_dag_as(dag, true)
    }

    /// Like [`Database::install_dag`], but the root's explicitness is
    /// caller-controlled (the build pipeline registers sub-DAGs
    /// incrementally and marks only the user's request explicit).
    pub fn install_dag_as(&mut self, dag: &ConcreteDag, explicit_root: bool) -> InstallPlan {
        self.install_subdag(dag, dag.root(), explicit_root)
    }

    /// Register only the sub-DAG of `dag` rooted at `root` (the node and
    /// its transitive dependencies), reusing already-present nodes. The
    /// sub-root is marked explicit only when `explicit` is set — partial
    /// commits from a keep-going install register implicitly, so `gc`
    /// still treats them as collectable unless a later explicit install
    /// claims them.
    pub fn install_subdag(
        &mut self,
        dag: &ConcreteDag,
        root: NodeId,
        explicit: bool,
    ) -> InstallPlan {
        let hashes = DagHashes::compute(dag);
        // Downward closure of `root` over dependency edges.
        let mut in_closure = vec![false; dag.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !in_closure[id] {
                in_closure[id] = true;
                stack.extend(dag.node(id).deps.iter().copied());
            }
        }
        let mut plan = InstallPlan::default();
        for id in dag.topo_order().into_iter().filter(|&id| in_closure[id]) {
            let h = hashes.node_hash(id).to_string();
            let name = dag.node(id).name.clone();
            if !self.records.contains_key(&h) {
                let sub = dag.subdag(id);
                let prefix = self.scheme.prefix_for(&self.root, dag, id, &hashes);
                self.records.insert(
                    h.clone(),
                    InstallRecord {
                        hash: h.clone(),
                        specfile: serial::to_specfile(&sub),
                        dag: sub,
                        prefix,
                        explicit: explicit && id == root,
                        build_log: None,
                        dependents: Vec::new(),
                    },
                );
                plan.to_build.push((name, h.clone()));
            } else {
                if explicit && id == root {
                    self.records.get_mut(&h).unwrap().explicit = true;
                }
                plan.reused.push((name, h.clone()));
            }
            // Wire dependent edges for ref-counting.
            for &dep in &dag.node(id).deps {
                let dep_hash = hashes.node_hash(dep).to_string();
                let rec = self.records.get_mut(&dep_hash).expect("topo order");
                if let Err(pos) = rec.dependents.binary_search(&h) {
                    rec.dependents.insert(pos, h.clone());
                }
            }
        }
        plan
    }

    /// Commit exactly one node of `dag` — the per-hash commit the parallel
    /// install scheduler uses, so the database lock is held only for a
    /// single-record insert, never for a sub-DAG walk. Every dependency of
    /// the node must already be present (the frontier scheduler guarantees
    /// it: a node is dispatched only after all its dependencies committed).
    ///
    /// Returns `true` when the record was newly inserted and `false` when
    /// the hash was already present — the contention signal two concurrent
    /// installs racing to commit the same configuration use to decide
    /// which of them reports `Built` and which `Reused`.
    pub fn commit_node(&mut self, dag: &ConcreteDag, id: NodeId, hashes: &DagHashes) -> bool {
        let h = hashes.node_hash(id).to_string();
        if self.records.contains_key(&h) {
            return false;
        }
        for &dep in &dag.node(id).deps {
            debug_assert!(
                self.records.contains_key(hashes.node_hash(dep)),
                "commit_node called before dependency {} committed",
                dag.node(dep).name
            );
        }
        let sub = dag.subdag(id);
        let prefix = self.scheme.prefix_for(&self.root, dag, id, hashes);
        self.records.insert(
            h.clone(),
            InstallRecord {
                hash: h.clone(),
                specfile: serial::to_specfile(&sub),
                dag: sub,
                prefix,
                explicit: false,
                build_log: None,
                dependents: Vec::new(),
            },
        );
        for &dep in &dag.node(id).deps {
            let dep_hash = hashes.node_hash(dep).to_string();
            if let Some(rec) = self.records.get_mut(&dep_hash) {
                if let Err(pos) = rec.dependents.binary_search(&h) {
                    rec.dependents.insert(pos, h.clone());
                }
            }
        }
        true
    }

    /// Look up a record by full or short hash prefix.
    pub fn get(&self, hash: &str) -> Option<&InstallRecord> {
        if let Some(r) = self.records.get(hash) {
            return Some(r);
        }
        let mut matches = self.records.values().filter(|r| r.hash.starts_with(hash));
        match (matches.next(), matches.next()) {
            (Some(r), None) => Some(r),
            _ => None,
        }
    }

    /// All installs satisfying an abstract request, newest version first —
    /// the `spack find` query and the §3.2.3 reuse check.
    pub fn query(&self, request: &Spec) -> Vec<&InstallRecord> {
        let mut found: Vec<&InstallRecord> = self
            .records
            .values()
            .filter(|r| r.dag.satisfies(request))
            .collect();
        found.sort_by(|a, b| {
            let an = a.dag.root_node();
            let bn = b.dag.root_node();
            an.name
                .cmp(&bn.name)
                .then_with(|| bn.version.version_cmp(&an.version))
                .then_with(|| a.hash.cmp(&b.hash))
        });
        found
    }

    /// Uninstall by hash. Refuses while installed dependents remain
    /// (forced removal would break their RPATHs).
    pub fn uninstall(&mut self, hash: &str) -> Result<InstallRecord, StoreError> {
        let full = self
            .get(hash)
            .map(|r| r.hash.clone())
            .ok_or_else(|| StoreError::NoSuchInstall(hash.to_string()))?;
        let live_dependents: Vec<String> = self.records[&full]
            .dependents
            .iter()
            .filter(|d| self.records.contains_key(*d))
            .map(|d| self.records[d].dag.root_node().name.clone())
            .collect();
        if !live_dependents.is_empty() {
            return Err(StoreError::StillNeeded {
                hash: full,
                dependents: live_dependents,
            });
        }
        Ok(self.records.remove(&full).unwrap())
    }

    /// Attach the build log for an installed spec (called by the build
    /// pipeline after a successful build).
    pub fn attach_build_log(&mut self, hash: &str, log: String) -> Result<(), StoreError> {
        let full = self
            .get(hash)
            .map(|r| r.hash.clone())
            .ok_or_else(|| StoreError::NoSuchInstall(hash.to_string()))?;
        self.records.get_mut(&full).unwrap().build_log = Some(log);
        Ok(())
    }

    /// Override the explicit flag of one record (used when restoring a
    /// persisted database, where explicitness is stored separately).
    pub fn set_explicit(&mut self, hash: &str, explicit: bool) -> Result<(), StoreError> {
        let full = self
            .get(hash)
            .map(|r| r.hash.clone())
            .ok_or_else(|| StoreError::NoSuchInstall(hash.to_string()))?;
        self.records.get_mut(&full).unwrap().explicit = explicit;
        Ok(())
    }

    /// Garbage-collect implicit installs: remove every record that was
    /// pulled in as a dependency and is no longer needed by any
    /// explicitly installed spec (transitively). Returns the removed
    /// records, leaves explicit installs and their closures untouched.
    pub fn gc(&mut self) -> Vec<InstallRecord> {
        // Mark: everything reachable from explicit roots via their
        // stored sub-DAGs.
        let mut live: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for rec in self.records.values().filter(|r| r.explicit) {
            let hashes = DagHashes::compute(&rec.dag);
            for id in 0..rec.dag.len() {
                live.insert(hashes.node_hash(id).to_string());
            }
        }
        // Sweep.
        let dead: Vec<String> = self
            .records
            .keys()
            .filter(|h| !live.contains(*h))
            .cloned()
            .collect();
        let mut removed = Vec::with_capacity(dead.len());
        for h in dead {
            removed.push(self.records.remove(&h).unwrap());
        }
        removed
    }

    /// Number of installed configurations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all records (sorted by hash).
    pub fn iter(&self) -> impl Iterator<Item = &InstallRecord> {
        self.records.values()
    }

    /// The prefix of the node `id` within an installed DAG (used by the
    /// build environment to point wrappers at dependency installs).
    pub fn prefix_of(&self, dag: &ConcreteDag, id: NodeId) -> Option<String> {
        let hashes = DagHashes::compute(dag);
        self.records
            .get(hashes.node_hash(id))
            .map(|r| r.prefix.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::{dag::node, DagBuilder};

    /// mpileaks over a configurable MPI, as in Fig. 9.
    fn mpileaks_with(mpi: &str) -> ConcreteDag {
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("mpileaks", "1.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let m = b
            .add_node(node(mpi, "3.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let cp = b
            .add_node(node("callpath", "1.0.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let dy = b
            .add_node(node("dyninst", "8.1.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let ld = b
            .add_node(node(
                "libdwarf",
                "20130729",
                ("gcc", "4.9.2"),
                "linux-x86_64",
            ))
            .unwrap();
        let le = b
            .add_node(node("libelf", "0.8.11", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, m);
        b.add_edge(root, cp);
        b.add_edge(cp, m);
        b.add_edge(cp, dy);
        b.add_edge(dy, ld);
        b.add_edge(dy, le);
        b.add_edge(ld, le);
        b.build(root).unwrap()
    }

    #[test]
    fn install_registers_all_nodes() {
        let mut db = Database::new("/spack/opt");
        let plan = db.install_dag(&mpileaks_with("mpich"));
        assert_eq!(plan.to_build.len(), 6);
        assert!(plan.reused.is_empty());
        assert_eq!(db.len(), 6);
    }

    #[test]
    fn fig9_subdag_sharing_across_mpi_builds() {
        // Install mpileaks^mpich, then mpileaks^openmpi: dyninst, libdwarf
        // and libelf are reused; mpileaks, callpath and the MPI are new.
        let mut db = Database::new("/spack/opt");
        db.install_dag(&mpileaks_with("mpich"));
        let plan = db.install_dag(&mpileaks_with("openmpi"));
        let reused: Vec<&str> = plan.reused.iter().map(|(n, _)| n.as_str()).collect();
        let built: Vec<&str> = plan.to_build.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(reused, ["libelf", "libdwarf", "dyninst"]);
        assert!(built.contains(&"mpileaks"));
        assert!(built.contains(&"callpath"));
        assert!(built.contains(&"openmpi"));
        // 6 + 3 new = 9 records, not 12.
        assert_eq!(db.len(), 9);
    }

    #[test]
    fn unique_prefixes_per_configuration() {
        let mut db = Database::new("/spack/opt");
        db.install_dag(&mpileaks_with("mpich"));
        db.install_dag(&mpileaks_with("openmpi"));
        let mut prefixes: Vec<&str> = db.iter().map(|r| r.prefix.as_str()).collect();
        let total = prefixes.len();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), total, "prefix collision");
    }

    #[test]
    fn query_satisfying_installs() {
        let mut db = Database::new("/spack/opt");
        db.install_dag(&mpileaks_with("mpich"));
        db.install_dag(&mpileaks_with("openmpi"));
        let req = Spec::parse("mpileaks").unwrap();
        assert_eq!(db.query(&req).len(), 2);
        let req = Spec::parse("mpileaks ^openmpi").unwrap();
        assert_eq!(db.query(&req).len(), 1);
        let req = Spec::parse("dyninst").unwrap();
        assert_eq!(db.query(&req).len(), 1, "shared dyninst installed once");
        let req = Spec::parse("mpileaks%intel").unwrap();
        assert!(db.query(&req).is_empty());
    }

    #[test]
    fn uninstall_respects_dependents() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        db.install_dag(&dag);
        let hashes = DagHashes::compute(&dag);
        let libelf_hash = hashes.node_hash(dag.by_name("libelf").unwrap());
        // libelf is needed by dyninst and libdwarf.
        let err = db.uninstall(libelf_hash).unwrap_err();
        assert!(matches!(err, StoreError::StillNeeded { .. }));
        // The root has no dependents: removable; then progressively inward.
        let root_hash = hashes.node_hash(dag.root());
        db.uninstall(root_hash).unwrap();
        assert_eq!(db.len(), 5);
        assert!(db.uninstall("0000beef").is_err());
    }

    #[test]
    fn short_hash_lookup() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        db.install_dag(&dag);
        let hashes = DagHashes::compute(&dag);
        let full = hashes.node_hash(dag.root());
        assert!(db.get(&full[..8]).is_some());
        assert_eq!(db.get(&full[..8]).unwrap().hash, full);
        // Ambiguous prefix returns none.
        assert!(db.get("").is_none());
    }

    #[test]
    fn specfile_roundtrips_identity() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        db.install_dag(&dag);
        let hashes = DagHashes::compute(&dag);
        let rec = db.get(hashes.node_hash(dag.root())).unwrap();
        let back = serial::from_specfile(&rec.specfile).unwrap();
        assert_eq!(spack_spec::dag_hash(&back), rec.hash);
    }

    #[test]
    fn gc_sweeps_orphaned_dependencies() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        db.install_dag(&dag);
        assert_eq!(db.len(), 6);
        // Remove the explicit root; its dependencies become garbage.
        let hashes = DagHashes::compute(&dag);
        db.uninstall(hashes.node_hash(dag.root())).unwrap();
        let removed = db.gc();
        assert_eq!(removed.len(), 5);
        assert!(db.is_empty());
    }

    #[test]
    fn gc_keeps_closures_of_explicit_installs() {
        let mut db = Database::new("/spack/opt");
        db.install_dag(&mpileaks_with("mpich"));
        db.install_dag(&mpileaks_with("openmpi"));
        // Both roots explicit: nothing to collect.
        assert!(db.gc().is_empty());
        // Drop one root: only its non-shared deps go.
        let dag = mpileaks_with("openmpi");
        let hashes = DagHashes::compute(&dag);
        db.uninstall(hashes.node_hash(dag.root())).unwrap();
        let removed = db.gc();
        let names: Vec<String> = removed
            .iter()
            .map(|r| r.dag.root_node().name.clone())
            .collect();
        // openmpi and the openmpi-flavored callpath are orphaned; the
        // shared dyninst/libdwarf/libelf and the mpich stack stay.
        assert!(names.contains(&"openmpi".to_string()), "{names:?}");
        assert!(names.contains(&"callpath".to_string()));
        assert!(!names.contains(&"dyninst".to_string()));
        assert_eq!(db.len(), 9 - 1 - removed.len());
        assert!(db.query(&Spec::parse("mpileaks^mpich").unwrap()).len() == 1);
    }

    #[test]
    fn install_subdag_registers_only_the_closure_and_stays_implicit() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        let hashes = DagHashes::compute(&dag);
        // Commit only the dyninst subtree (dyninst, libdwarf, libelf), as
        // a keep-going install would after mpileaks/callpath/mpich failed.
        let dy = dag.by_name("dyninst").unwrap();
        let plan = db.install_subdag(&dag, dy, false);
        assert_eq!(plan.to_build.len(), 3);
        assert_eq!(db.len(), 3);
        assert!(db.get(hashes.node_hash(dy)).is_some());
        assert!(db.get(hashes.node_hash(dag.root())).is_none());
        assert!(db.iter().all(|r| !r.explicit), "partial commits implicit");
        // Implicit-only records are garbage until something claims them.
        assert_eq!(db.gc().len(), 3);

        // Re-commit, then finish the install: the full DAG reuses the
        // subtree and the requested root alone goes explicit.
        db.install_subdag(&dag, dy, false);
        let plan = db.install_dag_as(&dag, true);
        assert_eq!(plan.reused.len(), 3);
        assert_eq!(plan.to_build.len(), 3);
        assert!(db.get(hashes.node_hash(dag.root())).unwrap().explicit);
        assert!(db.gc().is_empty(), "explicit root now keeps the closure");
    }

    #[test]
    fn commit_node_inserts_once_and_wires_dependents() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        let hashes = DagHashes::compute(&dag);
        // Bottom-up, one node at a time — the scheduler's commit order.
        for id in dag.topo_order() {
            assert!(db.commit_node(&dag, id, &hashes), "first commit inserts");
            assert!(!db.commit_node(&dag, id, &hashes), "second is a no-op");
        }
        assert_eq!(db.len(), 6);
        // Per-node commits are always implicit; dependent edges are wired
        // exactly as a whole-DAG install would wire them (sorted).
        assert!(db.iter().all(|r| !r.explicit));
        let libelf = db
            .get(hashes.node_hash(dag.by_name("libelf").unwrap()))
            .unwrap();
        assert_eq!(libelf.dependents.len(), 2, "dyninst and libdwarf");
        let mut sorted = libelf.dependents.clone();
        sorted.sort();
        assert_eq!(libelf.dependents, sorted, "dependents deterministic");
        // A later explicit whole-DAG install claims the same records.
        let plan = db.install_dag_as(&dag, true);
        assert_eq!(plan.reused.len(), 6);
        assert!(db.get(hashes.node_hash(dag.root())).unwrap().explicit);
    }

    #[test]
    fn explicit_flag_tracks_user_requests() {
        let mut db = Database::new("/spack/opt");
        let dag = mpileaks_with("mpich");
        db.install_dag(&dag);
        let hashes = DagHashes::compute(&dag);
        assert!(db.get(hashes.node_hash(dag.root())).unwrap().explicit);
        assert!(
            !db.get(hashes.node_hash(dag.by_name("libelf").unwrap()))
                .unwrap()
                .explicit
        );
    }
}
