//! Extension activation for interpreted languages (SC'15 §4.2).
//!
//! Python modules `extends('python')`: each extension installs into its
//! own prefix (preserving combinatorial versioning), but can be
//! *activated* into a Python installation — every file in the extension
//! prefix is symbolically linked into the Python prefix "as if it were
//! installed directly". Activation fails atomically on any file conflict;
//! extendable packages may instead supply merge logic for known-conflicting
//! files (Python merges easy-install registries). `deactivate` removes the
//! links and "restores the Python installation to its pristine state".

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::fstree::FsTree;

/// How to handle a file that exists in both the extension and the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Fail the activation (default behavior).
    Error,
    /// Merge the conflicting file (package-specialized activation, as the
    /// Python package does for module-registry files).
    Merge,
}

/// Tracks which extensions are active in which extendable installs.
#[derive(Debug, Clone, Default)]
pub struct ExtensionRegistry {
    /// (target hash, extension hash) → links created in the target prefix.
    active: BTreeMap<(String, String), Vec<String>>,
}

impl ExtensionRegistry {
    /// An empty registry.
    pub fn new() -> ExtensionRegistry {
        ExtensionRegistry::default()
    }

    /// Activate an extension into a target (e.g. numpy into a python).
    ///
    /// Links every file under `ext_prefix` to the same relative path under
    /// `target_prefix`. On conflict: with [`ConflictPolicy::Error`] the
    /// whole activation rolls back and errors; with
    /// [`ConflictPolicy::Merge`] conflicting files are replaced by merged
    /// regular files.
    pub fn activate(
        &mut self,
        fs: &mut FsTree,
        target_hash: &str,
        target_prefix: &str,
        ext_hash: &str,
        ext_prefix: &str,
        policy: ConflictPolicy,
    ) -> Result<usize, StoreError> {
        let key = (target_hash.to_string(), ext_hash.to_string());
        if self.active.contains_key(&key) {
            return Err(StoreError::ActivationState(format!(
                "extension {ext_hash} already active in {target_hash}"
            )));
        }
        let files = fs.list(ext_prefix);
        let mut created: Vec<String> = Vec::new();
        let mut merged: Vec<(String, u64)> = Vec::new();
        for rel in &files {
            // Per-prefix metadata (spec file, build log) never activates.
            if rel.starts_with(".spack/") || rel == ".spack" {
                continue;
            }
            let link = format!("{target_prefix}/{rel}");
            let target = format!("{ext_prefix}/{rel}");
            if fs.exists(&link) {
                match policy {
                    ConflictPolicy::Error => {
                        // Roll back everything created so far.
                        for l in &created {
                            let _ = fs.remove(l);
                        }
                        return Err(StoreError::PathConflict(link));
                    }
                    ConflictPolicy::Merge => {
                        merged.push((link, 0));
                        continue;
                    }
                }
            }
            fs.symlink(&link, &target)?;
            created.push(link);
        }
        for (link, _) in merged {
            // Replace with a merged regular file (size models combined
            // registries; content merging is package-specific in Spack).
            fs.write_file(&link, 1);
            created.push(link);
        }
        let count = created.len();
        self.active.insert(key, created);
        Ok(count)
    }

    /// Deactivate an extension: remove its links from the target prefix.
    pub fn deactivate(
        &mut self,
        fs: &mut FsTree,
        target_hash: &str,
        ext_hash: &str,
    ) -> Result<usize, StoreError> {
        let key = (target_hash.to_string(), ext_hash.to_string());
        let links = self.active.remove(&key).ok_or_else(|| {
            StoreError::ActivationState(format!("extension {ext_hash} not active in {target_hash}"))
        })?;
        let mut removed = 0;
        for l in &links {
            if fs.remove(l).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Extensions currently active in a target install.
    pub fn active_in(&self, target_hash: &str) -> Vec<&str> {
        self.active
            .keys()
            .filter(|(t, _)| t == target_hash)
            .map(|(_, e)| e.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn python_world() -> (FsTree, String, String) {
        let mut fs = FsTree::new();
        let py = "/spack/opt/python-2.7.9".to_string();
        let numpy = "/spack/opt/py-numpy-1.9.1".to_string();
        fs.write_file(&format!("{py}/bin/python"), 100);
        fs.write_file(&format!("{py}/lib/python2.7/site.py"), 10);
        fs.write_file(
            &format!("{numpy}/lib/python2.7/site-packages/numpy/core.py"),
            50,
        );
        fs.write_file(
            &format!("{numpy}/lib/python2.7/site-packages/numpy/fft.py"),
            30,
        );
        (fs, py, numpy)
    }

    #[test]
    fn activation_links_files_into_target() {
        let (mut fs, py, numpy) = python_world();
        let mut reg = ExtensionRegistry::new();
        let n = reg
            .activate(
                &mut fs,
                "pyhash",
                &py,
                "numpyhash",
                &numpy,
                ConflictPolicy::Error,
            )
            .unwrap();
        assert_eq!(n, 2);
        let linked = format!("{py}/lib/python2.7/site-packages/numpy/core.py");
        assert!(fs.exists(&linked));
        assert_eq!(
            fs.resolve(&linked).unwrap(),
            format!("{numpy}/lib/python2.7/site-packages/numpy/core.py")
        );
        assert_eq!(reg.active_in("pyhash"), vec!["numpyhash"]);
    }

    #[test]
    fn deactivation_restores_pristine_state() {
        let (mut fs, py, numpy) = python_world();
        let before = fs.len();
        let mut reg = ExtensionRegistry::new();
        reg.activate(&mut fs, "py", &py, "np", &numpy, ConflictPolicy::Error)
            .unwrap();
        assert!(fs.len() > before);
        let removed = reg.deactivate(&mut fs, "py", "np").unwrap();
        assert_eq!(removed, 2);
        assert_eq!(fs.len(), before, "pristine state restored");
        assert!(reg.active_in("py").is_empty());
    }

    #[test]
    fn conflicting_activation_rolls_back_atomically() {
        let (mut fs, py, numpy) = python_world();
        // A second extension shipping the same file path.
        let scipy = "/spack/opt/py-scipy-0.15";
        fs.write_file(
            &format!("{scipy}/lib/python2.7/site-packages/numpy/core.py"),
            7,
        );
        fs.write_file(
            &format!("{scipy}/lib/python2.7/site-packages/scipy/linalg.py"),
            9,
        );
        let mut reg = ExtensionRegistry::new();
        reg.activate(&mut fs, "py", &py, "np", &numpy, ConflictPolicy::Error)
            .unwrap();
        let count_after_numpy = fs.len();
        let err = reg
            .activate(&mut fs, "py", &py, "sp", scipy, ConflictPolicy::Error)
            .unwrap_err();
        assert!(matches!(err, StoreError::PathConflict(_)));
        // Rollback: nothing from scipy remains linked.
        assert_eq!(fs.len(), count_after_numpy);
        assert!(!fs.exists(&format!("{py}/lib/python2.7/site-packages/scipy/linalg.py")));
    }

    #[test]
    fn merge_policy_resolves_conflicts() {
        let (mut fs, py, numpy) = python_world();
        let scipy = "/spack/opt/py-scipy-0.15";
        fs.write_file(
            &format!("{scipy}/lib/python2.7/site-packages/numpy/core.py"),
            7,
        );
        let mut reg = ExtensionRegistry::new();
        reg.activate(&mut fs, "py", &py, "np", &numpy, ConflictPolicy::Error)
            .unwrap();
        let n = reg
            .activate(&mut fs, "py", &py, "sp", scipy, ConflictPolicy::Merge)
            .unwrap();
        assert_eq!(n, 1);
        // The conflicting path is now a merged regular file, not a link.
        let merged = format!("{py}/lib/python2.7/site-packages/numpy/core.py");
        assert!(matches!(
            fs.get(&merged),
            Some(crate::fstree::Entry::File { .. })
        ));
    }

    #[test]
    fn double_activation_is_an_error() {
        let (mut fs, py, numpy) = python_world();
        let mut reg = ExtensionRegistry::new();
        reg.activate(&mut fs, "py", &py, "np", &numpy, ConflictPolicy::Error)
            .unwrap();
        assert!(reg
            .activate(&mut fs, "py", &py, "np", &numpy, ConflictPolicy::Error)
            .is_err());
        assert!(reg.deactivate(&mut fs, "py", "ghost").is_err());
    }
}
