//! End-to-end tests driving the real `spack-rs` binary, with state
//! isolated in a per-test temporary home.

use std::path::PathBuf;
use std::process::{Command, Output};

fn home(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spack-rs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(home: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spack-rs"))
        .args(args)
        .env("SPACK_RS_HOME", home)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

#[test]
fn help_and_unknown_commands() {
    let h = home("help");
    let o = run(&h, &["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("install"));
    let o = run(&h, &["frobnicate"]);
    assert!(!o.status.success());
}

#[test]
fn spec_command_prints_concrete_dag() {
    let h = home("spec");
    let o = run(&h, &["spec", "mpileaks@2.3"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    assert!(out.contains("mpileaks@2.3%gcc"));
    assert!(out.contains("^callpath"));
    assert!(out.contains("hash: "));
}

#[test]
fn install_find_uninstall_cycle() {
    let h = home("cycle");
    let o = run(&h, &["install", "libdwarf"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("Installed 2 packages"));

    // State persists across invocations.
    let o = run(&h, &["find"]);
    let out = stdout(&o);
    assert!(out.contains("libdwarf@"));
    assert!(out.contains("libelf@"));
    assert!(out.contains("==> 2 installed packages"));

    // Constraint queries work.
    let o = run(&h, &["find", "libelf@0.8.13"]);
    assert!(stdout(&o).contains("==> 1 installed packages"));

    // Reuse on second install.
    let o = run(&h, &["install", "libdwarf"]);
    assert!(stdout(&o).contains("already installed"));

    // Uninstall refuses while dependents exist.
    let o = run(&h, &["find", "libelf"]);
    let hash = stdout(&o)
        .lines()
        .next()
        .unwrap()
        .split('[')
        .nth(1)
        .unwrap()
        .split(']')
        .next()
        .unwrap()
        .to_string();
    let o = run(&h, &["uninstall", &hash]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("still needed"));
}

#[test]
fn info_list_providers_dependents() {
    let h = home("query");
    let o = run(&h, &["info", "mpileaks"]);
    let out = stdout(&o);
    assert!(out.contains("leaked MPI objects"));
    assert!(out.contains("Safe versions"));
    assert!(out.contains("mpi"));

    let o = run(&h, &["list", "py-"]);
    assert!(stdout(&o).contains("py-numpy"));

    let o = run(&h, &["providers", "mpi@2:"]);
    let out = stdout(&o);
    assert!(out.contains("mvapich2"));
    assert!(out.contains("openmpi"));

    let o = run(&h, &["dependents", "libelf"]);
    let out = stdout(&o);
    assert!(out.contains("dyninst"));
    assert!(out.contains("libdwarf"));
}

#[test]
fn graph_emits_dot() {
    let h = home("graph");
    let o = run(&h, &["graph", "mpileaks"]);
    let out = stdout(&o);
    assert!(out.starts_with("digraph spec"));
    assert!(out.contains("\"mpileaks\" -> \"callpath\""));
}

#[test]
fn module_and_lmod_generation() {
    let h = home("module");
    run(&h, &["install", "libelf"]);
    let o = run(&h, &["find", "libelf"]);
    let hash = stdout(&o)
        .lines()
        .next()
        .unwrap()
        .split('[')
        .nth(1)
        .unwrap()
        .split(']')
        .next()
        .unwrap()
        .to_string();
    let o = run(&h, &["module", &hash]);
    let out = stdout(&o);
    assert!(out.contains("dk_alter PATH"));
    assert!(out.contains("#%Module1.0"));

    let o = run(&h, &["lmod"]);
    let out = stdout(&o);
    assert!(out.contains("gcc/4.9.3/libelf/0.8.13.lua"), "{out}");
}

#[test]
fn versions_scrape_and_test_matrix() {
    let h = home("versions");
    let o = run(&h, &["versions", "libelf"]);
    let out = stdout(&o);
    assert!(out.contains("0.8.13"));
    assert!(
        out.contains("(new)"),
        "scraped a version newer than the package file:\n{out}"
    );

    let o = run(&h, &["test-matrix", "mpileaks", "gerris", "hdf5+mpi"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("==> 3 passed, 0 failed"));
    let o = run(&h, &["test-matrix", "mpileaks", "no-such-pkg"]);
    assert!(!o.status.success());
}

#[test]
fn view_command_from_rules_file() {
    let h = home("view");
    run(&h, &["install", "mpileaks"]);
    std::fs::create_dir_all(&h).unwrap();
    let rules = h.join("view.rules");
    std::fs::write(
        &rules,
        "# mpileaks links\n/opt/${PACKAGE}-${VERSION}-${MPINAME} = mpileaks\n",
    )
    .unwrap();
    let o = run(&h, &["view", rules.to_str().unwrap()]);
    let out = stdout(&o);
    assert!(out.contains("/opt/mpileaks-2.3-"), "{out}");
    assert!(out.contains("==> 1 links"));
}

#[test]
fn gc_after_uninstall_sweeps_orphans() {
    let h = home("gc");
    run(&h, &["install", "libdwarf"]);
    // Nothing to collect while the explicit root is present.
    let o = run(&h, &["gc"]);
    assert!(stdout(&o).contains("==> 0 installs removed"));

    // Uninstall the root; its libelf dependency becomes garbage.
    let o = run(&h, &["find", "libdwarf"]);
    let hash = stdout(&o)
        .lines()
        .next()
        .unwrap()
        .split('[')
        .nth(1)
        .unwrap()
        .split(']')
        .next()
        .unwrap()
        .to_string();
    let o = run(&h, &["uninstall", &hash]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    // The implicit dep survives the uninstall...
    let o = run(&h, &["find"]);
    assert!(stdout(&o).contains("==> 1 installed packages"));
    // ...until gc sweeps it.
    let o = run(&h, &["gc"]);
    assert!(stdout(&o).contains("removed libelf@"), "{}", stdout(&o));
    let o = run(&h, &["find"]);
    assert!(stdout(&o).contains("==> 0 installed packages"));
}

#[test]
fn chaos_installs_are_deterministic_and_recoverable() {
    // Two fresh homes, same chaos seed: byte-identical output (exit code
    // may be nonzero when the install is incomplete — that's the point).
    let chaos = [
        "install",
        "--keep-going",
        "--retries",
        "1",
        "--chaos",
        "7:0.35",
        "mpileaks",
    ];
    let h1 = home("chaos1");
    let h2 = home("chaos2");
    let o1 = run(&h1, &chaos);
    let o2 = run(&h2, &chaos);
    assert_eq!(
        stdout(&o1),
        stdout(&o2),
        "chaos output must be reproducible"
    );
    assert_eq!(o1.status.code(), o2.status.code());

    // A clean rerun picks up whatever the chaos run committed and
    // finishes the DAG.
    let o = run(&h1, &["install", "mpileaks"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let o = run(&h1, &["find", "mpileaks"]);
    assert!(
        stdout(&o).contains("==> 1 installed packages"),
        "{}",
        stdout(&o)
    );
}

#[test]
fn install_output_is_identical_across_jobs_under_chaos() {
    // The frontier scheduler's determinism contract, end to end: the
    // CLI's install transcript may not depend on how many workers drained
    // the frontier, chaos or not.
    let chaos_at = |jobs: &str, tag: &str| {
        let h = home(tag);
        let o = run(
            &h,
            &[
                "install",
                "--jobs",
                jobs,
                "--keep-going",
                "--retries",
                "2",
                "--mirrors",
                "2",
                "--chaos",
                "42:0.2",
                "mpileaks",
            ],
        );
        (stdout(&o), o.status.code())
    };
    let (base_out, base_code) = chaos_at("1", "jobs1");
    for (jobs, tag) in [("2", "jobs2"), ("4", "jobs4"), ("8", "jobs8")] {
        let (out, code) = chaos_at(jobs, tag);
        assert_eq!(out, base_out, "--jobs {jobs} changed the transcript");
        assert_eq!(code, base_code, "--jobs {jobs} changed the exit code");
    }

    // And without chaos, at full width.
    let h = home("jobs-clean");
    let o = run(&h, &["install", "--jobs", "8", "mpileaks"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("critical path"), "{}", stdout(&o));
}

#[test]
fn create_checksum_mirror_module_refresh() {
    let h = home("extra");
    // `create` infers name/version and emits a pkg! skeleton.
    let o = run(
        &h,
        &[
            "create",
            "http://www.mr511.de/software/libelf-0.8.13.tar.gz",
        ],
    );
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("pkg!(r, \"libelf\", [\"0.8.13\"],"), "{out}");
    assert!(out.contains("url_model"));
    let o = run(&h, &["create", "http://example.com/notaversion.tar.gz"]);
    assert!(!o.status.success());

    // `checksum` prints mirror-consistent version directives.
    let o = run(&h, &["checksum", "libelf"]);
    let out = stdout(&o);
    assert!(out.contains(".version(\"0.8.13\","), "{out}");
    assert_eq!(out.matches(".version(").count(), 3);

    // `mirror` lists each (package, version) archive exactly once.
    let o = run(&h, &["mirror", "libdwarf", "libelf"]);
    let out = stdout(&o);
    assert!(out.contains("==> 2 archives"), "{out}");
    assert!(out.contains("md5 "));

    // `module-refresh` writes dotkit/tcl/lmod files for installs.
    run(&h, &["install", "libelf"]);
    let o = run(&h, &["module-refresh"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let dotkit = h.join("modules/dotkit/libelf/0.8.13-gcc-4.9.3");
    assert!(dotkit.is_file(), "{dotkit:?}");
    let lua = std::fs::read_to_string(h.join("modules/lmod/libelf/0.8.13-gcc-4.9.3")).unwrap();
    assert!(lua.contains("prepend_path(\"PATH\""));
}
