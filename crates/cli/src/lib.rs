//! placeholder
