//! Persistent CLI state: the install database and extension registry are
//! saved under a state directory (`SPACK_RS_HOME`, default
//! `.spack-rs-state/`) so consecutive `spack-rs` invocations see each
//! other's installs — including the stored spec files that make installs
//! reproducible (SC'15 §3.4.3).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use spack_concretize::Config;
use spack_spec::serial;
use spack_store::Database;

/// On-disk layout of CLI state.
pub struct State {
    /// Root state directory.
    pub home: PathBuf,
    /// The loaded install database.
    pub db: Database,
    /// Extension activations: (target hash, ext hash) pairs.
    pub activations: Vec<(String, String)>,
}

const STORE_ROOT: &str = "/spack/opt";

impl State {
    /// The state directory from `SPACK_RS_HOME` or the default.
    pub fn default_home() -> PathBuf {
        std::env::var_os("SPACK_RS_HOME")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".spack-rs-state"))
    }

    /// Load state from a directory (empty state when absent).
    pub fn load(home: &Path) -> io::Result<State> {
        let mut db = Database::new(STORE_ROOT);
        let specs_dir = home.join("specs");
        if specs_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&specs_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for path in entries {
                let text = fs::read_to_string(&path)?;
                match serial::from_specfile(&text) {
                    Ok(dag) => {
                        db.install_dag(&dag);
                    }
                    Err(e) => {
                        eprintln!("warning: skipping corrupt spec file {path:?}: {e}");
                    }
                }
            }
        }
        // Explicitness is stored separately: install_dag marked every
        // restored root explicit, so reset to the recorded set.
        let explicit_file = home.join("explicit");
        if explicit_file.is_file() {
            let recorded: std::collections::BTreeSet<String> = fs::read_to_string(&explicit_file)?
                .lines()
                .map(|l| l.trim().to_string())
                .filter(|l| !l.is_empty())
                .collect();
            let hashes: Vec<String> = db.iter().map(|r| r.hash.clone()).collect();
            for h in hashes {
                let _ = db.set_explicit(&h, recorded.contains(&h));
            }
        }
        let mut activations = Vec::new();
        let act_file = home.join("activations");
        if act_file.is_file() {
            for line in fs::read_to_string(&act_file)?.lines() {
                if let Some((t, e)) = line.split_once(' ') {
                    activations.push((t.to_string(), e.to_string()));
                }
            }
        }
        Ok(State {
            home: home.to_path_buf(),
            db,
            activations,
        })
    }

    /// Persist the database and activations.
    pub fn save(&self) -> io::Result<()> {
        let specs_dir = self.home.join("specs");
        fs::create_dir_all(&specs_dir)?;
        // Rewrite the full set: record files are tiny and this keeps
        // uninstalls simple.
        for entry in fs::read_dir(&specs_dir)? {
            let entry = entry?;
            fs::remove_file(entry.path())?;
        }
        let mut explicit = String::new();
        for rec in self.db.iter() {
            // Every record gets a spec file (each restores its own
            // sub-DAG); the explicit set is recorded alongside.
            fs::write(
                specs_dir.join(format!("{}.spec", &rec.hash[..16])),
                &rec.specfile,
            )?;
            if rec.explicit {
                explicit.push_str(&rec.hash);
                explicit.push('\n');
            }
        }
        fs::write(self.home.join("explicit"), explicit)?;
        let mut act = String::new();
        for (t, e) in &self.activations {
            act.push_str(&format!("{t} {e}\n"));
        }
        fs::write(self.home.join("activations"), act)?;
        Ok(())
    }

    /// Load the layered configuration: defaults, then `$home/config` if
    /// present, then `./spack-config` if present.
    pub fn load_config(&self) -> Config {
        let mut config = Config::new();
        config.register_compiler("gcc", "4.9.3", &[]);
        config.register_compiler("gcc", "4.7.4", &[]);
        config.register_compiler("intel", "15.0.1", &[]);
        config.register_compiler("clang", "3.6.2", &[]);
        config.register_compiler("xl", "12.1", &["bgq"]);
        let defaults = spack_concretize::Preferences {
            default_arch: Some("linux-x86_64".to_string()),
            default_compiler: Some(spack_spec::CompilerSpec::by_name("gcc")),
            ..Default::default()
        };
        config.push_scope("defaults", defaults);
        for (name, path) in [
            ("site", self.home.join("config")),
            ("user", PathBuf::from("spack-config")),
        ] {
            if let Ok(text) = fs::read_to_string(&path) {
                if let Err(e) = config.push_scope_text(name, &text) {
                    eprintln!("warning: ignoring bad config {path:?}: {e}");
                }
            }
        }
        config
    }
}
