//! `spack-rs` — the command-line interface of the Spack reproduction.
//!
//! ```text
//! spack-rs audit [--json]      statically lint every package recipe
//! spack-rs install <spec>      concretize, build (simulated), register
//!   --retries N --keep-going --chaos <seed>:<rate> --mirrors N
//!                              fault-tolerant installs: retry with
//!                              virtual-time backoff, isolate failures,
//!                              inject deterministic chaos, fail over
//! spack-rs spec <spec>         show the concretized DAG (Fig. 7 view)
//! spack-rs find [spec]         query installed specs
//! spack-rs uninstall <hash>    remove an install (refuses if needed)
//! spack-rs list [substr]       list packages in the repository
//! spack-rs info <package>      package metadata, versions, variants
//! spack-rs providers <virtual> provider index queries (Fig. 5)
//! spack-rs graph <spec>        GraphViz dot of the concretized DAG
//! spack-rs module <hash>       emit dotkit + TCL module files (§3.5.4)
//! spack-rs activate <ext> <target>    extension activation (§4.2)
//! spack-rs deactivate <ext> <target>  undo an activation
//! ```

mod commands;
mod state;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: spack-rs <command> [args]   (try `spack-rs help`)");
            return ExitCode::FAILURE;
        }
    };
    // `audit` owns its exit code: the number of error-severity findings.
    if cmd == "audit" {
        return match commands::audit(rest) {
            Ok(errors) => ExitCode::from(errors),
            Err(e) => {
                eprintln!("==> Error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match cmd {
        "install" => commands::install(rest),
        "spec" => commands::spec(rest),
        "find" => commands::find(rest),
        "uninstall" => commands::uninstall(rest),
        "list" => commands::list(rest),
        "info" => commands::info(rest),
        "providers" => commands::providers(rest),
        "graph" => commands::graph(rest),
        "module" => commands::module(rest),
        "activate" => commands::activate(rest, true),
        "deactivate" => commands::activate(rest, false),
        "compilers" => commands::compilers(rest),
        "dependents" => commands::dependents(rest),
        "versions" => commands::versions(rest),
        "view" => commands::view(rest),
        "lmod" => commands::lmod(rest),
        "test-matrix" => commands::test_matrix(rest),
        "gc" => commands::gc(rest),
        "create" => commands::create(rest),
        "checksum" => commands::checksum(rest),
        "mirror" => commands::mirror(rest),
        "module-refresh" => commands::module_refresh(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `spack-rs help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("==> Error: {e}");
            ExitCode::FAILURE
        }
    }
}
