//! CLI command implementations.

use parking_lot::Mutex;
use spack_buildenv::{
    install_dag, FaultPlan, FaultyMirror, FetchSource, FsProfile, InstallOptions, Mirror,
    MirrorChain, NodeStatus, RetryPolicy,
};
use spack_concretize::Concretizer;
use spack_repo_builtin::repo_stack;
use spack_spec::{parse_specs, DagHashes, Spec};
use spack_store::{dotkit, module_name, tcl_module, ConflictPolicy, ExtensionRegistry, FsTree};
use std::sync::Arc;

use crate::state::State;

/// Help text.
pub const HELP: &str = "\
spack-rs — Rust reproduction of the Spack package manager (SC'15)

commands:
  audit [--json]         statically lint every package recipe in the
                         repository; exit code is the number of errors
  install [--no-wrappers] [--nfs-stage] [-j|--jobs N] [--retries N]
          [--keep-going] [--chaos <seed>:<rate>] [--mirrors N] <spec>...
                         --jobs N      build with N worker threads draining
                                       the dependency frontier; the report
                                       is byte-identical for any N
                         --retries N   retry failed nodes N extra times
                                       with exponential virtual-time backoff
                         --keep-going  isolate failures: build independent
                                       subtrees, commit successful sub-DAGs
                         --chaos s:r   inject faults deterministically at
                                       rate r from seed s (reproducible)
                         --mirrors N   fail over across N mirrors
  spec <spec>            show the fully concretized DAG
  find [spec]            list installed specs matching a constraint
  uninstall <hash>       remove one install by (short) hash
  list [substring]       list known packages
  info <package>         show versions, variants, dependencies
  providers <virtual>    list providers of a virtual interface
  graph <spec>           GraphViz dot output of the concrete DAG
  module <hash>          print dotkit and TCL module files
  activate <ext-spec> <target-spec>
  deactivate <ext-spec> <target-spec>
  compilers              list registered compiler toolchains
  dependents <package>   packages that can depend on <package>
  versions <package>     known + scraped remote versions
  view <rules-file>      compute a symlink view from rule lines
  lmod                   generate the Lmod hierarchy for installed specs
  test-matrix <spec>...  concretize a nightly build matrix (4.4 style)
  gc                     remove installs no explicit spec still needs
  create <url>           generate a package skeleton from a download URL
  checksum <package>     mirror checksums for all known versions
  mirror <spec>...       list the archives a mirror of <spec> needs
  module-refresh         write dotkit/TCL/Lmod files for all installs";

fn parse_one(text: &str) -> Result<Spec, String> {
    Spec::parse(text).map_err(|e| e.to_string())
}

/// `spack-rs audit [--json]` — run every static-analysis pass over the
/// repository. Returns the number of error-severity findings, which the
/// caller turns into the process exit code (0 = clean, CI-friendly).
pub fn audit(args: &[String]) -> Result<u8, String> {
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other => return Err(format!("audit: unknown argument `{other}`")),
        }
    }
    let repos = repo_stack();
    let report = spack_audit::audit_repo(&repos);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(report.error_count().min(u8::MAX as usize) as u8)
}

/// `spack-rs install [flags] <spec>...`
pub fn install(args: &[String]) -> Result<(), String> {
    let mut opts = InstallOptions::default();
    let mut spec_text = Vec::new();
    let mut chaos: Option<FaultPlan> = None;
    let mut mirrors = 1usize;
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--no-wrappers" => opts.settings.use_wrappers = false,
            "--nfs-stage" => opts.settings.stage_fs = FsProfile::Nfs,
            "--keep-going" => opts.keep_going = true,
            "-j" | "--jobs" => {
                let n = iter
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or("--jobs needs a number")?;
                opts.jobs = n.max(1);
            }
            "--retries" => {
                let n = iter
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or("--retries needs a number")?;
                opts.retry = RetryPolicy::with_retries(n);
            }
            "--mirrors" => {
                let n = iter
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or("--mirrors needs a number")?;
                mirrors = n.max(1);
            }
            "--chaos" => {
                let arg = iter.next().ok_or("--chaos needs <seed>:<rate>")?;
                let (seed, rate) = arg
                    .split_once(':')
                    .and_then(|(s, r)| Some((s.parse::<u64>().ok()?, r.parse::<f64>().ok()?)))
                    .ok_or("--chaos needs <seed>:<rate>, e.g. 42:0.2")?;
                chaos = Some(FaultPlan::uniform(seed, rate));
            }
            _ => spec_text.push(a.clone()),
        }
    }
    if spec_text.is_empty() {
        return Err("install: no spec given".to_string());
    }
    if let Some(plan) = chaos {
        opts.faults = Some(plan);
        opts.source = MirrorChain::from_sources(
            (0..mirrors)
                .map(|i| {
                    Arc::new(FaultyMirror::new(
                        Mirror::named(&format!("mirror{i}")),
                        plan,
                    )) as Arc<dyn FetchSource>
                })
                .collect(),
        );
    } else if mirrors > 1 {
        opts.source = MirrorChain::from_sources(
            (0..mirrors)
                .map(|i| Arc::new(Mirror::named(&format!("mirror{i}"))) as Arc<dyn FetchSource>)
                .collect(),
        );
    }
    let requests = parse_specs(&spec_text.join(" ")).map_err(|e| e.to_string())?;

    let mut state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let config = state.load_config();
    let concretizer = Concretizer::new(&repos, &config);

    for request in requests {
        // Reuse a satisfying install when one exists (§3.2.3).
        if let Some(existing) = state.db.query(&request).first() {
            println!(
                "==> {} is already installed in {}",
                existing.dag.root_node().format_node(),
                existing.prefix
            );
            continue;
        }
        let dag = concretizer
            .concretize(&request)
            .map_err(|e| e.to_string())?;
        println!("==> Concretized {request}");
        print!("{dag}");
        let db = Mutex::new(std::mem::replace(
            &mut state.db,
            spack_store::Database::new("/spack/opt"),
        ));
        let report = install_dag(&dag, &repos, &db, &opts).map_err(|e| e.to_string())?;
        state.db = db.into_inner();
        // Persist before printing: a broken output pipe must not lose the
        // record of completed installs.
        state.save().map_err(|e| e.to_string())?;
        for b in &report.builds {
            match &b.status {
                NodeStatus::Reused => {
                    println!("==> {} reused existing install [{}]", b.name, &b.hash[..8]);
                }
                NodeStatus::Built(o) => {
                    println!(
                        "==> {} built in {:.1}s (simulated; {} compiler invocations{}{})",
                        b.name,
                        o.total(),
                        o.compiler_invocations,
                        if b.attempts > 1 {
                            format!(
                                "; {} attempts, {:.1}s backoff",
                                b.attempts, b.backoff_seconds
                            )
                        } else {
                            String::new()
                        },
                        if b.patches.is_empty() {
                            String::new()
                        } else {
                            format!(", patches: {}", b.patches.join(", "))
                        }
                    );
                }
                NodeStatus::Failed { error } => {
                    println!(
                        "==> {} FAILED after {} attempt{}: {error}",
                        b.name,
                        b.attempts,
                        if b.attempts == 1 { "" } else { "s" }
                    );
                }
                NodeStatus::Skipped { blocked_on } => {
                    println!(
                        "==> {} skipped (blocked on {})",
                        b.name,
                        blocked_on.join(", ")
                    );
                }
            }
            for fault in &b.faults {
                println!("    fault: {fault}");
            }
        }
        println!(
            "==> Installed {} packages ({} reused), {:.1}s serial / {:.1}s critical path",
            report.committed_count(),
            report.reused_count(),
            report.serial_seconds,
            report.critical_path_seconds
        );
        if !report.is_complete() {
            println!(
                "==> {} failed, {} skipped; {} retries, {:.1}s backoff, {:.1}s wasted",
                report.failed_count(),
                report.skipped_count(),
                report.retries,
                report.backoff_seconds,
                report.wasted_seconds
            );
            // The partial commit is already persisted; surface the failure
            // through the exit code.
            state.save().map_err(|e| e.to_string())?;
            return Err(format!(
                "install incomplete: {} of {} packages failed or were skipped",
                report.failed_count() + report.skipped_count(),
                report.builds.len()
            ));
        }
    }
    state.save().map_err(|e| e.to_string())
}

/// `spack-rs spec <spec>` — the Fig. 7 view.
pub fn spec(args: &[String]) -> Result<(), String> {
    let request = parse_one(&args.join(" "))?;
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let config = state.load_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&request)
        .map_err(|e| e.to_string())?;
    let hashes = DagHashes::compute(&dag);
    println!("Input spec\n------------------\n{request}\n");
    println!("Concretized\n------------------");
    print!("{dag}");
    println!("\nhash: {}", hashes.short(dag.root()));
    Ok(())
}

/// `spack-rs find [spec]`
pub fn find(args: &[String]) -> Result<(), String> {
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let request = if args.is_empty() {
        None
    } else {
        Some(parse_one(&args.join(" "))?)
    };
    let mut shown = 0;
    for rec in state.db.iter() {
        if let Some(req) = &request {
            if !rec.dag.satisfies(req) {
                continue;
            }
        }
        println!(
            "{}  [{}]  {}",
            rec.dag.root_node().format_node(),
            &rec.hash[..8],
            rec.prefix
        );
        shown += 1;
    }
    println!("==> {shown} installed packages");
    Ok(())
}

/// `spack-rs uninstall <hash>`
pub fn uninstall(args: &[String]) -> Result<(), String> {
    let hash = args.first().ok_or("uninstall: need a hash")?;
    let mut state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let rec = state.db.uninstall(hash).map_err(|e| e.to_string())?;
    println!(
        "==> Uninstalled {} [{}]",
        rec.dag.root_node().format_node(),
        &rec.hash[..8]
    );
    state.save().map_err(|e| e.to_string())
}

/// `spack-rs list [substring]`
pub fn list(args: &[String]) -> Result<(), String> {
    let needle = args.first().map(|s| s.as_str()).unwrap_or("");
    let repos = repo_stack();
    let names: Vec<String> = repos
        .package_names()
        .into_iter()
        .filter(|n| n.contains(needle))
        .collect();
    for n in &names {
        println!("{n}");
    }
    println!("==> {} packages", names.len());
    Ok(())
}

/// `spack-rs info <package>`
pub fn info(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("info: need a package name")?;
    let repos = repo_stack();
    let pkg = repos
        .get(name)
        .ok_or_else(|| format!("unknown package `{name}`"))?;
    println!("{}  ({})", pkg.name, pkg.namespace);
    println!("    {}", pkg.description);
    if !pkg.homepage.is_empty() {
        println!("    homepage: {}", pkg.homepage);
    }
    println!("\nSafe versions:");
    for v in &pkg.versions {
        match &v.checksum {
            Some(md5) => println!("    {:12} md5={md5}", v.version.to_string()),
            None => println!("    {:12} (no checksum)", v.version.to_string()),
        }
    }
    if !pkg.variants.is_empty() {
        println!("\nVariants:");
        for v in &pkg.variants {
            println!(
                "    {}{:14} {}",
                if v.default { '+' } else { '~' },
                v.name,
                v.description
            );
        }
    }
    if !pkg.dependencies.is_empty() {
        println!("\nDependencies:");
        for d in &pkg.dependencies {
            match &d.when {
                Some(w) => println!("    {}  when={w}", d.spec),
                None => println!("    {}", d.spec),
            }
        }
    }
    if !pkg.provides.is_empty() {
        println!("\nProvides:");
        for p in &pkg.provides {
            match &p.when {
                Some(w) => println!("    {}  when={w}", p.vspec),
                None => println!("    {}", p.vspec),
            }
        }
    }
    Ok(())
}

/// `spack-rs providers <virtual>`
pub fn providers(args: &[String]) -> Result<(), String> {
    let request = parse_one(&args.join(" "))?;
    let repos = repo_stack();
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let config = state.load_config();
    let concretizer = Concretizer::new(&repos, &config);
    let index = concretizer.provider_index();
    let name = request.name.as_deref().unwrap_or("");
    if !index.is_virtual(name) {
        return Err(format!("`{name}` is not a virtual package"));
    }
    for entry in index.candidates_for(&request) {
        match &entry.when {
            Some(w) => println!(
                "{:12} provides {name}@{} when {w}",
                entry.package, entry.interface_versions
            ),
            None => println!(
                "{:12} provides {name}@{}",
                entry.package, entry.interface_versions
            ),
        }
    }
    Ok(())
}

/// `spack-rs graph <spec>`
pub fn graph(args: &[String]) -> Result<(), String> {
    let request = parse_one(&args.join(" "))?;
    let repos = repo_stack();
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let config = state.load_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&request)
        .map_err(|e| e.to_string())?;
    let dot = dag.to_dot(
        |n| match repos.get(&n.name).and_then(|p| p.category.clone()) {
            Some(c) => match c.as_str() {
                "physics" => "physics",
                "math" => "math",
                "utility" => "utility",
                _ => "external",
            },
            None => "external",
        },
    );
    println!("{dot}");
    Ok(())
}

/// `spack-rs module <hash>`
pub fn module(args: &[String]) -> Result<(), String> {
    let hash = args.first().ok_or("module: need a hash")?;
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let rec = state
        .db
        .get(hash)
        .ok_or_else(|| format!("no install matching `{hash}`"))?;
    let repos = repo_stack();
    let desc = repos
        .get(&rec.dag.root_node().name)
        .map(|p| p.description.clone())
        .unwrap_or_default();
    println!("# module name: {}", module_name(rec));
    println!("# ---- dotkit ----");
    print!("{}", dotkit(rec, "tools", &desc));
    println!("# ---- tcl ----");
    print!("{}", tcl_module(rec, &desc));
    Ok(())
}

/// `spack-rs activate/deactivate <ext-spec> <target-spec>`
pub fn activate(args: &[String], on: bool) -> Result<(), String> {
    if args.len() < 2 {
        return Err("activate: need <extension-spec> <target-spec>".to_string());
    }
    let ext_req = parse_one(&args[0])?;
    let tgt_req = parse_one(&args[1])?;
    let mut state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let ext = state
        .db
        .query(&ext_req)
        .first()
        .map(|r| {
            (
                r.hash.clone(),
                r.prefix.clone(),
                r.dag.root_node().name.clone(),
            )
        })
        .ok_or_else(|| format!("extension `{ext_req}` is not installed"))?;
    let tgt = state
        .db
        .query(&tgt_req)
        .first()
        .map(|r| (r.hash.clone(), r.prefix.clone()))
        .ok_or_else(|| format!("target `{tgt_req}` is not installed"))?;
    let repos = repo_stack();
    let pkg = repos
        .get(&ext.2)
        .ok_or_else(|| format!("unknown package `{}`", ext.2))?;
    if pkg.extends.is_none() {
        return Err(format!("`{}` is not an extension", ext.2));
    }

    // Reconstruct the registry and a file tree with one representative
    // file per install, then replay recorded activations.
    let mut fs = FsTree::new();
    for rec in state.db.iter() {
        fs.write_file(
            &format!("{}/lib/{}.py", rec.prefix, rec.dag.root_node().name),
            1,
        );
    }
    let mut reg = ExtensionRegistry::new();
    for (t, e) in &state.activations {
        let (tp, ep) = {
            let t = state.db.get(t).ok_or("stale activation")?;
            let e = state.db.get(e).ok_or("stale activation")?;
            (t.prefix.clone(), e.prefix.clone())
        };
        reg.activate(&mut fs, t, &tp, e, &ep, ConflictPolicy::Merge)
            .map_err(|e| e.to_string())?;
    }

    if on {
        let n = reg
            .activate(
                &mut fs,
                &tgt.0,
                &tgt.1,
                &ext.0,
                &ext.1,
                ConflictPolicy::Error,
            )
            .map_err(|e| e.to_string())?;
        state.activations.push((tgt.0.clone(), ext.0.clone()));
        println!("==> Activated {} into {} ({n} links)", ext.2, tgt.1);
    } else {
        let n = reg
            .deactivate(&mut fs, &tgt.0, &ext.0)
            .map_err(|e| e.to_string())?;
        state
            .activations
            .retain(|(t, e)| !(t == &tgt.0 && e == &ext.0));
        println!(
            "==> Deactivated {} from {} ({n} links removed)",
            ext.2, tgt.1
        );
    }
    state.save().map_err(|e| e.to_string())
}

/// `spack-rs compilers`
pub fn compilers(_args: &[String]) -> Result<(), String> {
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let config = state.load_config();
    println!("==> Available compilers");
    for rc in config.compilers() {
        if rc.architectures.is_empty() {
            println!("{}", rc.compiler);
        } else {
            println!("{}  ({})", rc.compiler, rc.architectures.join(", "));
        }
    }
    Ok(())
}

/// `spack-rs dependents <package>` — reverse-dependency query.
pub fn dependents(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("dependents: need a package name")?;
    let repos = repo_stack();
    if !repos.contains(name) {
        // Virtual names are fine too: anything that depends on the
        // interface counts.
        let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
        let config = state.load_config();
        let c = Concretizer::new(&repos, &config);
        if !c.provider_index().is_virtual(name) {
            return Err(format!("unknown package `{name}`"));
        }
    }
    let mut found = 0;
    for pkg in repos.visible_packages() {
        for dep in &pkg.dependencies {
            if dep.spec.name.as_deref() == Some(name.as_str()) {
                match &dep.when {
                    Some(w) => println!("{}  (when {w})", pkg.name),
                    None => println!("{}", pkg.name),
                }
                found += 1;
                break;
            }
        }
    }
    println!("==> {found} packages can depend on `{name}`");
    Ok(())
}

/// `spack-rs versions <package>` — known safe versions plus versions
/// scraped from the (simulated) listing page (3.2.3).
pub fn versions(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("versions: need a package name")?;
    let repos = repo_stack();
    let pkg = repos
        .get(name)
        .ok_or_else(|| format!("unknown package `{name}`"))?;
    println!("==> Safe versions (with checksums):");
    for v in &pkg.versions {
        println!("  {}", v.version);
    }
    if let Some(model) = &pkg.url_model {
        // Simulate the remote listing: the known versions plus one newer
        // release that the package file does not list yet.
        let newest = pkg
            .versions
            .iter()
            .map(|v| &v.version)
            .max()
            .expect("at least one version");
        let page: String = pkg
            .versions
            .iter()
            .map(|v| format!("<a href=\"{name}-{}.tar.gz\">", v.version))
            .chain(std::iter::once(format!(
                "<a href=\"{name}-{}.tar.gz\">",
                newest.bumped()
            )))
            .collect();
        let remote = spack_package::url::scan_versions(&page, name);
        println!("==> Remote versions (scraped using url model {model}):");
        for v in remote {
            let known = pkg.has_version(&v);
            println!("  {v}{}", if known { "" } else { "  (new)" });
        }
    }
    Ok(())
}

/// `spack-rs view <rules-file>` — compute links from rule lines of the
/// form `TEMPLATE [= SELECTOR-SPEC]` (4.3.1).
pub fn view(args: &[String]) -> Result<(), String> {
    use spack_store::{View, ViewPolicy, ViewRule};
    let path = args.first().ok_or("view: need a rules file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rules = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(" = ") {
            Some((template, selector)) => {
                let sel = parse_one(selector.trim())?;
                rules.push(ViewRule::for_spec(template.trim(), sel));
            }
            None => rules.push(ViewRule::for_all(line)),
        }
    }
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let config = state.load_config();
    let policy = ViewPolicy {
        compiler_order: config.compiler_order().to_vec(),
    };
    let view = View::compute(&rules, state.db.iter(), &policy);
    for (link, (target, hash)) in view.links() {
        println!("{link} -> {target}  [{}]", &hash[..8]);
    }
    println!("==> {} links", view.links().len());
    Ok(())
}

/// `spack-rs lmod` — generate the Lmod hierarchy (3.5.4 extension).
pub fn lmod(_args: &[String]) -> Result<(), String> {
    use spack_store::generate_hierarchy;
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let modules = generate_hierarchy(
        state.db.iter(),
        |name| matches!(name, "gcc" | "llvm"),
        |name| {
            repos
                .get(name)
                .map(|p| p.description.clone())
                .unwrap_or_default()
        },
    );
    for m in &modules {
        println!("{}", m.path);
    }
    println!("==> {} module files in the hierarchy", modules.len());
    Ok(())
}

/// `spack-rs test-matrix <spec>...` — concretize every given spec and
/// report a nightly-matrix summary (the 4.4/Table 3 workflow as a
/// command).
pub fn test_matrix(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("test-matrix: need at least one spec".to_string());
    }
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let config = state.load_config();
    let concretizer = Concretizer::new(&repos, &config);
    let mut ok = 0;
    let mut failed = 0;
    for text in args {
        match parse_one(text).and_then(|s| concretizer.concretize(&s).map_err(|e| e.to_string())) {
            Ok(dag) => {
                ok += 1;
                println!("PASS {text}  ({} packages)", dag.len());
            }
            Err(e) => {
                failed += 1;
                println!("FAIL {text}  ({e})");
            }
        }
    }
    println!("==> {ok} passed, {failed} failed");
    if failed > 0 {
        Err(format!("{failed} matrix entries failed"))
    } else {
        Ok(())
    }
}

/// `spack-rs gc` — sweep implicit installs no explicit root still needs.
pub fn gc(_args: &[String]) -> Result<(), String> {
    let mut state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let removed = state.db.gc();
    for rec in &removed {
        println!(
            "==> removed {} [{}]",
            rec.dag.root_node().format_node(),
            &rec.hash[..8]
        );
    }
    println!(
        "==> {} installs removed, {} remain",
        removed.len(),
        state.db.len()
    );
    state.save().map_err(|e| e.to_string())
}

/// `spack-rs create <url>` — generate a package skeleton from a download
/// URL, inferring name and version the way `spack create` does (3.2.3's
/// URL model in reverse).
pub fn create(args: &[String]) -> Result<(), String> {
    let url = args.first().ok_or("create: need a download URL")?;
    let base = url
        .rsplit('/')
        .next()
        .ok_or("create: URL has no file component")?;
    // Strip archive suffix, then split name-version.
    let stem = ["tar.gz", "tgz", "tar.bz2", "tar.xz", "zip"]
        .iter()
        .find_map(|s| base.strip_suffix(&format!(".{s}")))
        .unwrap_or(base);
    let (name, version) = match stem.rsplit_once('-') {
        Some((n, v)) if v.chars().next().is_some_and(|c| c.is_ascii_digit()) => (n, v),
        _ => return Err(format!("create: cannot infer name-version from `{base}`")),
    };
    if spack_package::url::version_in_url(url, name).is_none() {
        return Err(format!("create: `{url}` does not look like a release URL"));
    }
    println!("// Package skeleton generated by `spack-rs create {url}`.");
    println!("// Fill in the description, dependencies, and recipe.");
    println!("pkg!(r, \"{name}\", [\"{version}\"],");
    println!("    .describe(\"FIXME: description\"),");
    println!("    .homepage(\"FIXME\"),");
    println!("    .url_model(\"{url}\"),");
    println!("    // .depends_on(\"...\"),");
    println!("    .install(spack_package::BuildRecipe::autotools()),");
    println!("    .workload(crate::helpers::wl_small()));");
    Ok(())
}

/// `spack-rs checksum <package>` — fetch each known version from the
/// mirror and print its md5, the way `spack checksum` builds the
/// version() directives of Fig. 1.
pub fn checksum(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("checksum: need a package name")?;
    let repos = repo_stack();
    let pkg = repos
        .get(name)
        .ok_or_else(|| format!("unknown package `{name}`"))?;
    let mirror = spack_buildenv::Mirror::new();
    println!("==> checksums for {name} (paste into the package file):");
    for v in &pkg.versions {
        let archive = mirror.fetch(pkg, &v.version).map_err(|e| e.to_string())?;
        println!("    .version(\"{}\", \"{}\")", v.version, archive.md5);
    }
    Ok(())
}

/// `spack-rs mirror <spec>...` — list every archive a local source
/// mirror of the given specs must carry (name, version, URL, md5).
pub fn mirror(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("mirror: need at least one spec".to_string());
    }
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let config = state.load_config();
    let concretizer = Concretizer::new(&repos, &config);
    let m = spack_buildenv::Mirror::new();
    let mut listed = std::collections::BTreeSet::new();
    for text in args {
        let dag = concretizer
            .concretize(&parse_one(text)?)
            .map_err(|e| e.to_string())?;
        for node in dag.nodes() {
            if !listed.insert((node.name.clone(), node.version.to_string())) {
                continue;
            }
            let pkg = repos.get(&node.name).ok_or("package vanished")?;
            let archive = m.fetch(pkg, &node.version).map_err(|e| e.to_string())?;
            println!(
                "{:24} {:12} {:8} bytes  md5 {}  {}",
                node.name,
                node.version.to_string(),
                archive.bytes.len(),
                archive.md5,
                archive.url
            );
        }
    }
    println!("==> {} archives", listed.len());
    Ok(())
}

/// `spack-rs module-refresh` — regenerate dotkit, TCL, and Lmod module
/// files for every installed spec under `$SPACK_RS_HOME/modules/`.
pub fn module_refresh(_args: &[String]) -> Result<(), String> {
    use spack_store::{generate_hierarchy, lua_module};
    let state = State::load(&State::default_home()).map_err(|e| e.to_string())?;
    let repos = repo_stack();
    let describe = |name: &str| {
        repos
            .get(name)
            .map(|p| p.description.clone())
            .unwrap_or_default()
    };
    let root = state.home.join("modules");
    let mut written = 0usize;
    for rec in state.db.iter() {
        let name = module_name(rec);
        let desc = describe(&rec.dag.root_node().name);
        for (kind, content) in [
            ("dotkit", dotkit(rec, "tools", &desc)),
            ("tcl", tcl_module(rec, &desc)),
            ("lmod", lua_module(rec, &desc)),
        ] {
            let path = root.join(kind).join(&name);
            std::fs::create_dir_all(path.parent().unwrap()).map_err(|e| e.to_string())?;
            std::fs::write(&path, content).map_err(|e| e.to_string())?;
            written += 1;
        }
    }
    // The Lmod *hierarchy* layout additionally goes under modules/hierarchy.
    let modules = generate_hierarchy(
        state.db.iter(),
        |n| matches!(n, "gcc" | "llvm"),
        |n| describe(n),
    );
    for m in &modules {
        let path = root.join("hierarchy").join(&m.path);
        std::fs::create_dir_all(path.parent().unwrap()).map_err(|e| e.to_string())?;
        std::fs::write(&path, &m.content).map_err(|e| e.to_string())?;
        written += 1;
    }
    println!("==> wrote {written} module files under {}", root.display());
    Ok(())
}
