//! Directive data model: the metadata added by the package DSL.
//!
//! In Spack, packages are Python classes and directives (`version`,
//! `depends_on`, `provides`, `patch`, ...) are DSL functions that attach
//! metadata to the class (SC'15 §3.1). Here each directive is a plain
//! struct collected by the [`crate::package::PackageBuilder`]. All `when=`
//! predicates are anonymous [`Spec`]s matched against the node being
//! concretized (§3.2.4).

use spack_spec::{Spec, Version};

/// A known version of a package together with its download checksum
/// (Fig. 1: `version('1.0', '8838c574b39202a57d7c2d68692718aa')`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDirective {
    /// The version this directive declares.
    pub version: Version,
    /// MD5 checksum of the release tarball, when known ("safe" versions).
    /// `None` for versions extrapolated from URLs (§3.2.3 "Versions").
    pub checksum: Option<String>,
    /// Whether site policy should prefer this version (used sparingly,
    /// e.g. to steer away from a broken release).
    pub preferred: bool,
}

/// How a dependency is used by the dependent. The paper's build
/// methodology distinguishes what must be present at build time (headers,
/// compiler wrappers) from what is linked and what is needed at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Needed to build (e.g. cmake): added to PATH in the build env.
    Build,
    /// Linked against: contributes -I/-L/-rpath flags via wrappers.
    Link,
    /// Needed when the installed package runs (e.g. interpreter).
    Run,
}

/// A `depends_on(spec, when=...)` directive (Fig. 1, §3.2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyDirective {
    /// Constraint on the dependency, e.g. `callpath@1.54.0` or `mpi@2:`.
    /// The name may be a virtual package.
    pub spec: Spec,
    /// Optional predicate: the dependency exists only when the dependent's
    /// node spec satisfies this condition (e.g. `+mpi`, `%gcc@:4`).
    pub when: Option<Spec>,
    /// Usage kind; `Link` is the default, as in Spack.
    pub kind: DepKind,
}

/// A `provides(vspec, when=...)` directive for versioned virtual
/// dependencies (§3.3, Fig. 5): `provides('mpi@:2.2', when='@1.9')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvidesDirective {
    /// The virtual interface provided, possibly versioned (`mpi@:3`).
    pub vspec: Spec,
    /// Provider versions for which this holds (`@2.0` or a range).
    pub when: Option<Spec>,
}

/// A `patch(name, when=...)` directive (§3.2.4): a source patch applied
/// before building when the node matches the predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchDirective {
    /// Patch file name, e.g. `python-bgq-xlc.patch`.
    pub name: String,
    /// Apply only when the node satisfies this predicate
    /// (e.g. `=bgq%xl`).
    pub when: Option<Spec>,
}

/// A named build option (§3.2.3 "Variants"): a boolean flag with a
/// default, e.g. `debug` or `mpi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantDirective {
    /// Variant name as used in `+name`/`~name`.
    pub name: String,
    /// Value chosen when neither the user nor policy sets it.
    pub default: bool,
    /// Human-readable description.
    pub description: String,
}

/// A declared conflict: building is refused when the node satisfies
/// `spec` (and `when`, if given). Mirrors Spack's `conflicts()` directive,
/// the declarative form of "this combination is known not to build".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictDirective {
    /// The conflicting condition, e.g. `%xl` for a package that cannot
    /// build with XL compilers.
    pub spec: Spec,
    /// Optional scoping predicate.
    pub when: Option<Spec>,
    /// Explanation shown to the user.
    pub message: String,
}

/// Evaluate a `when=` predicate against a node spec. `None` always holds.
pub fn when_matches(when: &Option<Spec>, node: &Spec) -> bool {
    match when {
        None => true,
        Some(cond) => node.node_satisfies(cond),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn when_none_always_matches() {
        let node = Spec::parse("libelf@0.8.11%gcc@4.9=linux-x86_64").unwrap();
        assert!(when_matches(&None, &node));
    }

    #[test]
    fn when_predicates_match_node_params() {
        let node = Spec::parse("python@2.7.9%xl@12.1+shared=bgq").unwrap();
        let cond = |s: &str| Some(Spec::parse(s).unwrap());
        assert!(when_matches(&cond("=bgq"), &node));
        assert!(when_matches(&cond("=bgq%xl"), &node));
        assert!(when_matches(&cond("@2.7:"), &node));
        assert!(when_matches(&cond("+shared"), &node));
        assert!(!when_matches(&cond("=bgq%clang"), &node));
        assert!(!when_matches(&cond("@3:"), &node));
        assert!(!when_matches(&cond("~shared"), &node));
    }

    #[test]
    fn when_compiler_ranges() {
        // The ROSE example from §3.2.4: different boost per compiler.
        let gcc4 = Spec::parse("rose@0.9%gcc@4.8=linux-x86_64").unwrap();
        let gcc5 = Spec::parse("rose@0.9%gcc@5.1=linux-x86_64").unwrap();
        let old = Some(Spec::parse("%gcc@:4").unwrap());
        let new = Some(Spec::parse("%gcc@5:").unwrap());
        assert!(when_matches(&old, &gcc4));
        assert!(!when_matches(&old, &gcc5));
        assert!(when_matches(&new, &gcc5));
        assert!(!when_matches(&new, &gcc4));
    }
}
