//! Package repositories and site overrides (SC'15 §4.3.2).
//!
//! Spack keeps its package files in a mainline ("builtin") repository and
//! lets sites stack additional repositories on top: site packages can
//! shadow or replace builtin recipes, supporting proprietary patches and
//! local build policy without forking the mainline. A [`RepoStack`]
//! searches repositories in order, so earlier (site) repos win.

use std::collections::BTreeMap;
use std::sync::Arc;

use spack_spec::SpecError;

use crate::package::PackageDef;

/// A single named repository of package definitions.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    namespace: String,
    packages: BTreeMap<String, Arc<PackageDef>>,
}

impl Repository {
    /// An empty repository with the given namespace (e.g. `builtin`,
    /// `llnl.site`).
    pub fn new(namespace: impl Into<String>) -> Repository {
        Repository {
            namespace: namespace.into(),
            packages: BTreeMap::new(),
        }
    }

    /// The repository's namespace.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Register a package definition. The definition's `namespace` field is
    /// stamped with this repository's namespace. Errors on duplicates.
    pub fn register(&mut self, mut def: PackageDef) -> Result<(), SpecError> {
        if self.packages.contains_key(&def.name) {
            return Err(SpecError::parse(format!(
                "package `{}` already registered in repo `{}`",
                def.name, self.namespace
            )));
        }
        def.namespace = self.namespace.clone();
        self.packages.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    /// Look up a package by name.
    pub fn get(&self, name: &str) -> Option<&Arc<PackageDef>> {
        self.packages.get(name)
    }

    /// All package names, sorted.
    pub fn package_names(&self) -> Vec<&str> {
        self.packages.keys().map(|s| s.as_str()).collect()
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Iterate over all definitions.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<PackageDef>> {
        self.packages.values()
    }
}

/// An ordered stack of repositories; the first repo containing a package
/// name wins, so site repos placed before `builtin` shadow it (§4.3.2).
#[derive(Debug, Clone, Default)]
pub struct RepoStack {
    repos: Vec<Repository>,
}

impl RepoStack {
    /// A stack containing only the given repository.
    pub fn with_builtin(builtin: Repository) -> RepoStack {
        RepoStack {
            repos: vec![builtin],
        }
    }

    /// Push a repository that *shadows* everything already present.
    pub fn push_front(&mut self, repo: Repository) {
        self.repos.insert(0, repo);
    }

    /// Append a repository searched after everything already present.
    pub fn push_back(&mut self, repo: Repository) {
        self.repos.push(repo);
    }

    /// Find a package: first match in stack order.
    pub fn get(&self, name: &str) -> Option<&Arc<PackageDef>> {
        self.repos.iter().find_map(|r| r.get(name))
    }

    /// Does any repo define this name?
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// All distinct package names visible through the stack, sorted.
    pub fn package_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .repos
            .iter()
            .flat_map(|r| r.package_names())
            .map(|s| s.to_string())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// All visible definitions after shadowing: one per name.
    pub fn visible_packages(&self) -> Vec<&Arc<PackageDef>> {
        self.package_names()
            .iter()
            .filter_map(|n| self.get(n))
            .collect()
    }

    /// Total number of distinct package names.
    pub fn len(&self) -> usize {
        self.package_names().len()
    }

    /// Whether no repository defines any package.
    pub fn is_empty(&self) -> bool {
        self.repos.iter().all(|r| r.is_empty())
    }

    /// The repositories in search order.
    pub fn repos(&self) -> &[Repository] {
        &self.repos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageBuilder;
    use crate::recipe::BuildRecipe;

    fn pkg(name: &str, version: &str) -> PackageDef {
        PackageBuilder::new(name)
            .version(version, "aa")
            .install(BuildRecipe::autotools())
            .build()
            .unwrap()
    }

    #[test]
    fn registration_and_lookup() {
        let mut repo = Repository::new("builtin");
        repo.register(pkg("libelf", "0.8.13")).unwrap();
        repo.register(pkg("libdwarf", "20130729")).unwrap();
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.get("libelf").unwrap().namespace, "builtin");
        assert!(repo.get("ghost").is_none());
        assert!(repo.register(pkg("libelf", "0.8.12")).is_err());
    }

    #[test]
    fn site_repo_shadows_builtin() {
        let mut builtin = Repository::new("builtin");
        builtin.register(pkg("python", "2.7.8")).unwrap();
        builtin.register(pkg("libelf", "0.8.13")).unwrap();
        let mut site = Repository::new("llnl.site");
        site.register(pkg("python", "2.7.9")).unwrap();

        let mut stack = RepoStack::with_builtin(builtin);
        stack.push_front(site);

        // Site python wins; builtin libelf still visible.
        let p = stack.get("python").unwrap();
        assert_eq!(p.namespace, "llnl.site");
        assert_eq!(p.known_versions()[0].to_string(), "2.7.9");
        assert_eq!(stack.get("libelf").unwrap().namespace, "builtin");
        assert_eq!(stack.len(), 2);
        assert_eq!(stack.visible_packages().len(), 2);
    }

    #[test]
    fn stack_order_is_respected() {
        let mut a = Repository::new("a");
        a.register(pkg("x", "1")).unwrap();
        let mut b = Repository::new("b");
        b.register(pkg("x", "2")).unwrap();
        let mut stack = RepoStack::default();
        stack.push_back(a);
        stack.push_back(b);
        assert_eq!(stack.get("x").unwrap().namespace, "a");
    }
}
