//! # spack-package
//!
//! The package layer of `spack-rs` (SC'15 §3.1–§3.3, §4.3.2): package
//! definitions as *templates* that can be built in many configurations,
//! the directive DSL (`version`, `depends_on(when=)`, `provides(when=)`,
//! `patch(when=)`, `variant`, `conflicts`, `extends`), predicate-dispatched
//! build rules (the `@when` decorator of Fig. 4), URL extrapolation from
//! versions, and stacked package repositories with site overrides.
//!
//! Packages here are declarative Rust values rather than Python classes,
//! but the information content matches Fig. 1 of the paper one-for-one:
//!
//! ```
//! use spack_package::{PackageBuilder, BuildRecipe};
//!
//! let pkg = PackageBuilder::new("mpileaks")
//!     .describe("Tool to detect and report leaked MPI objects.")
//!     .version("1.0", "8838c574b39202a57d7c2d68692718aa")
//!     .depends_on("mpi")
//!     .depends_on("callpath")
//!     .install(BuildRecipe::autotools())
//!     .build()
//!     .unwrap();
//! assert!(pkg.all_dependency_names().contains("mpi"));
//! ```

#![warn(missing_docs)]

pub mod directive;
pub mod multimethod;
pub mod package;
pub mod recipe;
pub mod repo;
pub mod url;

pub use directive::{
    when_matches, ConflictDirective, DepKind, DependencyDirective, PatchDirective,
    ProvidesDirective, VariantDirective, VersionDirective,
};
pub use multimethod::Multimethod;
pub use package::{PackageBuilder, PackageDef};
pub use recipe::{BuildRecipe, BuildWorkload};
pub use repo::{RepoStack, Repository};
