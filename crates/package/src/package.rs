//! Package definitions and the builder DSL (SC'15 §3.1, Fig. 1).
//!
//! A [`PackageDef`] is the Rust analogue of a Spack package class: a
//! template, explicitly parameterized by version, compiler, options, and
//! dependencies, from which many concrete builds can be produced. The
//! [`PackageBuilder`] mirrors the Python DSL:
//!
//! ```
//! use spack_package::{PackageBuilder, BuildRecipe};
//!
//! let mpileaks = PackageBuilder::new("mpileaks")
//!     .describe("Tool to detect and report leaked MPI objects.")
//!     .homepage("https://github.com/hpc/mpileaks")
//!     .url_model("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz")
//!     .version("1.0", "8838c574b39202a57d7c2d68692718aa")
//!     .version("1.1", "4282eddb08ad8d36df15b06d4be38bcb")
//!     .depends_on("mpi")
//!     .depends_on("callpath")
//!     .variant("debug", false, "Build with debug instrumentation")
//!     .install(BuildRecipe::autotools())
//!     .build()
//!     .unwrap();
//! assert_eq!(mpileaks.known_versions().len(), 2);
//! ```

use std::collections::BTreeSet;

use spack_spec::{Spec, SpecError, Version};

use crate::directive::{
    when_matches, ConflictDirective, DepKind, DependencyDirective, PatchDirective,
    ProvidesDirective, VariantDirective, VersionDirective,
};
use crate::multimethod::Multimethod;
use crate::recipe::{BuildRecipe, BuildWorkload};

/// A package definition: metadata plus parameterized build rules.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageDef {
    /// Package name.
    pub name: String,
    /// Repository namespace this definition came from (set on
    /// registration; §4.3.2).
    pub namespace: String,
    /// One-line description.
    pub description: String,
    /// Project homepage.
    pub homepage: String,
    /// Model URL for version extrapolation (§3.2.3 "Versions").
    pub url_model: Option<String>,
    /// Free-form category tag; Fig. 13 colors ARES nodes by
    /// physics/utility/math/external.
    pub category: Option<String>,
    /// Known ("safe") versions with checksums.
    pub versions: Vec<VersionDirective>,
    /// Declared variants with defaults.
    pub variants: Vec<VariantDirective>,
    /// Dependency directives, conditional or not.
    pub dependencies: Vec<DependencyDirective>,
    /// Virtual interfaces provided (empty unless this is a provider).
    pub provides: Vec<ProvidesDirective>,
    /// Conditional source patches.
    pub patches: Vec<PatchDirective>,
    /// Declared build conflicts.
    pub conflicts: Vec<ConflictDirective>,
    /// Name of the extendable package this one extends (`extends('python')`,
    /// §4.2), if any.
    pub extends: Option<String>,
    /// Whether other packages may extend this one (python, R, lua...).
    pub extendable: bool,
    /// Compiler features the package needs (SC'15 §4.5 future work):
    /// anonymous specs like `cxx11` or `openmp@4:` checked against the
    /// compiler-feature registry at concretization time.
    pub compiler_features: Vec<Spec>,
    /// Predicate-dispatched install rules (§3.2.5).
    pub install_rules: Multimethod<BuildRecipe>,
    /// Simulated build size (drives Figs. 10/11 workloads).
    pub workload: BuildWorkload,
}

impl PackageDef {
    /// Is this package purely virtual? Virtual packages (like `mpi`) have
    /// no definition at all in Spack; in this model a virtual name is one
    /// with no versions, no rules — they are represented only by provider
    /// directives in *other* packages, so this type never describes one.
    /// Real packages always have at least one version (enforced by the
    /// builder).
    pub fn known_versions(&self) -> Vec<&Version> {
        self.versions.iter().map(|v| &v.version).collect()
    }

    /// The checksum recorded for a version, if that version is "safe".
    pub fn checksum_for(&self, version: &Version) -> Option<&str> {
        self.versions
            .iter()
            .find(|v| &v.version == version)
            .and_then(|v| v.checksum.as_deref())
    }

    /// Is `version` one of the declared safe versions?
    pub fn has_version(&self, version: &Version) -> bool {
        self.versions.iter().any(|v| &v.version == version)
    }

    /// Declared variant names.
    pub fn variant_names(&self) -> BTreeSet<&str> {
        self.variants.iter().map(|v| v.name.as_str()).collect()
    }

    /// The default value of a variant, if declared.
    pub fn variant_default(&self, name: &str) -> Option<bool> {
        self.variants
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.default)
    }

    /// Dependencies active for a given (partially concrete) node spec:
    /// directives whose `when` predicate the node satisfies (§3.2.4).
    pub fn dependencies_for(&self, node: &Spec) -> Vec<&DependencyDirective> {
        self.dependencies
            .iter()
            .filter(|d| when_matches(&d.when, node))
            .collect()
    }

    /// All dependency names that could ever be active (unconditioned
    /// union), used for cheap reachability pre-passes.
    pub fn all_dependency_names(&self) -> BTreeSet<&str> {
        self.dependencies
            .iter()
            .filter_map(|d| d.spec.name.as_deref())
            .collect()
    }

    /// Virtual specs provided by a given provider node (§3.3): the
    /// `provides` directives whose `when` matches the node.
    pub fn provides_for(&self, node: &Spec) -> Vec<&ProvidesDirective> {
        self.provides
            .iter()
            .filter(|p| when_matches(&p.when, node))
            .collect()
    }

    /// Does this package provide the named virtual interface under *any*
    /// condition?
    pub fn ever_provides(&self, virtual_name: &str) -> bool {
        self.provides
            .iter()
            .any(|p| p.vspec.name.as_deref() == Some(virtual_name))
    }

    /// Patches to apply for a node spec (§3.2.4, the Python-on-BG/Q
    /// example).
    pub fn patches_for(&self, node: &Spec) -> Vec<&PatchDirective> {
        self.patches
            .iter()
            .filter(|p| when_matches(&p.when, node))
            .collect()
    }

    /// Any conflict triggered by this node spec.
    pub fn conflict_for(&self, node: &Spec) -> Option<&ConflictDirective> {
        self.conflicts
            .iter()
            .find(|c| when_matches(&c.when, node) && node.node_satisfies(&c.spec))
    }

    /// The build recipe selected for a node spec by `@when` dispatch.
    pub fn recipe_for(&self, node: &Spec) -> Option<&BuildRecipe> {
        self.install_rules.resolve(node)
    }
}

/// Fluent builder mirroring Spack's package DSL.
#[derive(Debug)]
pub struct PackageBuilder {
    def: PackageDef,
    error: Option<SpecError>,
}

impl PackageBuilder {
    /// Start a package definition with the given name.
    pub fn new(name: impl Into<String>) -> PackageBuilder {
        PackageBuilder {
            def: PackageDef {
                name: name.into(),
                namespace: String::new(),
                description: String::new(),
                homepage: String::new(),
                url_model: None,
                category: None,
                versions: Vec::new(),
                variants: Vec::new(),
                dependencies: Vec::new(),
                provides: Vec::new(),
                patches: Vec::new(),
                conflicts: Vec::new(),
                extends: None,
                extendable: false,
                compiler_features: Vec::new(),
                install_rules: Multimethod::new(),
                workload: BuildWorkload::default(),
            },
            error: None,
        }
    }

    fn record_err(&mut self, e: SpecError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn parse(&mut self, text: &str) -> Option<Spec> {
        match Spec::parse(text) {
            Ok(s) => Some(s),
            Err(e) => {
                self.record_err(e);
                None
            }
        }
    }

    /// `"""docstring"""` — one-line description.
    pub fn describe(mut self, text: &str) -> Self {
        self.def.description = text.to_string();
        self
    }

    /// `homepage = ...`.
    pub fn homepage(mut self, url: &str) -> Self {
        self.def.homepage = url.to_string();
        self
    }

    /// `url = ...` — model URL for extrapolation.
    pub fn url_model(mut self, url: &str) -> Self {
        self.def.url_model = Some(url.to_string());
        self
    }

    /// Category tag for Fig. 13-style classification.
    pub fn category(mut self, cat: &str) -> Self {
        self.def.category = Some(cat.to_string());
        self
    }

    /// `version('1.0', '<md5>')` — a safe version with checksum.
    pub fn version(mut self, v: &str, md5: &str) -> Self {
        match Version::new(v) {
            Ok(version) => self.def.versions.push(VersionDirective {
                version,
                checksum: Some(md5.to_string()),
                preferred: false,
            }),
            Err(e) => self.record_err(e),
        }
        self
    }

    /// A version without a checksum (e.g. `develop`).
    pub fn version_unchecked(mut self, v: &str) -> Self {
        match Version::new(v) {
            Ok(version) => self.def.versions.push(VersionDirective {
                version,
                checksum: None,
                preferred: false,
            }),
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Mark the most recently added version as site-preferred.
    pub fn preferred(mut self) -> Self {
        if let Some(last) = self.def.versions.last_mut() {
            last.preferred = true;
        }
        self
    }

    /// `depends_on('callpath')` / `depends_on('boost@1.54.0')`.
    pub fn depends_on(mut self, spec: &str) -> Self {
        if let Some(s) = self.parse(spec) {
            if s.name.is_none() {
                self.record_err(SpecError::parse(format!(
                    "depends_on needs a package name in `{spec}`"
                )));
            } else {
                self.def.dependencies.push(DependencyDirective {
                    spec: s,
                    when: None,
                    kind: DepKind::Link,
                });
            }
        }
        self
    }

    /// `depends_on(spec, when=cond)` (§3.2.4).
    pub fn depends_on_when(mut self, spec: &str, when: &str) -> Self {
        let (s, w) = (self.parse(spec), self.parse(when));
        if let (Some(s), Some(w)) = (s, w) {
            self.def.dependencies.push(DependencyDirective {
                spec: s,
                when: Some(w),
                kind: DepKind::Link,
            });
        }
        self
    }

    /// A build-only dependency (tools like cmake).
    pub fn depends_on_build(mut self, spec: &str) -> Self {
        if let Some(s) = self.parse(spec) {
            self.def.dependencies.push(DependencyDirective {
                spec: s,
                when: None,
                kind: DepKind::Build,
            });
        }
        self
    }

    /// A run-only dependency (e.g. an interpreter).
    pub fn depends_on_run(mut self, spec: &str) -> Self {
        if let Some(s) = self.parse(spec) {
            self.def.dependencies.push(DependencyDirective {
                spec: s,
                when: None,
                kind: DepKind::Run,
            });
        }
        self
    }

    /// `provides('mpi@:2.2', when='@1.9')` (§3.3, Fig. 5).
    pub fn provides_when(mut self, vspec: &str, when: &str) -> Self {
        let (v, w) = (self.parse(vspec), self.parse(when));
        if let (Some(v), Some(w)) = (v, w) {
            self.def.provides.push(ProvidesDirective {
                vspec: v,
                when: Some(w),
            });
        }
        self
    }

    /// Unconditional `provides('blas')`.
    pub fn provides(mut self, vspec: &str) -> Self {
        if let Some(v) = self.parse(vspec) {
            self.def.provides.push(ProvidesDirective {
                vspec: v,
                when: None,
            });
        }
        self
    }

    /// `variant('debug', default=False, description=...)`.
    pub fn variant(mut self, name: &str, default: bool, description: &str) -> Self {
        self.def.variants.push(VariantDirective {
            name: name.to_string(),
            default,
            description: description.to_string(),
        });
        self
    }

    /// `patch('file.patch', when=cond)`.
    pub fn patch_when(mut self, name: &str, when: &str) -> Self {
        if let Some(w) = self.parse(when) {
            self.def.patches.push(PatchDirective {
                name: name.to_string(),
                when: Some(w),
            });
        }
        self
    }

    /// Unconditional patch.
    pub fn patch(mut self, name: &str) -> Self {
        self.def.patches.push(PatchDirective {
            name: name.to_string(),
            when: None,
        });
        self
    }

    /// `conflicts('%xl', msg=...)`.
    pub fn conflicts(mut self, spec: &str, message: &str) -> Self {
        if let Some(s) = self.parse(spec) {
            self.def.conflicts.push(ConflictDirective {
                spec: s,
                when: None,
                message: message.to_string(),
            });
        }
        self
    }

    /// `extends('python')` (§4.2): a dependency plus activation support.
    pub fn extends(mut self, pkg: &str) -> Self {
        self.def.extends = Some(pkg.to_string());
        if let Some(s) = self.parse(pkg) {
            self.def.dependencies.push(DependencyDirective {
                spec: s,
                when: None,
                kind: DepKind::Run,
            });
        }
        self
    }

    /// Mark as extendable (python, R, lua, ...).
    pub fn extendable(mut self) -> Self {
        self.def.extendable = true;
        self
    }

    /// `requires_feature('cxx11')` / `requires_feature('openmp@4:')` —
    /// constrain compiler selection to toolchains providing the feature
    /// (the paper's §4.5 compiler-feature extension).
    pub fn requires_feature(mut self, feature: &str) -> Self {
        if let Some(f) = self.parse(feature) {
            if f.name.is_none() {
                self.record_err(SpecError::parse(format!(
                    "requires_feature needs a feature name in `{feature}`"
                )));
            } else {
                self.def.compiler_features.push(f);
            }
        }
        self
    }

    /// The default install rule.
    pub fn install(mut self, recipe: BuildRecipe) -> Self {
        self.def.install_rules.set_default(recipe);
        self
    }

    /// An `@when(cond)`-guarded install rule (§3.2.5, Fig. 4).
    pub fn install_when(mut self, when: &str, recipe: BuildRecipe) -> Self {
        if let Some(w) = self.parse(when) {
            self.def.install_rules.add_case(w, recipe);
        }
        self
    }

    /// Simulated build workload calibration.
    pub fn workload(mut self, w: BuildWorkload) -> Self {
        self.def.workload = w;
        self
    }

    /// Finalize. Errors if any directive failed to parse, no version was
    /// declared, or a variant/dependency is duplicated.
    pub fn build(mut self) -> Result<PackageDef, SpecError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.def.versions.is_empty() {
            return Err(SpecError::parse(format!(
                "package `{}` declares no versions",
                self.def.name
            )));
        }
        let mut seen = BTreeSet::new();
        for v in &self.def.versions {
            if !seen.insert(v.version.to_string()) {
                return Err(SpecError::parse(format!(
                    "package `{}` declares version {} twice",
                    self.def.name, v.version
                )));
            }
        }
        let mut vars = BTreeSet::new();
        for v in &self.def.variants {
            if !vars.insert(v.name.clone()) {
                return Err(SpecError::parse(format!(
                    "package `{}` declares variant `{}` twice",
                    self.def.name, v.name
                )));
            }
        }
        if self
            .def
            .install_rules
            .resolve(&Spec::named(&self.def.name))
            .is_none()
            && !self.def.install_rules.has_default()
            && self.def.install_rules.case_count() == 0
        {
            // No install rule at all: default to autotools, the most common
            // HPC build system, rather than failing — matching how most
            // simple Spack packages look.
            self.def.install_rules.set_default(BuildRecipe::autotools());
        }
        Ok(self.def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpileaks() -> PackageDef {
        PackageBuilder::new("mpileaks")
            .describe("Tool to detect and report leaked MPI objects.")
            .homepage("https://github.com/hpc/mpileaks")
            .version("1.0", "8838c574b39202a57d7c2d68692718aa")
            .version("1.1", "4282eddb08ad8d36df15b06d4be38bcb")
            .depends_on("mpi")
            .depends_on("callpath")
            .variant("debug", false, "debug instrumentation")
            .install(BuildRecipe::autotools())
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_mpileaks_package() {
        let p = mpileaks();
        assert_eq!(p.known_versions().len(), 2);
        assert_eq!(
            p.checksum_for(&Version::new("1.0").unwrap()),
            Some("8838c574b39202a57d7c2d68692718aa")
        );
        assert_eq!(p.all_dependency_names().len(), 2);
        assert_eq!(p.variant_default("debug"), Some(false));
        assert_eq!(p.variant_default("ghost"), None);
    }

    #[test]
    fn conditional_dependencies_rose_example() {
        // §3.2.4: boost version depends on compiler version.
        let rose = PackageBuilder::new("rose")
            .version("0.9.6", "aa")
            .depends_on_when("boost@1.54.0", "%gcc@:4")
            .depends_on_when("boost@1.59.0", "%gcc@5:")
            .build()
            .unwrap();
        let with_gcc4 = Spec::parse("rose@0.9.6%gcc@4.9=linux-x86_64").unwrap();
        let with_gcc5 = Spec::parse("rose@0.9.6%gcc@5.2=linux-x86_64").unwrap();
        let deps4 = rose.dependencies_for(&with_gcc4);
        assert_eq!(deps4.len(), 1);
        assert_eq!(deps4[0].spec.versions.to_string(), "1.54.0");
        let deps5 = rose.dependencies_for(&with_gcc5);
        assert_eq!(deps5.len(), 1);
        assert_eq!(deps5[0].spec.versions.to_string(), "1.59.0");
    }

    #[test]
    fn optional_mpi_dependency() {
        // §3.2.4: depends_on('mpi', when='+mpi').
        let p = PackageBuilder::new("hdf5")
            .version("1.8.13", "cc")
            .variant("mpi", true, "parallel I/O")
            .depends_on_when("mpi", "+mpi")
            .build()
            .unwrap();
        let par = Spec::parse("hdf5@1.8.13+mpi%gcc@4.9=linux-x86_64").unwrap();
        let ser = Spec::parse("hdf5@1.8.13~mpi%gcc@4.9=linux-x86_64").unwrap();
        assert_eq!(p.dependencies_for(&par).len(), 1);
        assert_eq!(p.dependencies_for(&ser).len(), 0);
    }

    #[test]
    fn conditional_patches_python_bgq() {
        // §3.2.4: patch('python-bgq-xlc.patch', when='=bgq%xl').
        let p = PackageBuilder::new("python")
            .version("2.7.9", "dd")
            .patch_when("python-bgq-xlc.patch", "=bgq%xl")
            .patch_when("python-bgq-clang.patch", "=bgq%clang")
            .build()
            .unwrap();
        let xl = Spec::parse("python@2.7.9%xl@12=bgq").unwrap();
        let clang = Spec::parse("python@2.7.9%clang@3.5=bgq").unwrap();
        let linux = Spec::parse("python@2.7.9%gcc@4.9=linux-x86_64").unwrap();
        assert_eq!(p.patches_for(&xl).len(), 1);
        assert_eq!(p.patches_for(&xl)[0].name, "python-bgq-xlc.patch");
        assert_eq!(p.patches_for(&clang)[0].name, "python-bgq-clang.patch");
        assert!(p.patches_for(&linux).is_empty());
    }

    #[test]
    fn fig5_versioned_provides() {
        let mvapich2 = PackageBuilder::new("mvapich2")
            .version("1.9", "aa")
            .version("2.0", "bb")
            .provides_when("mpi@:2.2", "@1.9")
            .provides_when("mpi@:3.0", "@2.0")
            .build()
            .unwrap();
        let v19 = Spec::parse("mvapich2@1.9%gcc@4.9=linux-x86_64").unwrap();
        let v20 = Spec::parse("mvapich2@2.0%gcc@4.9=linux-x86_64").unwrap();
        assert_eq!(mvapich2.provides_for(&v19).len(), 1);
        assert_eq!(
            mvapich2.provides_for(&v19)[0].vspec.versions.to_string(),
            ":2.2"
        );
        assert_eq!(
            mvapich2.provides_for(&v20)[0].vspec.versions.to_string(),
            ":3.0"
        );
        assert!(mvapich2.ever_provides("mpi"));
        assert!(!mvapich2.ever_provides("blas"));
    }

    #[test]
    fn conflicts_are_detected() {
        let p = PackageBuilder::new("gerris")
            .version("1.0", "aa")
            .conflicts("%xl", "gerris does not build with XL compilers")
            .build()
            .unwrap();
        let xl = Spec::parse("gerris@1.0%xl@12=bgq").unwrap();
        let gcc = Spec::parse("gerris@1.0%gcc@4.9=bgq").unwrap();
        assert!(p.conflict_for(&xl).is_some());
        assert!(p.conflict_for(&gcc).is_none());
    }

    #[test]
    fn builder_error_propagation() {
        assert!(PackageBuilder::new("x").build().is_err()); // no versions
        assert!(PackageBuilder::new("x")
            .version("1.0", "aa")
            .version("1.0", "bb")
            .build()
            .is_err()); // duplicate version
        assert!(PackageBuilder::new("x")
            .version("1.0", "aa")
            .variant("a", true, "")
            .variant("a", false, "")
            .build()
            .is_err()); // duplicate variant
        assert!(PackageBuilder::new("x")
            .version("1.0", "aa")
            .depends_on("@@bad@@")
            .build()
            .is_err()); // bad spec text
    }

    #[test]
    fn default_recipe_is_autotools() {
        let p = PackageBuilder::new("x").version("1", "aa").build().unwrap();
        let node = Spec::parse("x@1%gcc@4.9=linux-x86_64").unwrap();
        assert_eq!(p.recipe_for(&node), Some(&BuildRecipe::autotools()));
    }

    #[test]
    fn extends_records_dependency() {
        let numpy = PackageBuilder::new("py-numpy")
            .version("1.9.1", "aa")
            .extends("python")
            .build()
            .unwrap();
        assert_eq!(numpy.extends.as_deref(), Some("python"));
        assert!(numpy.all_dependency_names().contains("python"));
    }
}
