//! Predicate-dispatched build rules: the `@when` decorator (SC'15 §3.2.5).
//!
//! Spack lets a package define several `install` methods, each guarded by
//! a spec predicate, so old and new build logic coexist without tangled
//! conditionals (Fig. 4: Dyninst uses autotools at `@:8.1` and CMake
//! after). [`Multimethod`] reproduces that dispatch for any rule type:
//! cases are tried in declaration order, the first whose predicate the
//! node satisfies wins, and a default applies when no predicate matches.

use spack_spec::Spec;

use crate::directive::when_matches;

/// An ordered set of predicate-guarded cases with an optional default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Multimethod<T> {
    cases: Vec<(Spec, T)>,
    default: Option<T>,
}

impl<T> Default for Multimethod<T> {
    fn default() -> Self {
        Multimethod {
            cases: Vec::new(),
            default: None,
        }
    }
}

impl<T> Multimethod<T> {
    /// An empty multimethod with no cases and no default.
    pub fn new() -> Multimethod<T> {
        Multimethod::default()
    }

    /// Set the default rule (the undecorated method).
    pub fn set_default(&mut self, value: T) {
        self.default = Some(value);
    }

    /// Add a guarded case (`@when('@:8.1')`). Cases are consulted in the
    /// order added.
    pub fn add_case(&mut self, when: Spec, value: T) {
        self.cases.push((when, value));
    }

    /// Resolve against a node spec: first matching case, else the default.
    pub fn resolve(&self, node: &Spec) -> Option<&T> {
        for (when, value) in &self.cases {
            if when_matches(&Some(when.clone()), node) {
                return Some(value);
            }
        }
        self.default.as_ref()
    }

    /// Number of guarded cases.
    pub fn case_count(&self) -> usize {
        self.cases.len()
    }

    /// The guarded cases, in registration (i.e. dispatch-priority) order.
    /// Exposes the `when=` predicates for static analysis of a package's
    /// dispatch table without resolving against a concrete node.
    pub fn cases(&self) -> &[(Spec, T)] {
        &self.cases
    }

    /// Whether a default rule exists.
    pub fn has_default(&self) -> bool {
        self.default.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::BuildRecipe;

    fn node(text: &str) -> Spec {
        Spec::parse(text).unwrap()
    }

    /// Fig. 4: dyninst <= 8.1 uses autotools, default is cmake.
    fn dyninst_install() -> Multimethod<BuildRecipe> {
        let mut m = Multimethod::new();
        m.set_default(BuildRecipe::cmake());
        m.add_case(node("@:8.1"), BuildRecipe::autotools());
        m
    }

    #[test]
    fn fig4_dyninst_dispatch() {
        let m = dyninst_install();
        let old = node("dyninst@8.0%gcc@4.9=linux-x86_64");
        let boundary = node("dyninst@8.1.2%gcc@4.9=linux-x86_64");
        let new = node("dyninst@8.2%gcc@4.9=linux-x86_64");
        assert_eq!(m.resolve(&old), Some(&BuildRecipe::autotools()));
        // 8.1.2 is within the prefix-inclusive upper bound @:8.1.
        assert_eq!(m.resolve(&boundary), Some(&BuildRecipe::autotools()));
        assert_eq!(m.resolve(&new), Some(&BuildRecipe::cmake()));
    }

    #[test]
    fn first_matching_case_wins() {
        let mut m = Multimethod::new();
        m.add_case(node("%gcc"), 1);
        m.add_case(node("%gcc@4:"), 2);
        let n = node("x@1%gcc@4.9=linux-x86_64");
        assert_eq!(m.resolve(&n), Some(&1));
    }

    #[test]
    fn no_match_no_default_is_none() {
        let mut m: Multimethod<u8> = Multimethod::new();
        m.add_case(node("%xl"), 1);
        assert_eq!(m.resolve(&node("x@1%gcc@4.9=linux-x86_64")), None);
        assert!(!m.has_default());
        assert_eq!(m.case_count(), 1);
    }
}
