//! Build recipes: what a package's `install()` method does.
//!
//! Spack packages provide an `install(self, spec, prefix)` method that
//! invokes `configure`/`cmake`/`make` (SC'15 Fig. 1). In this
//! reproduction, recipes are declarative: they describe the build-system
//! invocation that the simulated build environment (`spack-buildenv`)
//! executes against the simulated filesystem and compiler wrappers.

/// The build-system invocation a package uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildRecipe {
    /// `configure --prefix=... <args> && make && make install` (Fig. 1).
    Autotools {
        /// Extra arguments for `configure` (e.g. `--with-callpath=...`).
        configure_args: Vec<String>,
    },
    /// `cmake .. <std args> && make && make install` in a build dir (Fig. 4).
    CMake {
        /// Extra `-D` style arguments.
        cmake_args: Vec<String>,
    },
    /// `python setup.py install --prefix=...` for Python extensions (§4.2).
    PythonSetup,
    /// Plain `make && make install` with no configure step.
    Makefile,
    /// A no-op install for meta/bundle packages.
    Bundle,
}

impl BuildRecipe {
    /// Autotools with no extra arguments.
    pub fn autotools() -> BuildRecipe {
        BuildRecipe::Autotools {
            configure_args: Vec::new(),
        }
    }

    /// Autotools with extra configure arguments.
    pub fn autotools_with(args: &[&str]) -> BuildRecipe {
        BuildRecipe::Autotools {
            configure_args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// CMake with no extra arguments.
    pub fn cmake() -> BuildRecipe {
        BuildRecipe::CMake {
            cmake_args: Vec::new(),
        }
    }

    /// CMake with extra arguments.
    pub fn cmake_with(args: &[&str]) -> BuildRecipe {
        BuildRecipe::CMake {
            cmake_args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Does this recipe run a configure-style probe phase?
    pub fn has_configure_phase(&self) -> bool {
        matches!(
            self,
            BuildRecipe::Autotools { .. } | BuildRecipe::CMake { .. }
        )
    }
}

/// Knobs describing how big a package's build is, used to calibrate the
/// simulated builds that regenerate Figs. 10/11. Values are in abstract
/// work units; `spack-buildenv` maps them to simulated compiler
/// invocations and filesystem operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildWorkload {
    /// Number of translation units compiled (each goes through the
    /// compiler wrapper once).
    pub compile_units: u32,
    /// Relative cost of compiling one unit (1 = small C file).
    pub unit_cost: u32,
    /// Number of configure-time probe executions (tiny compiles).
    pub configure_probes: u32,
    /// Number of files written into the prefix at install time.
    pub install_files: u32,
    /// Small filesystem operations per configure probe: shell fork/exec
    /// PATH lookups, libtool script reads, conftest bookkeeping. Autotools
    /// probes touch the filesystem dozens of times each, which is exactly
    /// why NFS hurts configure-heavy builds most (Fig. 11).
    pub ops_per_probe: u32,
    /// Header files stat+read per compiled unit (make dependency checks
    /// plus preprocessor includes).
    pub headers_per_unit: u32,
}

impl Default for BuildWorkload {
    fn default() -> Self {
        BuildWorkload {
            compile_units: 50,
            unit_cost: 2,
            configure_probes: 120,
            install_files: 40,
            ops_per_probe: 80,
            headers_per_unit: 30,
        }
    }
}

impl BuildWorkload {
    /// A workload scaled for quick unit tests.
    pub fn tiny() -> BuildWorkload {
        BuildWorkload {
            compile_units: 3,
            unit_cost: 1,
            configure_probes: 5,
            install_files: 3,
            ops_per_probe: 10,
            headers_per_unit: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_constructors() {
        assert_eq!(
            BuildRecipe::autotools_with(&["--with-callpath=/p"]),
            BuildRecipe::Autotools {
                configure_args: vec!["--with-callpath=/p".to_string()]
            }
        );
        assert!(BuildRecipe::cmake().has_configure_phase());
        assert!(!BuildRecipe::Makefile.has_configure_phase());
        assert!(!BuildRecipe::Bundle.has_configure_phase());
    }
}
