//! URL extrapolation from versions (SC'15 §3.2.3 "Versions").
//!
//! "Spack can extrapolate URLs from versions, using the package's `url`
//! attribute as a model": given the model
//! `.../mpileaks-1.0.tar.gz` and a requested version `2.3`, Spack guesses
//! `.../mpileaks-2.3.tar.gz`. This lets users install bleeding-edge
//! versions the package file does not list yet. The same model is used to
//! scrape listing pages for new releases; [`scan_versions`] implements
//! that scrape over arbitrary text.

use spack_spec::Version;

/// Find the version embedded in a model URL, given the package name.
///
/// Heuristics mirror Spack's: look for `name-<version>` or `name_<version>`
/// followed by an archive suffix, else the last dotted numeric run before
/// the suffix.
pub fn version_in_url(url: &str, package: &str) -> Option<String> {
    let base = url.rsplit('/').next()?;
    let stem = strip_archive_suffix(base);
    for sep in ['-', '_'] {
        let prefix = format!("{package}{sep}");
        if let Some(rest) = stem.strip_prefix(prefix.as_str()) {
            if looks_like_version(rest) {
                return Some(rest.to_string());
            }
        }
    }
    // Fallback: trailing dotted numeric run.
    let idx = stem.rfind(|c: char| !(c.is_ascii_digit() || c == '.'))?;
    let tail = &stem[idx + 1..];
    if looks_like_version(tail) {
        Some(tail.to_string())
    } else {
        None
    }
}

fn strip_archive_suffix(name: &str) -> &str {
    for suffix in [
        ".tar.gz", ".tgz", ".tar.bz2", ".tbz2", ".tar.xz", ".txz", ".zip", ".tar",
    ] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

fn looks_like_version(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '.')
}

/// Substitute a new version into a model URL. Every occurrence of the old
/// version string in the URL is replaced (release directories often repeat
/// it, e.g. `/releases/download/v1.0/mpileaks-1.0.tar.gz`).
pub fn extrapolate(url_model: &str, package: &str, new_version: &Version) -> Option<String> {
    let old = version_in_url(url_model, package)?;
    let new = new_version.to_string();
    if old == new {
        return Some(url_model.to_string());
    }
    Some(url_model.replace(&old, &new))
}

/// Scrape a listing page (any text) for versions of a package, using the
/// archive-name pattern from the model URL. Returns sorted, deduplicated
/// versions. This simulates Spack's webpage scraping for new releases.
pub fn scan_versions(page: &str, package: &str) -> Vec<Version> {
    let mut found = Vec::new();
    for sep in ['-', '_'] {
        let needle = format!("{package}{sep}");
        let mut rest = page;
        while let Some(pos) = rest.find(needle.as_str()) {
            let tail = &rest[pos + needle.len()..];
            let end = tail
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.'))
                .unwrap_or(tail.len());
            let candidate = strip_archive_suffix(&tail[..end]);
            if looks_like_version(candidate) {
                if let Ok(v) = Version::new(candidate) {
                    found.push(v);
                }
            }
            rest = &rest[pos + needle.len()..];
        }
    }
    found.sort();
    found.dedup();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    const MPILEAKS_URL: &str =
        "https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz";

    #[test]
    fn finds_version_in_model_url() {
        assert_eq!(
            version_in_url(MPILEAKS_URL, "mpileaks").as_deref(),
            Some("1.0")
        );
        assert_eq!(
            version_in_url("http://x.org/libelf-0.8.13.tar.gz", "libelf").as_deref(),
            Some("0.8.13")
        );
        assert_eq!(
            version_in_url("http://x.org/libdwarf_20130729.tar.gz", "libdwarf").as_deref(),
            Some("20130729")
        );
    }

    #[test]
    fn extrapolates_new_versions() {
        let v = Version::new("2.3").unwrap();
        assert_eq!(
            extrapolate(MPILEAKS_URL, "mpileaks", &v).unwrap(),
            "https://github.com/hpc/mpileaks/releases/download/v2.3/mpileaks-2.3.tar.gz"
        );
    }

    #[test]
    fn extrapolate_same_version_is_identity() {
        let v = Version::new("1.0").unwrap();
        assert_eq!(
            extrapolate(MPILEAKS_URL, "mpileaks", &v).unwrap(),
            MPILEAKS_URL
        );
    }

    #[test]
    fn extrapolate_unparseable_model_is_none() {
        assert_eq!(
            extrapolate(
                "http://x.org/snapshot.tar.gz",
                "mpileaks",
                &Version::new("2").unwrap()
            ),
            None
        );
    }

    #[test]
    fn scans_listing_pages() {
        let page = r#"
            <a href="mpileaks-1.0.tar.gz">mpileaks-1.0.tar.gz</a>
            <a href="mpileaks-1.1.tar.gz">mpileaks-1.1.tar.gz</a>
            <a href="mpileaks-2.0rc1.tar.gz">mpileaks-2.0rc1.tar.gz</a>
            <a href="other-9.9.tar.gz">other-9.9.tar.gz</a>
        "#;
        let versions = scan_versions(page, "mpileaks");
        let strs: Vec<String> = versions.iter().map(|v| v.to_string()).collect();
        assert_eq!(strs, vec!["1.0", "1.1", "2.0rc1"]);
    }

    #[test]
    fn scan_ignores_non_versions() {
        assert!(scan_versions("mpileaks-latest.tar.gz", "mpileaks").is_empty());
    }
}
