//! Property-based tests for the version-range algebra that the audit
//! passes lean on: emptiness of `a ∩ b` must agree with concrete
//! witnesses, intersection must be the pointwise AND of containment, and
//! subset relations must imply non-empty intersections.

use proptest::prelude::*;
use spack_spec::{Version, VersionList};

prop_compose! {
    /// A plausible numeric version: 1–3 dotted components, each 0..20.
    fn version()(parts in proptest::collection::vec(0u8..20, 1..4)) -> Version {
        let text = parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(".");
        Version::new(&text).unwrap()
    }
}

prop_compose! {
    /// One range segment as `@`-clause text: exact, closed, or half-open.
    fn segment()(kind in 0usize..4, a in version(), b in version()) -> String {
        let (lo, hi) = if a.version_cmp(&b).is_le() { (a, b) } else { (b, a) };
        match kind {
            0 => format!("{lo}"),
            1 => format!("{lo}:{hi}"),
            2 => format!(":{hi}"),
            _ => format!("{lo}:"),
        }
    }
}

prop_compose! {
    /// A version list of one or two segments (unions exercise the
    /// multi-range paths of intersect/subset).
    fn version_list()(first in segment(), second in proptest::option::of(segment())) -> VersionList {
        let text = match second {
            Some(s) => format!("{first},{s}"),
            None => first,
        };
        VersionList::parse(&text).unwrap()
    }
}

/// A member version of each range in the list: the lower bound when
/// present, else the upper (both are inclusive, so each is contained).
fn endpoints(list: &VersionList) -> Vec<Version> {
    list.ranges()
        .iter()
        .filter_map(|r| r.lo().or(r.hi()).cloned())
        .collect()
}

proptest! {
    /// The tentpole property: `a ∩ b` is empty exactly when no witness
    /// version is admitted by both. Non-empty intersections must produce
    /// their own witnesses (the range endpoints), and empty ones must be
    /// unwitnessed by every endpoint of `a` and `b` and every probe.
    #[test]
    fn intersection_emptiness_agrees_with_witnesses(
        a in version_list(),
        b in version_list(),
        probes in proptest::collection::vec(version(), 0..24),
    ) {
        match a.intersection(&b) {
            Some(i) => {
                for w in endpoints(&i) {
                    prop_assert!(i.contains(&w), "{i} lost its own endpoint {w}");
                    prop_assert!(a.contains(&w), "witness {w} of {i} not in {a}");
                    prop_assert!(b.contains(&w), "witness {w} of {i} not in {b}");
                }
            }
            None => {
                let mut candidates = probes.clone();
                candidates.extend(endpoints(&a));
                candidates.extend(endpoints(&b));
                for v in &candidates {
                    prop_assert!(
                        !(a.contains(v) && b.contains(v)),
                        "{a} ∩ {b} reported empty, but {v} is in both"
                    );
                }
            }
        }
    }

    /// Intersection is the pointwise AND of containment: a version is in
    /// `a ∩ b` exactly when it is in `a` and in `b`.
    #[test]
    fn intersection_is_pointwise_and(
        a in version_list(),
        b in version_list(),
        probes in proptest::collection::vec(version(), 1..24),
    ) {
        let i = a.intersection(&b);
        let mut candidates = probes.clone();
        candidates.extend(endpoints(&a));
        candidates.extend(endpoints(&b));
        for v in &candidates {
            let both = a.contains(v) && b.contains(v);
            let in_i = i.as_ref().is_some_and(|i| i.contains(v));
            prop_assert_eq!(
                both, in_i,
                "version {} membership disagrees for {} ∩ {}", v, a, b
            );
        }
    }

    /// Intersection is symmetric in emptiness and membership.
    #[test]
    fn intersection_is_symmetric(
        a in version_list(),
        b in version_list(),
        probes in proptest::collection::vec(version(), 1..16),
    ) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(ab), Some(ba)) = (ab, ba) {
            for v in &probes {
                prop_assert_eq!(ab.contains(v), ba.contains(v));
            }
        }
    }

    /// A subset relation (`satisfies` in spec terms) guarantees the
    /// intersection exists, and that it admits everything the subset does.
    #[test]
    fn subset_implies_nonempty_intersection(
        a in version_list(),
        b in version_list(),
        probes in proptest::collection::vec(version(), 1..16),
    ) {
        prop_assume!(a.is_subset_of(&b) || b.is_subset_of(&a));
        let i = a.intersection(&b);
        prop_assert!(i.is_some(), "{a} and {b} are ordered by subset but disjoint");
        let i = i.unwrap();
        let narrower = if a.is_subset_of(&b) { &a } else { &b };
        for v in probes.iter().chain(endpoints(narrower).iter()) {
            if narrower.contains(v) {
                prop_assert!(
                    i.contains(v),
                    "{v} in subset {narrower} but lost from {narrower} ∩ other"
                );
            }
        }
    }

    /// `is_subset_of` agrees with pointwise containment on witnesses: a
    /// version admitted by a subset is admitted by the superset.
    #[test]
    fn subset_members_are_superset_members(
        a in version_list(),
        b in version_list(),
        probes in proptest::collection::vec(version(), 1..24),
    ) {
        prop_assume!(a.is_subset_of(&b));
        for v in probes.iter().chain(endpoints(&a).iter()) {
            if a.contains(v) {
                prop_assert!(b.contains(v), "{v} in {a} ⊆ {b} but not in {b}");
            }
        }
    }

    /// Intersecting with itself or with the unconstrained list is identity
    /// on membership.
    #[test]
    fn intersection_identities(
        a in version_list(),
        probes in proptest::collection::vec(version(), 1..16),
    ) {
        let self_i = a.intersection(&a).expect("a ∩ a is never empty");
        let any_i = a.intersection(&VersionList::any()).expect("a ∩ any");
        for v in probes.iter().chain(endpoints(&a).iter()) {
            prop_assert_eq!(self_i.contains(v), a.contains(v));
            prop_assert_eq!(any_i.contains(v), a.contains(v));
        }
    }
}
