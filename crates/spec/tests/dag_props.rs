//! Property-based tests on concrete-DAG invariants: random DAGs always
//! yield valid bottom-up topological orders, sub-DAG extraction preserves
//! reachability and Merkle hashes, and serialization is lossless.

use proptest::prelude::*;
use spack_spec::{dag::node, serial, ConcreteDag, DagBuilder, DagHashes};

/// Generate a random DAG: `n` nodes, edges only from lower to higher
/// indices (guaranteeing acyclicity), node 0 reaching everything through
/// a spanning chain.
fn dag_strategy() -> impl Strategy<Value = ConcreteDag> {
    (2usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        edges.prop_map(move |raw_edges| {
            let mut b = DagBuilder::new();
            for i in 0..n {
                b.add_node(node(
                    &format!("pkg{i}"),
                    &format!("1.{i}"),
                    ("gcc", "4.9.3"),
                    "linux-x86_64",
                ))
                .unwrap();
            }
            // Spanning chain from the root.
            for i in 1..n {
                b.add_edge(i - 1, i);
            }
            // Extra random forward edges.
            for (a, z) in raw_edges {
                let (lo, hi) = (a.min(z), a.max(z));
                if lo != hi {
                    b.add_edge(lo, hi);
                }
            }
            b.build(0).unwrap()
        })
    })
}

proptest! {
    #[test]
    fn topo_order_is_valid(dag in dag_strategy()) {
        let order = dag.topo_order();
        prop_assert_eq!(order.len(), dag.len());
        let mut position = vec![usize::MAX; dag.len()];
        for (i, &id) in order.iter().enumerate() {
            position[id] = i;
        }
        for (id, n) in dag.nodes().iter().enumerate() {
            for &d in &n.deps {
                prop_assert!(position[d] < position[id], "dep after dependent");
            }
        }
        prop_assert_eq!(order.last().copied(), Some(dag.root()));
    }

    #[test]
    fn subdag_preserves_node_hashes(dag in dag_strategy()) {
        let hashes = DagHashes::compute(&dag);
        for id in 0..dag.len() {
            let sub = dag.subdag(id);
            let sub_hashes = DagHashes::compute(&sub);
            // The root of the extracted sub-DAG hashes identically to the
            // node inside the parent DAG — the invariant behind Fig. 9
            // prefix sharing.
            let sub_hash = sub_hashes.dag_hash().to_string();
            prop_assert_eq!(sub_hash, hashes.node_hash(id));
        }
    }

    #[test]
    fn specfile_roundtrip_preserves_identity(dag in dag_strategy()) {
        let text = serial::to_specfile(&dag);
        let back = serial::from_specfile(&text).unwrap();
        prop_assert_eq!(back.len(), dag.len());
        let back_hash = DagHashes::compute(&back).dag_hash().to_string();
        let orig_hash = DagHashes::compute(&dag).dag_hash().to_string();
        prop_assert_eq!(back_hash, orig_hash);
        // Canonical: a second serialization is byte-identical.
        prop_assert_eq!(serial::to_specfile(&back), text);
    }

    #[test]
    fn as_spec_satisfies_every_node_constraint(dag in dag_strategy()) {
        let spec = dag.as_spec();
        for n in dag.nodes() {
            let constraint = spack_spec::Spec::parse(
                &format!("{}@{}", n.name, n.version)
            ).unwrap();
            if n.name == dag.root_node().name {
                prop_assert!(spec.node_satisfies(&constraint));
            } else {
                let text = format!("{} ^{}@{}", dag.root_node().name, n.name, n.version);
                let req = spack_spec::Spec::parse(&text).unwrap();
                let ok = dag.satisfies(&req);
                prop_assert!(ok, "dag must satisfy {}", text);
            }
        }
    }

    #[test]
    fn dag_hash_is_injective_on_versions(
        dag in dag_strategy(),
        bump_idx in 0usize..12,
    ) {
        // Changing any single node's version must change the root hash.
        let idx = bump_idx % dag.len();
        let mut nodes = dag.nodes().to_vec();
        nodes[idx].version = nodes[idx].version.bumped();
        let changed = ConcreteDag::new(nodes, dag.root()).unwrap();
        prop_assert_ne!(
            DagHashes::compute(&dag).dag_hash().to_string(),
            DagHashes::compute(&changed).dag_hash().to_string()
        );
    }
}
