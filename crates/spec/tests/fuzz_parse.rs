//! Fuzz-style robustness properties: the lexer and parser must never
//! panic, whatever bytes arrive; errors are always structured
//! `SpecError`s. (The CLI feeds raw user input straight into these.)

use proptest::prelude::*;
use spack_spec::{lex, parse_spec, parse_specs, Spec, Version, VersionList};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(input in "\\PC*") {
        let _ = lex::lex(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(input in "\\PC*") {
        let _ = parse_spec(&input);
        let _ = parse_specs(&input);
    }

    #[test]
    fn parser_never_panics_on_sigil_soup(
        input in "[a-z0-9@%+~^=:., -]{0,40}"
    ) {
        // Dense in the grammar's own alphabet: much likelier to reach
        // deep parser states than fully random text.
        let _ = parse_spec(&input);
    }

    #[test]
    fn version_parser_never_panics(input in "\\PC{0,30}") {
        let _ = Version::new(&input);
        let _ = VersionList::parse(&input);
    }

    #[test]
    fn successful_parses_always_reformat_parseably(
        input in "[a-z][a-z0-9]{0,6}(@[0-9.:]{1,8})?(%[a-z]{2,4})?([+~][a-z]{2,5})?(=[a-z]{2,6})?"
    ) {
        if let Ok(spec) = Spec::parse(&input) {
            let text = spec.to_string();
            prop_assert!(Spec::parse(&text).is_ok(), "canonical `{}` must re-parse", text);
        }
    }
}
