//! # spack-spec
//!
//! The spec layer of `spack-rs`, a Rust reproduction of the Spack package
//! manager (Gamblin et al., *The Spack Package Manager: Bringing Order to
//! HPC Software Chaos*, SC '15).
//!
//! This crate implements:
//!
//! * the **version model** — points, ranges (`@2.5:4.4`), and lists, with
//!   Spack's prefix-inclusive upper bounds ([`version`]);
//! * the **recursive spec syntax** of Fig. 3 — `name @versions %compiler
//!   +variant ~variant =arch ^dep...` — with a lexer, parser, and canonical
//!   formatter ([`parse`], [`format`]);
//! * **abstract specs** ([`spec::Spec`]) with the constraint algebra the
//!   concretizer relies on: `satisfies`, `intersects`, and `constrain`;
//! * **concrete DAGs** ([`dag::ConcreteDag`]) — validated, acyclic,
//!   one-configuration-per-package graphs with deterministic traversal;
//! * **Merkle spec hashing** ([`hash`]) for unique install prefixes and
//!   sub-DAG sharing (Fig. 9), over a from-scratch SHA-256 ([`sha`]);
//! * **provenance serialization** ([`serial`]) of concrete specs.
//!
//! ## Example
//!
//! ```
//! use spack_spec::Spec;
//!
//! let spec = Spec::parse("mpileaks@1.2:1.4 %gcc@4.7 +debug ^callpath@1.1").unwrap();
//! assert_eq!(spec.name.as_deref(), Some("mpileaks"));
//! assert!(spec.dependencies.contains_key("callpath"));
//!
//! // Constraint algebra: strict satisfaction and merging.
//! let concrete = Spec::parse("mpileaks@1.3%gcc@4.7.3+debug=bgq ^callpath@1.1").unwrap();
//! assert!(concrete.node_satisfies(&Spec::parse("mpileaks@1.2:").unwrap()));
//! ```

#![warn(missing_docs)]

pub mod dag;
pub mod error;
pub mod format;
pub mod hash;
pub mod lex;
pub mod parse;
pub mod serial;
pub mod sha;
pub mod spec;
pub mod version;

pub use dag::{ConcreteCompiler, ConcreteDag, ConcreteNode, DagBuilder, NodeId};
pub use error::SpecError;
pub use hash::{dag_hash, DagHashes};
pub use parse::{parse_spec, parse_specs};
pub use spec::{CompilerSpec, Spec};
pub use version::{Version, VersionList, VersionRange};
