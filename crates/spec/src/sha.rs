//! From-scratch SHA-256 and MD5.
//!
//! Spack identifies installs by a cryptographic hash of the concrete spec
//! (SC'15 §3.4.2, following Nix) and verifies downloads with MD5 checksums
//! (Fig. 1). No cryptography crate is in this project's allowed dependency
//! set, so both digests are implemented here directly from their
//! specifications (FIPS 180-4 and RFC 1321) and checked against the
//! standard test vectors.
//!
//! These are used for content addressing, not for security decisions.

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes directly into the buffer tail.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 as lowercase hex.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    to_hex(&h.finalize())
}

/// Streaming MD5 (RFC 1321). Used only for simulated download checksums.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const MD5_S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const MD5_K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// A fresh hasher.
    pub fn new() -> Md5 {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(MD5_K[i])
                    .wrapping_add(m[g])
                    .rotate_left(MD5_S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 as lowercase hex.
pub fn md5_hex(data: &[u8]) -> String {
    let mut h = Md5::new();
    h.update(data);
    to_hex(&h.finalize())
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn sha256_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_long_input_streams() {
        // One million 'a's, streamed in odd-sized chunks.
        let mut h = Sha256::new();
        let chunk = [b'a'; 997];
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            h.update(&chunk[..n]);
            remaining -= n;
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    // RFC 1321 appendix vectors.
    #[test]
    fn md5_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            md5_hex(b"message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            md5_hex(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(to_hex(&h.finalize()), sha256_hex(&data));
        let mut m = Md5::new();
        for chunk in data.chunks(13) {
            m.update(chunk);
        }
        assert_eq!(to_hex(&m.finalize()), md5_hex(&data));
    }
}
