//! Recursive-descent parser for the spec grammar (SC'15 Fig. 3).
//!
//! ```text
//! spec          ::= id [ constraints ]
//! constraints   ::= { '@' version-list | '+' variant | '-' variant
//!                   | '~' variant | '%' compiler | '=' architecture }
//!                   [ dep-list ]
//! dep-list      ::= { '^' spec }
//! version-list  ::= version [ { ',' version } ]
//! version       ::= id | id ':' | ':' id | id ':' id
//! compiler      ::= id [ version-list ]
//! variant       ::= id
//! architecture  ::= id
//! id            ::= [A-Za-z0-9_][A-Za-z0-9_.-]*
//! ```
//!
//! Extensions beyond the figure, both present in Spack itself:
//! * anonymous specs — constraint expressions with no leading package name
//!   (`%gcc@4.7.3`, `+debug=bgq`) — used as `when=` predicates;
//! * multiple whitespace-separated specs in one string via [`parse_specs`].
//!
//! Dependency constraints (`^`) attach to the root spec's flat dependency
//! map: because a DAG holds at most one configuration of each package
//! (§3.2.1), `^` constraints are addressed by name and their nesting is
//! immaterial, so they "can appear in an arbitrary order".

use std::collections::BTreeMap;

use crate::error::SpecError;
use crate::lex::{lex, Token, TokenKind};
use crate::spec::{CompilerSpec, Spec};
use crate::version::{Version, VersionList, VersionRange};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_token(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_id(&mut self, what: &str) -> Result<String, SpecError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Id(s),
                ..
            }) => Ok(s.clone()),
            Some(t) => Err(SpecError::parse(format!(
                "expected {what} at offset {}, found `{:?}`",
                t.offset, t.kind
            ))),
            None => Err(SpecError::parse(format!(
                "expected {what}, found end of input"
            ))),
        }
    }

    /// Parse one spec: optional name, constraints, and `^` dependencies.
    fn parse_spec(&mut self) -> Result<Spec, SpecError> {
        let mut spec = Spec::anonymous();
        if let Some(TokenKind::Id(_)) = self.peek() {
            let name = self.expect_id("package name")?;
            spec.name = Some(name);
        }
        self.parse_constraints(&mut spec)?;
        // Dependency list: each `^` starts a (name + constraints) node that
        // lands in the root's flat, by-name dependency map.
        while let Some(TokenKind::Caret) = self.peek() {
            self.next();
            let mut dep = Spec::anonymous();
            dep.name = Some(self.expect_id("dependency name after `^`")?);
            self.parse_constraints(&mut dep)?;
            let name = dep.name.clone().unwrap();
            match spec.dependencies.get_mut(&name) {
                Some(existing) => {
                    existing.constrain(&dep)?;
                }
                None => {
                    spec.dependencies.insert(name, dep);
                }
            }
        }
        Ok(spec)
    }

    /// Parse the `@ + - ~ % =` constraint clauses onto `spec`.
    fn parse_constraints(&mut self, spec: &mut Spec) -> Result<(), SpecError> {
        loop {
            match self.peek() {
                Some(TokenKind::At) => {
                    self.next();
                    let list = self.parse_version_list()?;
                    spec.versions.intersect_with(&list)?;
                }
                Some(TokenKind::Plus) => {
                    self.next();
                    let var = self.expect_id("variant name after `+`")?;
                    set_variant(&mut spec.variants, var, true, spec.name.as_deref())?;
                }
                Some(TokenKind::Off) => {
                    self.next();
                    let var = self.expect_id("variant name after `-`/`~`")?;
                    set_variant(&mut spec.variants, var, false, spec.name.as_deref())?;
                }
                Some(TokenKind::Percent) => {
                    self.next();
                    let name = self.expect_id("compiler name after `%`")?;
                    let versions = if let Some(TokenKind::At) = self.peek() {
                        self.next();
                        self.parse_version_list()?
                    } else {
                        VersionList::any()
                    };
                    let c = CompilerSpec { name, versions };
                    match &mut spec.compiler {
                        Some(existing) => {
                            existing.constrain(&c)?;
                        }
                        None => spec.compiler = Some(c),
                    }
                }
                Some(TokenKind::Eq) => {
                    self.next();
                    let arch = self.expect_id("architecture after `=`")?;
                    if let Some(prev) = &spec.architecture {
                        if *prev != arch {
                            return Err(SpecError::conflict(format!(
                                "architecture `={prev}` conflicts with `={arch}`"
                            )));
                        }
                    }
                    spec.architecture = Some(arch);
                }
                _ => return Ok(()),
            }
        }
    }

    /// Parse `version [{ ',' version }]` where each version is a point or
    /// range. A `:`-terminated open range only swallows a following
    /// identifier when it is *adjacent* (no whitespace), so that
    /// `@1.2: foo` leaves `foo` for the caller.
    fn parse_version_list(&mut self) -> Result<VersionList, SpecError> {
        let mut ranges = Vec::new();
        loop {
            ranges.push(self.parse_version_range()?);
            if let Some(TokenKind::Comma) = self.peek() {
                self.next();
            } else {
                break;
            }
        }
        Ok(VersionList::from_ranges(ranges))
    }

    fn parse_version_range(&mut self) -> Result<VersionRange, SpecError> {
        let lo = match self.peek() {
            Some(TokenKind::Id(_)) => {
                let id = self.expect_id("version")?;
                Some(Version::new(&id)?)
            }
            _ => None,
        };
        let has_colon = matches!(self.peek(), Some(TokenKind::Colon));
        if has_colon {
            self.next();
            let hi = match self.peek_token() {
                Some(Token {
                    kind: TokenKind::Id(_),
                    space_before: false,
                    ..
                }) => {
                    let id = self.expect_id("version")?;
                    Some(Version::new(&id)?)
                }
                _ => None,
            };
            VersionRange::new(lo, hi)
        } else {
            match lo {
                Some(v) => Ok(VersionRange::point(v)),
                None => Err(SpecError::parse("expected version after `@`".to_string())),
            }
        }
    }
}

fn set_variant(
    variants: &mut BTreeMap<String, bool>,
    var: String,
    value: bool,
    pkg: Option<&str>,
) -> Result<(), SpecError> {
    match variants.get(&var) {
        Some(prev) if *prev != value => Err(SpecError::conflict(format!(
            "variant `{var}` both enabled and disabled on `{}`",
            pkg.unwrap_or("<anonymous>")
        ))),
        _ => {
            variants.insert(var, value);
            Ok(())
        }
    }
}

/// Parse a single spec expression. Trailing tokens are an error.
pub fn parse_spec(text: &str) -> Result<Spec, SpecError> {
    let tokens = lex(text)?;
    if tokens.is_empty() {
        return Err(SpecError::parse("empty spec"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let spec = p.parse_spec()?;
    if let Some(t) = p.peek_token() {
        return Err(SpecError::parse(format!(
            "trailing input at offset {} in `{text}`",
            t.offset
        )));
    }
    Ok(spec)
}

/// Parse several whitespace-separated specs, as on a command line:
/// `spack install mpileaks callpath@2:`.
pub fn parse_specs(text: &str) -> Result<Vec<Spec>, SpecError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut specs = Vec::new();
    while p.peek().is_some() {
        let before = p.pos;
        let spec = p.parse_spec()?;
        if p.pos == before {
            // A token no spec can start with (e.g. a stray `,` or `:`):
            // without this check the loop would never advance.
            let t = p.peek_token().unwrap();
            return Err(SpecError::parse(format!(
                "unexpected `{:?}` at offset {} in `{text}`",
                t.kind, t.offset
            )));
        }
        specs.push(spec);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Spec {
        parse_spec(text).unwrap()
    }

    // ------------- Table 2 of the paper, row by row -------------

    #[test]
    fn table2_row1_bare_package() {
        let spec = s("mpileaks");
        assert_eq!(spec.name.as_deref(), Some("mpileaks"));
        assert!(spec.root_is_unconstrained());
        assert!(spec.dependencies.is_empty());
    }

    #[test]
    fn table2_row2_version() {
        let spec = s("mpileaks@1.1.2");
        assert_eq!(spec.versions.to_string(), "1.1.2");
    }

    #[test]
    fn table2_row3_compiler_default_version() {
        let spec = s("mpileaks@1.1.2 %gcc");
        let c = spec.compiler.unwrap();
        assert_eq!(c.name, "gcc");
        assert!(c.versions.is_any());
    }

    #[test]
    fn table2_row4_compiler_version_and_variant() {
        let spec = s("mpileaks@1.1.2 %intel@14.1 +debug");
        let c = spec.compiler.as_ref().unwrap();
        assert_eq!(c.name, "intel");
        assert_eq!(c.versions.to_string(), "14.1");
        assert_eq!(spec.variants.get("debug"), Some(&true));
    }

    #[test]
    fn table2_row5_platform() {
        let spec = s("mpileaks@1.1.2 =bgq");
        assert_eq!(spec.architecture.as_deref(), Some("bgq"));
    }

    #[test]
    fn table2_row6_mpi_provider_dependency() {
        let spec = s("mpileaks@1.1.2 ^mvapich2@1.9");
        assert_eq!(spec.dependencies["mvapich2"].versions.to_string(), "1.9");
    }

    #[test]
    fn table2_row7_full_expression() {
        let spec = s("mpileaks @1.2:1.4 %gcc@4.7.5 -debug =bgq \
                      ^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7");
        assert_eq!(spec.versions.to_string(), "1.2:1.4");
        assert_eq!(spec.compiler.as_ref().unwrap().to_string(), "gcc@4.7.5");
        assert_eq!(spec.variants.get("debug"), Some(&false));
        assert_eq!(spec.architecture.as_deref(), Some("bgq"));
        let callpath = &spec.dependencies["callpath"];
        assert_eq!(callpath.versions.to_string(), "1.1");
        assert_eq!(callpath.compiler.as_ref().unwrap().to_string(), "gcc@4.7.2");
        assert_eq!(spec.dependencies["openmpi"].versions.to_string(), "1.4.7");
    }

    // ------------- grammar corners -------------

    #[test]
    fn anonymous_when_predicates() {
        let spec = s("%gcc@:4");
        assert!(spec.name.is_none());
        assert_eq!(spec.compiler.as_ref().unwrap().versions.to_string(), ":4");
        let spec = s("+mpi");
        assert_eq!(spec.variants.get("mpi"), Some(&true));
        let spec = s("=bgq%xl");
        assert_eq!(spec.architecture.as_deref(), Some("bgq"));
        assert_eq!(spec.compiler.as_ref().unwrap().name, "xl");
        let spec = s("@2.4");
        assert_eq!(spec.versions.to_string(), "2.4");
    }

    #[test]
    fn open_range_does_not_swallow_spaced_word() {
        // `@1.2:` followed by a space-separated identifier: that identifier
        // is a separate spec, not the range's upper bound.
        let specs = parse_specs("mpileaks@1.2: callpath").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].versions.to_string(), "1.2:");
        assert_eq!(specs[1].name.as_deref(), Some("callpath"));
        // Adjacent: it *is* the upper bound.
        let one = s("mpileaks@1.2:1.4");
        assert_eq!(one.versions.to_string(), "1.2:1.4");
    }

    #[test]
    fn version_lists() {
        let spec = s("boost@1.0,1.5:1.9,2:");
        assert_eq!(spec.versions.ranges().len(), 3);
    }

    #[test]
    fn tilde_and_dash_equivalent() {
        assert_eq!(s("mpileaks~debug"), s("mpileaks -debug"));
    }

    #[test]
    fn repeated_dependency_constraints_merge() {
        let spec = s("mpileaks ^callpath@1.0: ^callpath%gcc");
        let cp = &spec.dependencies["callpath"];
        assert_eq!(cp.versions.to_string(), "1.0:");
        assert_eq!(cp.compiler.as_ref().unwrap().name, "gcc");
    }

    #[test]
    fn conflicting_inline_constraints_rejected() {
        assert!(parse_spec("mpileaks+debug~debug").is_err());
        assert!(parse_spec("mpileaks=bgq=linux-x86_64").is_err());
        assert!(parse_spec("mpileaks@1.0@2.0").is_err());
        assert!(parse_spec("mpileaks%gcc%intel").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("^").is_err());
        assert!(parse_spec("mpileaks@").is_err());
        assert!(parse_spec("mpileaks+").is_err());
        assert!(parse_spec("mpileaks%").is_err());
        assert!(parse_spec("mpileaks^").is_err());
        assert!(parse_spec("mpileaks=").is_err());
    }

    #[test]
    fn dependency_with_variants_and_arch() {
        let spec = s("mpileaks^callpath@1.0+debug=bgq");
        let cp = &spec.dependencies["callpath"];
        assert_eq!(cp.variants.get("debug"), Some(&true));
        assert_eq!(cp.architecture.as_deref(), Some("bgq"));
    }

    #[test]
    fn multiple_specs() {
        let specs = parse_specs("mpileaks callpath@2: dyninst%gcc").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[2].compiler.as_ref().unwrap().name, "gcc");
    }
}

#[cfg(test)]
mod parse_specs_regression {
    use super::*;

    /// Found by fuzzing: tokens no spec can start with must error, not
    /// loop forever.
    #[test]
    fn stray_separators_error_instead_of_looping() {
        for text in [",", ":", ",,,", "a ,", "a : b ,"] {
            assert!(parse_specs(text).is_err(), "`{text}` must be rejected");
        }
        // Leading sigils that *do* start (anonymous) specs still work.
        assert_eq!(parse_specs("+debug %gcc").unwrap().len(), 1);
    }
}
