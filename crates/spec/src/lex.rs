//! Tokenizer for the spec grammar (SC'15 Fig. 3).
//!
//! Identifiers follow `[A-Za-z0-9_][A-Za-z0-9_.-]*`: a `-` *inside* an
//! identifier continues it (`linux-ppc64`), while a `-` at a token boundary
//! is the variant-disable sigil (`mpileaks -debug`). Tokens record whether
//! whitespace preceded them so the parser can tell `@1.2:1.4` (range with
//! an upper bound) from `@1.2: other` (open range followed by another
//! word).

use crate::error::SpecError;

/// Token kinds of the spec language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or version text.
    Id(String),
    /// `@` — version constraint follows.
    At,
    /// `%` — compiler constraint follows.
    Percent,
    /// `+` — enable variant.
    Plus,
    /// `~` or boundary `-` — disable variant.
    Off,
    /// `=` — architecture follows.
    Eq,
    /// `^` — dependency spec follows.
    Caret,
    /// `:` — version range separator.
    Colon,
    /// `,` — version list separator.
    Comma,
}

/// A token plus whether whitespace separated it from the previous token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// True when at least one whitespace character preceded this token.
    pub space_before: bool,
    /// Byte offset in the source, for error messages.
    pub offset: usize,
}

fn is_id_start(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn is_id_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'
}

/// Tokenize a spec string.
pub fn lex(input: &str) -> Result<Vec<Token>, SpecError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    let mut space_before = false;
    while let Some(&(offset, c)) = chars.peek() {
        if c.is_whitespace() {
            space_before = true;
            chars.next();
            continue;
        }
        let kind = match c {
            '@' => {
                chars.next();
                TokenKind::At
            }
            '%' => {
                chars.next();
                TokenKind::Percent
            }
            '+' => {
                chars.next();
                TokenKind::Plus
            }
            '~' | '-' => {
                chars.next();
                TokenKind::Off
            }
            '=' => {
                chars.next();
                TokenKind::Eq
            }
            '^' => {
                chars.next();
                TokenKind::Caret
            }
            ':' => {
                chars.next();
                TokenKind::Colon
            }
            ',' => {
                chars.next();
                TokenKind::Comma
            }
            c if is_id_start(c) => {
                let mut id = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_id_continue(c) {
                        id.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                TokenKind::Id(id)
            }
            other => {
                return Err(SpecError::parse(format!(
                    "unexpected character `{other}` at offset {offset} in `{input}`"
                )));
            }
        };
        tokens.push(Token {
            kind,
            space_before,
            offset,
        });
        space_before = false;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_spec() {
        use TokenKind::*;
        assert_eq!(
            kinds("mpileaks@1.2"),
            vec![Id("mpileaks".into()), At, Id("1.2".into())]
        );
    }

    #[test]
    fn dash_inside_id_vs_variant_off() {
        use TokenKind::*;
        // `linux-ppc64` is one identifier...
        assert_eq!(kinds("=linux-ppc64"), vec![Eq, Id("linux-ppc64".into())]);
        // ...but ` -debug` is a variant-disable.
        assert_eq!(
            kinds("mpileaks -debug"),
            vec![Id("mpileaks".into()), Off, Id("debug".into())]
        );
    }

    #[test]
    fn whitespace_flag() {
        let toks = lex("a ^b^c").unwrap();
        assert!(!toks[0].space_before);
        assert!(toks[1].space_before); // ^ after space
        assert!(!toks[2].space_before); // b directly after ^
        assert!(!toks[3].space_before); // second ^ directly after b
    }

    #[test]
    fn full_table2_row7_lexes() {
        let toks = lex(
            "mpileaks @1.2:1.4 %gcc@4.7.5 -debug =bgq ^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7",
        )
        .unwrap();
        assert_eq!(toks.len(), 25);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("mpileaks!").is_err());
        assert!(lex("a#b").is_err());
    }

    #[test]
    fn version_range_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("@2.3:2.5.6"),
            vec![At, Id("2.3".into()), Colon, Id("2.5.6".into())]
        );
        assert_eq!(kinds("@:4"), vec![At, Colon, Id("4".into())]);
        assert_eq!(
            kinds("@1.0,1.5:"),
            vec![At, Id("1.0".into()), Comma, Id("1.5".into()), Colon]
        );
    }
}
