//! Content hashing of concrete specs (SC'15 §3.4.2).
//!
//! Spack identifies each unique configuration with a hash of the concrete
//! spec, used as the last component of the install prefix. We hash
//! Merkle-style: a node's hash covers its own parameters plus the hashes of
//! its dependencies' sub-DAGs, so *identical sub-DAGs hash identically* —
//! which is exactly what enables the sub-DAG sharing of Fig. 9 (two
//! mpileaks builds differing only in MPI share one dyninst install).

use std::collections::BTreeMap;

use crate::dag::{ConcreteDag, NodeId};
use crate::sha::{to_hex, Sha256};

/// Number of hex characters used in install paths. The paper's example
/// prefix `mpileaks-1.0-db465029` uses a short hash; we keep 8 for display
/// and the full digest for identity.
pub const SHORT_HASH_LEN: usize = 8;

/// Hashes for every node of a DAG, computed in one bottom-up pass.
#[derive(Debug, Clone)]
pub struct DagHashes {
    node_hashes: Vec<String>,
    root: NodeId,
}

impl DagHashes {
    /// Compute Merkle hashes for all nodes of `dag`.
    pub fn compute(dag: &ConcreteDag) -> DagHashes {
        let mut node_hashes: Vec<Option<String>> = vec![None; dag.len()];
        for id in dag.topo_order() {
            let n = dag.node(id);
            let mut h = Sha256::new();
            h.update(n.format_node().as_bytes());
            h.update(b"\n");
            h.update(n.namespace.as_bytes());
            h.update(b"\n");
            // Dependency hashes, ordered by dependency name for determinism.
            let mut dep_hashes: BTreeMap<&str, &str> = BTreeMap::new();
            for &d in &n.deps {
                dep_hashes.insert(
                    &dag.node(d).name,
                    node_hashes[d].as_deref().expect("topo order"),
                );
            }
            for (name, hash) in dep_hashes {
                h.update(name.as_bytes());
                h.update(b"=");
                h.update(hash.as_bytes());
                h.update(b"\n");
            }
            node_hashes[id] = Some(to_hex(&h.finalize()));
        }
        DagHashes {
            node_hashes: node_hashes.into_iter().map(Option::unwrap).collect(),
            root: dag.root(),
        }
    }

    /// Full hash of a node's sub-DAG.
    pub fn node_hash(&self, id: NodeId) -> &str {
        &self.node_hashes[id]
    }

    /// Short display form of a node's hash.
    pub fn short(&self, id: NodeId) -> &str {
        &self.node_hashes[id][..SHORT_HASH_LEN]
    }

    /// Full hash of the whole DAG (the root's Merkle hash).
    pub fn dag_hash(&self) -> &str {
        &self.node_hashes[self.root]
    }
}

/// One-shot hash of a DAG's root.
pub fn dag_hash(dag: &ConcreteDag) -> String {
    DagHashes::compute(dag).dag_hash().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{node, DagBuilder};

    fn mpileaks_with(mpi: &str) -> ConcreteDag {
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("mpileaks", "1.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let m = b
            .add_node(node(mpi, "3.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let cp = b
            .add_node(node("callpath", "1.0.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let dy = b
            .add_node(node("dyninst", "8.1.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let ld = b
            .add_node(node(
                "libdwarf",
                "20130729",
                ("gcc", "4.9.2"),
                "linux-x86_64",
            ))
            .unwrap();
        let le = b
            .add_node(node("libelf", "0.8.11", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, m);
        b.add_edge(root, cp);
        b.add_edge(cp, m);
        b.add_edge(cp, dy);
        b.add_edge(dy, ld);
        b.add_edge(dy, le);
        b.add_edge(ld, le);
        b.build(root).unwrap()
    }

    #[test]
    fn hash_is_deterministic() {
        let a = dag_hash(&mpileaks_with("mpich"));
        let b = dag_hash(&mpileaks_with("mpich"));
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn different_mpi_changes_root_hash() {
        assert_ne!(
            dag_hash(&mpileaks_with("mpich")),
            dag_hash(&mpileaks_with("openmpi"))
        );
    }

    #[test]
    fn shared_subdag_hashes_equal_across_builds() {
        // Fig. 9: the dyninst sub-DAG is identical under mpich and openmpi
        // builds of mpileaks, so its hash — and hence its install prefix —
        // is shared.
        let with_mpich = mpileaks_with("mpich");
        let with_openmpi = mpileaks_with("openmpi");
        let ha = DagHashes::compute(&with_mpich);
        let hb = DagHashes::compute(&with_openmpi);
        let da = with_mpich.by_name("dyninst").unwrap();
        let db = with_openmpi.by_name("dyninst").unwrap();
        assert_eq!(ha.node_hash(da), hb.node_hash(db));
        // But callpath differs: it depends on the MPI node... actually it
        // does not in this topology — callpath depends on mpi here, so it
        // must differ.
        let ca = with_mpich.by_name("callpath").unwrap();
        let cb = with_openmpi.by_name("callpath").unwrap();
        assert_ne!(ha.node_hash(ca), hb.node_hash(cb));
    }

    #[test]
    fn version_change_propagates_to_dependents_only() {
        let base = mpileaks_with("mpich");
        let mut b = DagBuilder::new();
        let root = b
            .add_node(node("mpileaks", "1.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let m = b
            .add_node(node("mpich", "3.0", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let cp = b
            .add_node(node("callpath", "1.0.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let dy = b
            .add_node(node("dyninst", "8.1.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let ld = b
            .add_node(node(
                "libdwarf",
                "20130729",
                ("gcc", "4.9.2"),
                "linux-x86_64",
            ))
            .unwrap();
        // Different libelf version.
        let le = b
            .add_node(node("libelf", "0.8.13", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, m);
        b.add_edge(root, cp);
        b.add_edge(cp, m);
        b.add_edge(cp, dy);
        b.add_edge(dy, ld);
        b.add_edge(dy, le);
        b.add_edge(ld, le);
        let changed = b.build(root).unwrap();

        let hb = DagHashes::compute(&base);
        let hc = DagHashes::compute(&changed);
        // mpich does not depend on libelf: hash unchanged (prefix reused).
        assert_eq!(
            hb.node_hash(base.by_name("mpich").unwrap()),
            hc.node_hash(changed.by_name("mpich").unwrap())
        );
        // dyninst does: hash changes.
        assert_ne!(
            hb.node_hash(base.by_name("dyninst").unwrap()),
            hc.node_hash(changed.by_name("dyninst").unwrap())
        );
        assert_ne!(hb.dag_hash(), hc.dag_hash());
    }

    #[test]
    fn short_hash_length() {
        let dag = mpileaks_with("mpich");
        let h = DagHashes::compute(&dag);
        assert_eq!(h.short(dag.root()).len(), SHORT_HASH_LEN);
    }
}
