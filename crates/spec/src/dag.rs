//! Concrete build DAGs: the output of concretization (SC'15 Fig. 7).
//!
//! A [`ConcreteDag`] is a directed acyclic graph of fully-resolved package
//! nodes. Per §3.2.1, a DAG contains at most one configuration of each
//! package, so nodes are indexable by package name. Dependency edges point
//! from dependent to dependency, and installation proceeds bottom-up in
//! topological order.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::SpecError;
use crate::spec::{CompilerSpec, Spec};
use crate::version::{Version, VersionList};

/// Index of a node within its [`ConcreteDag`].
pub type NodeId = usize;

/// A fully pinned compiler: name and exact version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConcreteCompiler {
    /// Toolchain name (`gcc`, `intel`, ...).
    pub name: String,
    /// Exact toolchain version.
    pub version: Version,
}

impl fmt::Display for ConcreteCompiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.version)
    }
}

/// One fully-resolved package configuration in a concrete DAG.
///
/// All five configuration parameters of §3.2.1 are pinned: version,
/// compiler (+ version), variants, and target architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteNode {
    /// Package name.
    pub name: String,
    /// Exact package version.
    pub version: Version,
    /// Exact compiler.
    pub compiler: ConcreteCompiler,
    /// All variants of the package, each resolved to on/off.
    pub variants: BTreeMap<String, bool>,
    /// Target architecture, e.g. `linux-x86_64` or `bgq`.
    pub architecture: String,
    /// Repository namespace that provided the package recipe (§4.3.2),
    /// e.g. `builtin` or a site namespace. Tracked for reproducibility.
    pub namespace: String,
    /// Direct dependencies, as indices into the owning DAG, sorted by the
    /// dependency's package name.
    pub deps: Vec<NodeId>,
}

impl ConcreteNode {
    /// Render just this node's parameters in spec syntax.
    pub fn format_node(&self) -> String {
        let mut s = format!("{}@{}%{}", self.name, self.version, self.compiler);
        for (var, on) in &self.variants {
            s.push(if *on { '+' } else { '~' });
            s.push_str(var);
        }
        s.push('=');
        s.push_str(&self.architecture);
        s
    }

    /// This node's parameters as a concrete [`Spec`] (no dependencies).
    pub fn as_node_spec(&self) -> Spec {
        Spec {
            name: Some(self.name.clone()),
            versions: VersionList::exact(self.version.clone()),
            compiler: Some(CompilerSpec {
                name: self.compiler.name.clone(),
                versions: VersionList::exact(self.compiler.version.clone()),
            }),
            variants: self.variants.clone(),
            architecture: Some(self.architecture.clone()),
            dependencies: BTreeMap::new(),
        }
    }
}

/// A validated concrete DAG with a designated root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteDag {
    nodes: Vec<ConcreteNode>,
    root: NodeId,
    by_name: BTreeMap<String, NodeId>,
}

impl ConcreteDag {
    /// Build and validate a DAG from nodes and a root index.
    ///
    /// Validation enforces the paper's invariants: package names are unique
    /// within the DAG, every node is reachable from the root, edges are in
    /// bounds, and the graph is acyclic.
    pub fn new(nodes: Vec<ConcreteNode>, root: NodeId) -> Result<ConcreteDag, SpecError> {
        if root >= nodes.len() {
            return Err(SpecError::conflict("root index out of bounds"));
        }
        let mut by_name = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if by_name.insert(n.name.clone(), i).is_some() {
                return Err(SpecError::conflict(format!(
                    "two configurations of `{}` in one DAG",
                    n.name
                )));
            }
            for &d in &n.deps {
                if d >= nodes.len() {
                    return Err(SpecError::conflict(format!(
                        "dependency edge out of bounds on `{}`",
                        n.name
                    )));
                }
            }
        }
        let dag = ConcreteDag {
            nodes,
            root,
            by_name,
        };
        dag.check_acyclic_and_reachable()?;
        Ok(dag)
    }

    fn check_acyclic_and_reachable(&self) -> Result<(), SpecError> {
        // Iterative DFS with colors: 0 unvisited, 1 on stack, 2 done.
        let mut color = vec![0u8; self.nodes.len()];
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        color[self.root] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.nodes[node].deps.len() {
                let dep = self.nodes[node].deps[*next];
                *next += 1;
                match color[dep] {
                    0 => {
                        color[dep] = 1;
                        stack.push((dep, 0));
                    }
                    1 => {
                        return Err(SpecError::conflict(format!(
                            "circular dependency through `{}`",
                            self.nodes[dep].name
                        )));
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
        if let Some(unreached) = color.iter().position(|&c| c != 2) {
            return Err(SpecError::conflict(format!(
                "node `{}` unreachable from root",
                self.nodes[unreached].name
            )));
        }
        Ok(())
    }

    /// The root node's index.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The root node.
    pub fn root_node(&self) -> &ConcreteNode {
        &self.nodes[self.root]
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[ConcreteNode] {
        &self.nodes
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &ConcreteNode {
        &self.nodes[id]
    }

    /// Number of packages in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a single-node DAG? Never — a DAG always has a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.deps.len()).sum()
    }

    /// Find a package's node by name (§3.2.3: "each dependency can be
    /// uniquely identified by its package name alone").
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Bottom-up topological order: every node appears after all of its
    /// dependencies. This is the install order (§3.4: "traverses the DAG
    /// in a bottom-up fashion"). Deterministic for a given DAG.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut done = vec![false; self.nodes.len()];
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        let mut on_stack = vec![false; self.nodes.len()];
        on_stack[self.root] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.nodes[node].deps.len() {
                let dep = self.nodes[node].deps[*next];
                *next += 1;
                if !done[dep] && !on_stack[dep] {
                    on_stack[dep] = true;
                    stack.push((dep, 0));
                }
            } else {
                done[node] = true;
                on_stack[node] = false;
                order.push(node);
                stack.pop();
            }
        }
        order
    }

    /// All package names in the DAG, sorted.
    pub fn package_names(&self) -> Vec<&str> {
        self.by_name.keys().map(|s| s.as_str()).collect()
    }

    /// Extract the sub-DAG rooted at `id` as its own [`ConcreteDag`].
    /// This is the `spec` value passed to a package's `install` method
    /// (§3.4: "a sub-DAG rooted at the current node").
    pub fn subdag(&self, id: NodeId) -> ConcreteDag {
        // Collect reachable nodes.
        let mut reachable = Vec::new();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        seen[id] = true;
        while let Some(n) = stack.pop() {
            reachable.push(n);
            for &d in &self.nodes[n].deps {
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        reachable.sort_unstable();
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for (new, &old) in reachable.iter().enumerate() {
            remap[old] = new;
        }
        let nodes = reachable
            .iter()
            .map(|&old| {
                let mut n = self.nodes[old].clone();
                for d in &mut n.deps {
                    *d = remap[*d];
                }
                n
            })
            .collect();
        ConcreteDag::new(nodes, remap[id]).expect("subdag of a valid DAG is valid")
    }

    /// The whole DAG as an abstract [`Spec`]: root node constraints plus a
    /// flat map of every package in the DAG as a fully-pinned dependency
    /// constraint. Useful for `satisfies` queries against user specs.
    pub fn as_spec(&self) -> Spec {
        let mut spec = self.root_node().as_node_spec();
        for (name, &id) in &self.by_name {
            if id != self.root {
                spec.dependencies
                    .insert(name.clone(), self.nodes[id].as_node_spec());
            }
        }
        spec
    }

    /// Does this concrete build satisfy an abstract request?
    ///
    /// The root must satisfy the root constraints, and each `^name`
    /// constraint must be satisfied by the same-named package anywhere in
    /// the DAG.
    pub fn satisfies(&self, request: &Spec) -> bool {
        if !self.root_node().as_node_spec().node_satisfies(request) {
            return false;
        }
        for (name, constraint) in &request.dependencies {
            match self.by_name(name) {
                Some(id) => {
                    if !self.nodes[id].as_node_spec().node_satisfies(constraint) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// GraphViz rendering (used by the Fig. 13 harness).
    pub fn to_dot(&self, classify: impl Fn(&ConcreteNode) -> &'static str) -> String {
        let mut out = String::from("digraph spec {\n  rankdir=TB;\n");
        for n in &self.nodes {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\" group=\"{}\"];\n",
                n.name,
                n.name,
                classify(n)
            ));
        }
        for n in &self.nodes {
            for &d in &n.deps {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    n.name, self.nodes[d].name
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for ConcreteDag {
    /// Tree rendering in the style of `spack spec`: root first, children
    /// indented, each node in full concrete spec syntax. Shared nodes are
    /// printed at first encounter only.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(
            dag: &ConcreteDag,
            id: NodeId,
            depth: usize,
            seen: &mut Vec<bool>,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(
                f,
                "{:indent$}{}{}",
                "",
                if depth == 0 { "" } else { "^" },
                dag.nodes[id].format_node(),
                indent = depth * 4
            )?;
            if seen[id] {
                return Ok(());
            }
            seen[id] = true;
            for &d in &dag.nodes[id].deps {
                walk(dag, d, depth + 1, seen, f)?;
            }
            Ok(())
        }
        let mut seen = vec![false; self.nodes.len()];
        walk(self, self.root, 0, &mut seen, f)
    }
}

/// Convenience builder for concrete DAGs, used by the concretizer and by
/// tests.
#[derive(Debug, Default)]
pub struct DagBuilder {
    nodes: Vec<ConcreteNode>,
    names: BTreeMap<String, NodeId>,
}

impl DagBuilder {
    /// An empty builder.
    pub fn new() -> DagBuilder {
        DagBuilder::default()
    }

    /// Add a node without dependencies; returns its id. Errors if the name
    /// was already added.
    pub fn add_node(&mut self, node: ConcreteNode) -> Result<NodeId, SpecError> {
        if self.names.contains_key(&node.name) {
            return Err(SpecError::conflict(format!(
                "two configurations of `{}` in one DAG",
                node.name
            )));
        }
        let id = self.nodes.len();
        self.names.insert(node.name.clone(), id);
        self.nodes.push(node);
        Ok(id)
    }

    /// Look up a previously added node by name.
    pub fn id_of(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Add a dependency edge from `from` to `to`, keeping edges sorted by
    /// dependency name and ignoring duplicates.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].deps.contains(&to) {
            let mut deps = std::mem::take(&mut self.nodes[from].deps);
            deps.push(to);
            deps.sort_by(|&a, &b| self.nodes[a].name.cmp(&self.nodes[b].name));
            self.nodes[from].deps = deps;
        }
    }

    /// Finalize into a validated DAG rooted at `root`.
    pub fn build(self, root: NodeId) -> Result<ConcreteDag, SpecError> {
        ConcreteDag::new(self.nodes, root)
    }
}

/// Construct a concrete node quickly (testing and workload generation).
pub fn node(name: &str, version: &str, compiler: (&str, &str), arch: &str) -> ConcreteNode {
    ConcreteNode {
        name: name.to_string(),
        version: Version::new(version).expect("valid version"),
        compiler: ConcreteCompiler {
            name: compiler.0.to_string(),
            version: Version::new(compiler.1).expect("valid compiler version"),
        },
        variants: BTreeMap::new(),
        architecture: arch.to_string(),
        namespace: "builtin".to_string(),
        deps: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mpileaks DAG of Fig. 2/7: mpileaks -> {mpich, callpath},
    /// callpath -> {mpich, dyninst}, dyninst -> {libdwarf, libelf},
    /// libdwarf -> libelf.
    pub fn mpileaks_dag() -> ConcreteDag {
        let mut b = DagBuilder::new();
        let mpileaks = b
            .add_node(node("mpileaks", "2.3", ("gcc", "4.7.3"), "linux-ppc64"))
            .unwrap();
        let mpich = b
            .add_node(node("mpich", "3.0.4", ("gcc", "4.7.3"), "linux-ppc64"))
            .unwrap();
        let callpath = b
            .add_node(node("callpath", "1.0.2", ("gcc", "4.7.3"), "linux-ppc64"))
            .unwrap();
        let dyninst = b
            .add_node(node("dyninst", "8.1.2", ("gcc", "4.7.3"), "linux-ppc64"))
            .unwrap();
        let libdwarf = b
            .add_node(node(
                "libdwarf",
                "20130729",
                ("gcc", "4.7.3"),
                "linux-ppc64",
            ))
            .unwrap();
        let libelf = b
            .add_node(node("libelf", "0.8.11", ("gcc", "4.7.3"), "linux-ppc64"))
            .unwrap();
        b.add_edge(mpileaks, mpich);
        b.add_edge(mpileaks, callpath);
        b.add_edge(callpath, mpich);
        b.add_edge(callpath, dyninst);
        b.add_edge(dyninst, libdwarf);
        b.add_edge(dyninst, libelf);
        b.add_edge(libdwarf, libelf);
        b.build(mpileaks).unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let dag = mpileaks_dag();
        assert_eq!(dag.len(), 6);
        assert_eq!(dag.edge_count(), 7);
        assert_eq!(dag.root_node().name, "mpileaks");
        assert!(dag.by_name("libelf").is_some());
        assert!(dag.by_name("nonesuch").is_none());
    }

    #[test]
    fn rejects_duplicate_package() {
        let mut b = DagBuilder::new();
        b.add_node(node("libelf", "0.8.11", ("gcc", "4.7.3"), "x"))
            .unwrap();
        assert!(b
            .add_node(node("libelf", "0.8.13", ("gcc", "4.7.3"), "x"))
            .is_err());
    }

    #[test]
    fn rejects_cycle() {
        let mut nodes = vec![
            node("a", "1", ("gcc", "4"), "x"),
            node("b", "1", ("gcc", "4"), "x"),
        ];
        nodes[0].deps = vec![1];
        nodes[1].deps = vec![0];
        assert!(ConcreteDag::new(nodes, 0).is_err());
    }

    #[test]
    fn rejects_unreachable() {
        let nodes = vec![
            node("a", "1", ("gcc", "4"), "x"),
            node("b", "1", ("gcc", "4"), "x"),
        ];
        assert!(ConcreteDag::new(nodes, 0).is_err());
    }

    #[test]
    fn topo_order_is_bottom_up() {
        let dag = mpileaks_dag();
        let order = dag.topo_order();
        assert_eq!(order.len(), dag.len());
        let position: BTreeMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (id, n) in dag.nodes().iter().enumerate() {
            for &d in &n.deps {
                assert!(
                    position[&d] < position[&id],
                    "{} must install before {}",
                    dag.node(d).name,
                    n.name
                );
            }
        }
        assert_eq!(order.last().copied(), Some(dag.root()));
    }

    #[test]
    fn subdag_extraction() {
        let dag = mpileaks_dag();
        let dyninst = dag.by_name("dyninst").unwrap();
        let sub = dag.subdag(dyninst);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.root_node().name, "dyninst");
        assert!(sub.by_name("libelf").is_some());
        assert!(sub.by_name("mpileaks").is_none());
    }

    #[test]
    fn satisfies_constraints_by_name() {
        let dag = mpileaks_dag();
        assert!(dag.satisfies(&Spec::parse("mpileaks").unwrap()));
        assert!(dag.satisfies(&Spec::parse("mpileaks@2.3").unwrap()));
        assert!(dag.satisfies(&Spec::parse("mpileaks@2:").unwrap()));
        assert!(dag.satisfies(&Spec::parse("mpileaks%gcc").unwrap()));
        // Transitive deps addressed by name.
        assert!(dag.satisfies(&Spec::parse("mpileaks^mpich@3.0.4").unwrap()));
        assert!(dag.satisfies(&Spec::parse("mpileaks^libelf@:0.9").unwrap()));
        assert!(!dag.satisfies(&Spec::parse("mpileaks^libelf@0.9:").unwrap()));
        assert!(!dag.satisfies(&Spec::parse("mpileaks^openmpi").unwrap()));
        assert!(!dag.satisfies(&Spec::parse("mpileaks%intel").unwrap()));
    }

    #[test]
    fn display_shows_tree() {
        let dag = mpileaks_dag();
        let text = dag.to_string();
        assert!(text.starts_with("mpileaks@2.3%gcc@4.7.3=linux-ppc64"));
        assert!(text.contains("^callpath@1.0.2"));
        assert!(text.contains("^libelf@0.8.11"));
    }

    #[test]
    fn as_spec_roundtrip_satisfies() {
        let dag = mpileaks_dag();
        let spec = dag.as_spec();
        assert!(spec.satisfies(&Spec::parse("mpileaks^dyninst@8.1.2").unwrap()));
        assert_eq!(spec.dependencies.len(), 5);
    }

    #[test]
    fn dot_export_mentions_all_edges() {
        let dag = mpileaks_dag();
        let dot = dag.to_dot(|_| "external");
        assert!(dot.contains("\"mpileaks\" -> \"callpath\""));
        assert!(dot.contains("\"libdwarf\" -> \"libelf\""));
    }
}
