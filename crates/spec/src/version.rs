//! The version model: points, ranges, and lists.
//!
//! Spack version constraints (SC'15 §3.2.3) come in three shapes:
//!
//! * a point version, `@2.5.1`;
//! * a range, `@2.5:4.4`, possibly open-ended (`@2.5:` or `@:4.4`);
//! * a comma-separated list of either, `@1.0,2.3:2.5`.
//!
//! Versions are dotted sequences of components. Components compare
//! numerically when both are numeric and lexicographically otherwise, with
//! numeric components ordering after alphabetic ones at the same position
//! (so `1.0` > `1.0rc1`-style pre-releases compare the way packagers
//! expect). A shorter version that is a prefix of a longer one compares
//! less (`1.2` < `1.2.1`), but an *upper range bound* includes everything
//! with that prefix: `@:2.5` admits `2.5.6`, matching the paper's reading
//! of `@2.3:2.5.6` as "between 2.3 and 2.5.6".

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::error::SpecError;

/// One dot-separated component of a version identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Component {
    /// A numeric component, e.g. the `12` in `1.12.3`.
    Num(u64),
    /// An alphanumeric component, e.g. the `rc1` in `3.0.rc1`.
    Alpha(String),
}

impl Component {
    fn rank(&self) -> u8 {
        match self {
            Component::Alpha(_) => 0,
            Component::Num(_) => 1,
        }
    }
}

impl PartialOrd for Component {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Component {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Component::Num(a), Component::Num(b)) => a.cmp(b),
            (Component::Alpha(a), Component::Alpha(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Num(n) => write!(f, "{n}"),
            Component::Alpha(s) => write!(f, "{s}"),
        }
    }
}

/// A point version such as `1.4.2` or `develop`.
///
/// The original text is kept for display, but identity (`Eq`, `Hash`,
/// ordering) is defined on the parsed components, so `1.0rc1` and
/// `1.0.rc.1` are the same version rendered differently.
#[derive(Debug, Clone)]
pub struct Version {
    original: String,
    components: Vec<Component>,
}

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        self.components == other.components
    }
}

impl Eq for Version {}

impl std::hash::Hash for Version {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.components.hash(state);
    }
}

impl Version {
    /// Parse a version from its dotted string form.
    ///
    /// Every dot-separated piece that parses as an unsigned integer becomes
    /// a numeric component; anything else is kept as an alphanumeric
    /// component. Mixed pieces like `3b` are split into `3`, `b` so that
    /// `3b` sorts between `3` and `4` the way release naming intends.
    pub fn new(s: &str) -> Result<Version, SpecError> {
        if s.is_empty() {
            return Err(SpecError::parse("empty version"));
        }
        let mut components = Vec::new();
        for piece in s.split('.') {
            if piece.is_empty() {
                return Err(SpecError::parse(format!(
                    "empty version component in `{s}`"
                )));
            }
            // Split runs of digits from runs of non-digits within a piece.
            let mut run = String::new();
            let mut run_numeric = None::<bool>;
            for ch in piece.chars() {
                if !ch.is_ascii_alphanumeric() && ch != '_' && ch != '-' {
                    return Err(SpecError::parse(format!(
                        "invalid character `{ch}` in version `{s}`"
                    )));
                }
                let numeric = ch.is_ascii_digit();
                if run_numeric.is_some_and(|r| r != numeric) {
                    components.push(Self::component_of(&run, run_numeric.unwrap()));
                    run.clear();
                }
                run_numeric = Some(numeric);
                run.push(ch);
            }
            if let Some(numeric) = run_numeric {
                components.push(Self::component_of(&run, numeric));
            }
        }
        Ok(Version {
            original: s.to_string(),
            components,
        })
    }

    fn component_of(run: &str, numeric: bool) -> Component {
        if numeric {
            match run.parse::<u64>() {
                Ok(n) => Component::Num(n),
                // Overflow: keep as text so comparison stays total.
                Err(_) => Component::Alpha(run.to_string()),
            }
        } else {
            Component::Alpha(run.to_string())
        }
    }

    /// The components of this version.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// True if `self` is a component-wise prefix of `other`
    /// (`2.5` is a prefix of `2.5.6`). Every version is a prefix of itself.
    pub fn is_prefix_of(&self, other: &Version) -> bool {
        self.components.len() <= other.components.len()
            && self.components == other.components[..self.components.len()]
    }

    /// True when this version is an "infinity" development version such as
    /// `develop`, `main`, or `master`, which order above all numeric
    /// releases (packagers expect `@develop` to satisfy `@3.0:`).
    pub fn is_develop(&self) -> bool {
        matches!(
            self.components.first(),
            Some(Component::Alpha(a)) if matches!(a.as_str(), "develop" | "main" | "master" | "head" | "trunk")
        ) && self.components.len() == 1
    }

    /// Total ordering used for ranges. Develop versions sort above
    /// everything; otherwise comparison is componentwise. When one version
    /// is a proper prefix of the other, the longer one's first extra
    /// component decides: a numeric extension is a *later* release
    /// (`1.2 < 1.2.1`) while an alphabetic extension is a *pre-release*
    /// (`1.0rc1 < 1.0`), matching packagers' expectations.
    pub fn version_cmp(&self, other: &Version) -> Ordering {
        match (self.is_develop(), other.is_develop()) {
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        let common = self.components.len().min(other.components.len());
        for i in 0..common {
            let ord = self.components[i].cmp(&other.components[i]);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        match self.components.len().cmp(&other.components.len()) {
            Ordering::Equal => Ordering::Equal,
            Ordering::Less => match other.components[common] {
                Component::Num(_) => Ordering::Less,
                Component::Alpha(_) => Ordering::Greater,
            },
            Ordering::Greater => match self.components[common] {
                Component::Num(_) => Ordering::Greater,
                Component::Alpha(_) => Ordering::Less,
            },
        }
    }

    /// The version with the last component incremented, used for generating
    /// "next" versions in workload generators.
    pub fn bumped(&self) -> Version {
        let mut components = self.components.clone();
        match components.last_mut() {
            Some(Component::Num(n)) => *n += 1,
            Some(Component::Alpha(a)) => a.push('a'),
            None => components.push(Component::Num(1)),
        }
        let original = render_components(&components);
        Version {
            original,
            components,
        }
    }

    /// Render without allocation of intermediate strings.
    pub fn to_display_string(&self) -> String {
        self.to_string()
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        self.version_cmp(other)
    }
}

impl FromStr for Version {
    type Err = SpecError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Version::new(s)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.original)
    }
}

/// Render components for versions constructed programmatically (e.g. by
/// [`Version::bumped`]): dots between runs except when an alpha run
/// directly follows a numeric one (`3b` style).
fn render_components(components: &[Component]) -> String {
    let mut out = String::new();
    let mut prev_numeric = false;
    for (i, c) in components.iter().enumerate() {
        let numeric = matches!(c, Component::Num(_));
        if i > 0 && (numeric || !prev_numeric) {
            out.push('.');
        }
        out.push_str(&c.to_string());
        prev_numeric = numeric;
    }
    out
}

/// A contiguous range of versions, possibly unbounded on either side.
///
/// `lo` and `hi` are inclusive. `None` means unbounded. The upper bound
/// uses prefix semantics: `:2.5` includes `2.5.6`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionRange {
    lo: Option<Version>,
    hi: Option<Version>,
}

impl VersionRange {
    /// A range between two optional inclusive endpoints.
    pub fn new(lo: Option<Version>, hi: Option<Version>) -> Result<VersionRange, SpecError> {
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l.version_cmp(h) == Ordering::Greater && !h.is_prefix_of(l) {
                return Err(SpecError::parse(format!("backwards version range {l}:{h}")));
            }
        }
        Ok(VersionRange { lo, hi })
    }

    /// The range containing exactly one version (plus its prefix-extensions
    /// on the upper side, per Spack semantics: `@1.4` admits `1.4.2` when
    /// used as a constraint range — point *constraints* are prefix matches).
    pub fn point(v: Version) -> VersionRange {
        VersionRange {
            lo: Some(v.clone()),
            hi: Some(v),
        }
    }

    /// The unbounded range `:` matching any version.
    pub fn any() -> VersionRange {
        VersionRange { lo: None, hi: None }
    }

    /// Lower bound, if any.
    pub fn lo(&self) -> Option<&Version> {
        self.lo.as_ref()
    }

    /// Upper bound, if any.
    pub fn hi(&self) -> Option<&Version> {
        self.hi.as_ref()
    }

    /// Is this a point range (`lo == hi`)?
    pub fn is_point(&self) -> bool {
        self.lo.is_some() && self.lo == self.hi
    }

    /// Does a concrete version fall inside this range?
    pub fn contains(&self, v: &Version) -> bool {
        if let Some(lo) = &self.lo {
            if v.version_cmp(lo) == Ordering::Less {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            // Inclusive, with prefix semantics on the upper bound.
            if v.version_cmp(hi) == Ordering::Greater && !hi.is_prefix_of(v) {
                return false;
            }
        }
        true
    }

    /// Do the two ranges admit at least one common version?
    pub fn overlaps(&self, other: &VersionRange) -> bool {
        self.intersect(other).is_some()
    }

    /// True when every version in `self` is also in `other`.
    pub fn is_subset_of(&self, other: &VersionRange) -> bool {
        // Lower bound of self must not fall below other's.
        match (&self.lo, &other.lo) {
            (_, None) => {}
            (None, Some(_)) => return false,
            (Some(a), Some(b)) => {
                if a.version_cmp(b) == Ordering::Less {
                    return false;
                }
            }
        }
        match (&self.hi, &other.hi) {
            (_, None) => {}
            (None, Some(_)) => return false,
            (Some(a), Some(b)) => {
                if a.version_cmp(b) == Ordering::Greater && !b.is_prefix_of(a) {
                    return false;
                }
                // Prefix semantics cut the other way too: `:15` admits
                // every 15.x (15 is a prefix of all of them), so it is
                // *not* a subset of `:15.8` even though 15 < 15.8. A
                // strictly-shorter prefix bound is the looser one.
                if a != b && a.is_prefix_of(b) {
                    return false;
                }
            }
        }
        true
    }

    /// The intersection of two ranges, or `None` when disjoint.
    pub fn intersect(&self, other: &VersionRange) -> Option<VersionRange> {
        let lo = match (&self.lo, &other.lo) {
            (None, b) => b.clone(),
            (a, None) => a.clone(),
            (Some(a), Some(b)) => Some(if a.version_cmp(b) == Ordering::Less {
                b.clone()
            } else {
                a.clone()
            }),
        };
        let hi = match (&self.hi, &other.hi) {
            (None, b) => b.clone(),
            (a, None) => a.clone(),
            (Some(a), Some(b)) => {
                // Prefer the tighter (smaller) bound; when one is a prefix
                // of the other, the longer one is tighter.
                Some(if a.is_prefix_of(b) {
                    b.clone()
                } else if b.is_prefix_of(a) || a.version_cmp(b) == Ordering::Less {
                    a.clone()
                } else {
                    b.clone()
                })
            }
        };
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l.version_cmp(h) == Ordering::Greater && !h.is_prefix_of(l) {
                return None;
            }
        }
        Some(VersionRange { lo, hi })
    }
}

impl fmt::Display for VersionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.lo, &self.hi) {
            (None, None) => write!(f, ":"),
            (Some(l), None) => write!(f, "{l}:"),
            (None, Some(h)) => write!(f, ":{h}"),
            (Some(l), Some(h)) if l == h => write!(f, "{l}"),
            (Some(l), Some(h)) => write!(f, "{l}:{h}"),
        }
    }
}

/// An ordered list of disjoint version ranges: the value of an `@` clause.
///
/// An empty list means "unconstrained" (any version), mirroring how an
/// abstract spec with no `@` clause behaves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VersionList {
    ranges: Vec<VersionRange>,
}

impl VersionList {
    /// The unconstrained list.
    pub fn any() -> VersionList {
        VersionList::default()
    }

    /// A list holding a single concrete version.
    pub fn exact(v: Version) -> VersionList {
        VersionList {
            ranges: vec![VersionRange::point(v)],
        }
    }

    /// Build from ranges, merging overlaps and sorting.
    pub fn from_ranges(ranges: Vec<VersionRange>) -> VersionList {
        let mut list = VersionList { ranges };
        list.normalize();
        list
    }

    /// Parse a version-list clause like `1.0,2.3:2.5,4:`.
    pub fn parse(s: &str) -> Result<VersionList, SpecError> {
        let mut ranges = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(SpecError::parse(format!("empty version in list `{s}`")));
            }
            ranges.push(parse_range(part)?);
        }
        Ok(VersionList::from_ranges(ranges))
    }

    fn normalize(&mut self) {
        self.ranges.sort_by(|a, b| match (a.lo(), b.lo()) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(x), Some(y)) => x.version_cmp(y),
        });
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<VersionRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.overlaps(&r) {
                    let lo = last.lo().cloned();
                    let hi = match (last.hi(), r.hi()) {
                        (None, _) | (_, None) => None,
                        (Some(a), Some(b)) => Some(if a.version_cmp(b) == Ordering::Greater {
                            a.clone()
                        } else {
                            b.clone()
                        }),
                    };
                    *last = VersionRange { lo, hi };
                    continue;
                }
            }
            merged.push(r);
        }
        self.ranges = merged;
    }

    /// True when no `@` constraint has been applied.
    pub fn is_any(&self) -> bool {
        self.ranges.is_empty() || (self.ranges.len() == 1 && self.ranges[0] == VersionRange::any())
    }

    /// True when the list pins exactly one version.
    pub fn is_concrete(&self) -> bool {
        self.ranges.len() == 1 && self.ranges[0].is_point()
    }

    /// The single concrete version, if `is_concrete`.
    pub fn concrete(&self) -> Option<&Version> {
        if self.is_concrete() {
            self.ranges[0].lo()
        } else {
            None
        }
    }

    /// The ranges in this list.
    pub fn ranges(&self) -> &[VersionRange] {
        &self.ranges
    }

    /// Does a concrete version satisfy this constraint?
    pub fn contains(&self, v: &Version) -> bool {
        self.is_any() || self.ranges.iter().any(|r| r.contains(v))
    }

    /// Does any version satisfy both lists?
    pub fn overlaps(&self, other: &VersionList) -> bool {
        if self.is_any() || other.is_any() {
            return true;
        }
        self.ranges
            .iter()
            .any(|a| other.ranges.iter().any(|b| a.overlaps(b)))
    }

    /// Is every version admitted by `self` also admitted by `other`?
    pub fn is_subset_of(&self, other: &VersionList) -> bool {
        if other.is_any() {
            return true;
        }
        if self.is_any() {
            return false;
        }
        self.ranges
            .iter()
            .all(|a| other.ranges.iter().any(|b| a.is_subset_of(b)))
    }

    /// Intersect with another list in place. Returns `Ok(changed)`; errors
    /// when the result would be empty (the paper's "ranges do not overlap"
    /// concretization error).
    pub fn intersect_with(&mut self, other: &VersionList) -> Result<bool, SpecError> {
        if other.is_any() {
            return Ok(false);
        }
        if self.is_any() {
            *self = other.clone();
            return Ok(true);
        }
        let mut out = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                if let Some(r) = a.intersect(b) {
                    out.push(r);
                }
            }
        }
        if out.is_empty() {
            return Err(SpecError::conflict(format!(
                "version constraints `{self}` and `{other}` do not overlap"
            )));
        }
        let next = VersionList::from_ranges(out);
        let changed = next != *self;
        *self = next;
        Ok(changed)
    }

    /// Non-mutating intersection: the list admitting exactly the versions
    /// admitted by both `self` and `other`, or `None` when the constraints
    /// are disjoint. The `Option` form suits static analysis (an auditor
    /// asking "can these two directives ever both hold?") better than the
    /// in-place, erroring [`VersionList::intersect_with`].
    pub fn intersection(&self, other: &VersionList) -> Option<VersionList> {
        let mut out = self.clone();
        match out.intersect_with(other) {
            Ok(_) => Some(out),
            Err(_) => None,
        }
    }

    /// The highest version among a set of candidates that satisfies this
    /// list, preferring non-develop releases (site policy default: newest
    /// stable release wins).
    pub fn highest_satisfying<'a>(
        &self,
        candidates: impl IntoIterator<Item = &'a Version>,
    ) -> Option<&'a Version> {
        let mut best: Option<&Version> = None;
        let mut best_develop: Option<&Version> = None;
        for v in candidates {
            if !self.contains(v) {
                continue;
            }
            let slot = if v.is_develop() {
                &mut best_develop
            } else {
                &mut best
            };
            if slot.is_none_or(|b| v.version_cmp(b) == Ordering::Greater) {
                *slot = Some(v);
            }
        }
        best.or(best_develop)
    }
}

impl fmt::Display for VersionList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, ":");
        }
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Parse a single range expression: `1.2`, `1.2:`, `:1.4`, `1.2:1.4`, `:`.
pub fn parse_range(s: &str) -> Result<VersionRange, SpecError> {
    if s == ":" {
        return Ok(VersionRange::any());
    }
    if let Some(idx) = s.find(':') {
        let (lo, hi) = s.split_at(idx);
        let hi = &hi[1..];
        if hi.contains(':') {
            return Err(SpecError::parse(format!(
                "multiple `:` in version range `{s}`"
            )));
        }
        let lo = if lo.is_empty() {
            None
        } else {
            Some(Version::new(lo)?)
        };
        let hi = if hi.is_empty() {
            None
        } else {
            Some(Version::new(hi)?)
        };
        VersionRange::new(lo, hi)
    } else {
        Ok(VersionRange::point(Version::new(s)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::new(s).unwrap()
    }

    fn vl(s: &str) -> VersionList {
        VersionList::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1", "1.2.3", "0.8.11", "2.7.9", "1.4.2", "develop"] {
            assert_eq!(v(s).to_string(), s);
        }
    }

    #[test]
    fn mixed_alphanumeric_components() {
        let a = v("3b");
        assert_eq!(a.components().len(), 2);
        assert_eq!(a.to_string(), "3b");
        // A trailing alphabetic component is a pre-release: 3b < 3.
        assert!(v("3b") < v("3"));
        assert!(v("3b") < v("4"));
    }

    #[test]
    fn numeric_ordering() {
        assert!(v("1.2") < v("1.10"));
        assert!(v("1.2") < v("1.2.1"));
        assert!(v("2.9") < v("2.10"));
        assert!(v("1.0") > v("1.0rc1"));
    }

    #[test]
    fn develop_sorts_highest() {
        assert!(v("develop") > v("99.9"));
        assert!(v("main") > v("4.0.0"));
        assert!(vl("3.0:").contains(&v("develop")));
    }

    #[test]
    fn range_contains() {
        let r = parse_range("2.3:2.5.6").unwrap();
        assert!(r.contains(&v("2.3")));
        assert!(r.contains(&v("2.4.99")));
        assert!(r.contains(&v("2.5.6")));
        assert!(!r.contains(&v("2.5.7")));
        assert!(!r.contains(&v("2.2")));
    }

    #[test]
    fn open_ranges() {
        assert!(parse_range("2.5:").unwrap().contains(&v("99")));
        assert!(!parse_range("2.5:").unwrap().contains(&v("2.4")));
        assert!(parse_range(":2.5").unwrap().contains(&v("0.1")));
        // Prefix semantics on the upper bound, per the paper's example.
        assert!(parse_range(":2.5").unwrap().contains(&v("2.5.6")));
        assert!(!parse_range(":2.5").unwrap().contains(&v("2.6")));
    }

    #[test]
    fn backwards_range_rejected() {
        assert!(parse_range("2.0:1.0").is_err());
    }

    #[test]
    fn range_intersection() {
        let a = parse_range("1.2:1.4").unwrap();
        let b = parse_range("1.3:2.0").unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.to_string(), "1.3:1.4");
        let c = parse_range("3:").unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn point_range_intersects_prefix_extension() {
        // @1.4 ∩ @1.4.2 should be @1.4.2 (the tighter constraint).
        let a = parse_range("1.4").unwrap();
        let b = parse_range("1.4.2").unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.to_string(), "1.4.2");
    }

    #[test]
    fn list_parse_merge() {
        let l = vl("1.0,1.0:1.5");
        assert_eq!(l.ranges().len(), 1);
        assert_eq!(l.to_string(), "1.0:1.5");
        let l = vl("2.0,1.0");
        assert_eq!(l.to_string(), "1.0,2.0");
    }

    #[test]
    fn list_intersection_error_on_disjoint() {
        let mut a = vl("1.0:1.5");
        assert!(a.intersect_with(&vl("2.0:")).is_err());
    }

    #[test]
    fn list_intersection() {
        let mut a = vl("1.0:2.0,3.0:4.0");
        let changed = a.intersect_with(&vl("1.5:3.5")).unwrap();
        assert!(changed);
        assert_eq!(a.to_string(), "1.5:2.0,3.0:3.5");
    }

    #[test]
    fn subset_logic() {
        assert!(vl("1.3:1.4").is_subset_of(&vl("1.0:2.0")));
        assert!(!vl("1.3:2.5").is_subset_of(&vl("1.0:2.0")));
        assert!(vl("1.3").is_subset_of(&vl(":")));
        assert!(!VersionList::any().is_subset_of(&vl("1.0:")));
        assert!(VersionList::any().is_subset_of(&VersionList::any()));
        // Point upper bounds are prefix-inclusive.
        assert!(vl("2.5.6").is_subset_of(&vl("2.3:2.5")));
    }

    #[test]
    fn highest_satisfying_prefers_stable() {
        let versions = [v("1.0"), v("2.0"), v("develop"), v("1.5")];
        let best = vl(":").highest_satisfying(versions.iter()).unwrap();
        assert_eq!(best.to_string(), "2.0");
        let best = vl("1.0:1.9").highest_satisfying(versions.iter()).unwrap();
        assert_eq!(best.to_string(), "1.5");
    }

    #[test]
    fn bumped_versions() {
        assert_eq!(v("1.2.3").bumped().to_string(), "1.2.4");
        assert!(v("1.2.3").bumped() > v("1.2.3"));
    }

    #[test]
    fn numeric_overflow_falls_back_to_text() {
        // A component beyond u64 stays textual; parsing must not panic
        // and ordering must stay total.
        let huge = v("99999999999999999999999999");
        let small = v("1");
        assert!(huge != small);
        let _ = huge.version_cmp(&small);
        assert_eq!(huge.to_string(), "99999999999999999999999999");
    }

    #[test]
    fn non_ascii_versions_rejected() {
        assert!(Version::new("1.2.³").is_err());
        assert!(Version::new("v•1").is_err());
        assert!(Version::new("1..2").is_err());
        assert!(Version::new(".1").is_err());
        assert!(Version::new("1.").is_err());
    }

    #[test]
    fn underscore_and_dash_allowed_in_components() {
        assert_eq!(v("2015.08.10").to_string(), "2015.08.10");
        assert_eq!(v("6.0.0a").to_string(), "6.0.0a");
        assert_eq!(v("15.8b").to_string(), "15.8b");
    }

    #[test]
    fn concrete_detection() {
        assert!(vl("1.2.3").is_concrete());
        assert!(!vl("1.2:1.3").is_concrete());
        assert!(!VersionList::any().is_concrete());
        assert_eq!(vl("1.2.3").concrete().unwrap().to_string(), "1.2.3");
    }
}
