//! Error type shared by the spec layer.

use std::fmt;

/// Errors raised while parsing or combining specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec text did not match the grammar (SC'15 Fig. 3).
    Parse(String),
    /// Two constraints were mutually inconsistent (the paper's
    /// concretization "inconsistency" error: user vs. package conflicts).
    Conflict(String),
    /// An operation required a concrete spec but got an abstract one.
    NotConcrete(String),
}

impl SpecError {
    /// A parse error with the given message.
    pub fn parse(msg: impl Into<String>) -> SpecError {
        SpecError::Parse(msg.into())
    }

    /// A constraint-conflict error with the given message.
    pub fn conflict(msg: impl Into<String>) -> SpecError {
        SpecError::Conflict(msg.into())
    }

    /// A not-concrete error with the given message.
    pub fn not_concrete(msg: impl Into<String>) -> SpecError {
        SpecError::NotConcrete(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(m) => write!(f, "spec parse error: {m}"),
            SpecError::Conflict(m) => write!(f, "constraint conflict: {m}"),
            SpecError::NotConcrete(m) => write!(f, "spec not concrete: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}
