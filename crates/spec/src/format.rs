//! Canonical textual rendering of specs.
//!
//! The canonical form is compact (no spaces inside a node's constraints),
//! with variants sorted by name and dependencies sorted by package name:
//!
//! ```text
//! mpileaks@1.2%gcc@4.7.3+debug~qt=bgq ^callpath@1.1 ^openmpi@1.4.7
//! ```
//!
//! Rendering round-trips: parsing the canonical form yields an equal
//! [`Spec`] (property-tested in `tests/`).

use std::fmt;

use crate::spec::Spec;

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(self, f)?;
        for dep in self.dependencies.values() {
            write!(f, " ^")?;
            write_node(dep, f)?;
        }
        Ok(())
    }
}

/// Write one node's constraints (no dependency clauses).
fn write_node(spec: &Spec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Some(name) = &spec.name {
        write!(f, "{name}")?;
    }
    if !spec.versions.is_any() {
        write!(f, "@{}", spec.versions)?;
    }
    if let Some(c) = &spec.compiler {
        write!(f, "%{c}")?;
    }
    for (var, on) in &spec.variants {
        write!(f, "{}{var}", if *on { '+' } else { '~' })?;
    }
    if let Some(arch) = &spec.architecture {
        write!(f, "={arch}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        Spec::parse(text).unwrap().to_string()
    }

    #[test]
    fn canonical_ordering() {
        assert_eq!(
            canon("mpileaks =bgq +debug %gcc@4.5 @1.2"),
            "mpileaks@1.2%gcc@4.5+debug=bgq"
        );
    }

    #[test]
    fn dependencies_sorted_by_name() {
        assert_eq!(
            canon("mpileaks ^libelf@0.8.11 ^callpath@1.0"),
            "mpileaks ^callpath@1.0 ^libelf@0.8.11"
        );
    }

    #[test]
    fn roundtrip_table2_examples() {
        for text in [
            "mpileaks",
            "mpileaks@1.1.2",
            "mpileaks@1.1.2%gcc",
            "mpileaks@1.1.2%intel@14.1+debug",
            "mpileaks@1.1.2=bgq",
            "mpileaks@1.1.2 ^mvapich2@1.9",
            "mpileaks@1.2:1.4%gcc@4.7.5~debug=bgq ^callpath@1.1%gcc@4.7.2 ^openmpi@1.4.7",
        ] {
            let spec = Spec::parse(text).unwrap();
            let reparsed = Spec::parse(&spec.to_string()).unwrap();
            assert_eq!(spec, reparsed, "round-trip failed for `{text}`");
        }
    }

    #[test]
    fn anonymous_spec_formats() {
        assert_eq!(canon("%gcc@:4"), "%gcc@:4");
        assert_eq!(canon("+mpi"), "+mpi");
    }
}
