//! Abstract build specs: partially-constrained descriptions of a build.
//!
//! A [`Spec`] is what the paper calls an *abstract spec* (SC'15 §3.2): the
//! root package's constraints plus a flat set of named constraints on
//! dependencies, exactly as written with the `^` sigil. Because a build DAG
//! never contains two versions of one package (§3.2.1), a dependency
//! constraint is addressed by package name alone and applies wherever that
//! package appears in the DAG — the user "does not need to consider DAG
//! connectivity to add constraints".
//!
//! Fully resolved builds are represented separately by
//! [`crate::dag::ConcreteDag`]; the concretizer (in the `spack-concretize`
//! crate) turns one into the other.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::error::SpecError;
use crate::version::{Version, VersionList};

/// A compiler constraint: toolchain name plus optional version constraint,
/// written `%gcc@4.7.3`. The name refers to the full toolchain (C, C++,
/// Fortran 77/90), per §3.2.3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompilerSpec {
    /// Toolchain name, e.g. `gcc`, `intel`, `clang`, `xl`, `pgi`.
    pub name: String,
    /// Version constraint; `VersionList::any()` when only the name is given.
    pub versions: VersionList,
}

impl CompilerSpec {
    /// A compiler constraint with no version restriction.
    pub fn by_name(name: impl Into<String>) -> CompilerSpec {
        CompilerSpec {
            name: name.into(),
            versions: VersionList::any(),
        }
    }

    /// A fully pinned compiler.
    pub fn exact(name: impl Into<String>, version: &str) -> Result<CompilerSpec, SpecError> {
        Ok(CompilerSpec {
            name: name.into(),
            versions: VersionList::exact(Version::new(version)?),
        })
    }

    /// Is the version pinned to a single value?
    pub fn is_concrete(&self) -> bool {
        self.versions.is_concrete()
    }

    /// Does `self` (the more-constrained side) satisfy `other`?
    pub fn satisfies(&self, other: &CompilerSpec) -> bool {
        self.name == other.name && self.versions.is_subset_of(&other.versions)
    }

    /// Could some concrete compiler satisfy both?
    pub fn intersects(&self, other: &CompilerSpec) -> bool {
        self.name == other.name && self.versions.overlaps(&other.versions)
    }

    /// Merge `other`'s constraints into `self`.
    pub fn constrain(&mut self, other: &CompilerSpec) -> Result<bool, SpecError> {
        if self.name != other.name {
            return Err(SpecError::conflict(format!(
                "compiler `{}` conflicts with `{}`",
                self.name, other.name
            )));
        }
        self.versions.intersect_with(&other.versions)
    }
}

impl fmt::Display for CompilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.versions.is_any() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}@{}", self.name, self.versions)
        }
    }
}

/// An abstract (possibly partially constrained) build spec.
///
/// Every field is optional; a default `Spec` is fully unconstrained. The
/// `dependencies` map holds the `^name...` clauses keyed by dependency
/// package name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    /// Package name; `None` for anonymous constraint specs such as the
    /// `when=` predicates `%gcc@5:` or `+mpi`.
    pub name: Option<String>,
    /// Version constraint (`@...`).
    pub versions: VersionList,
    /// Compiler constraint (`%...`).
    pub compiler: Option<CompilerSpec>,
    /// Variant settings: `+debug` → `("debug", true)`, `~debug`/`-debug` →
    /// `("debug", false)`.
    pub variants: BTreeMap<String, bool>,
    /// Target architecture (`=...`), e.g. `bgq` or `linux-ppc64`.
    pub architecture: Option<String>,
    /// Constraints on named dependencies (`^...`), keyed by package name.
    pub dependencies: BTreeMap<String, Spec>,
}

impl Spec {
    /// An unconstrained spec for a named package.
    pub fn named(name: impl Into<String>) -> Spec {
        Spec {
            name: Some(name.into()),
            ..Spec::default()
        }
    }

    /// An anonymous, fully unconstrained spec.
    pub fn anonymous() -> Spec {
        Spec::default()
    }

    /// Parse from the spec syntax (SC'15 Fig. 3). Equivalent to `str::parse`.
    pub fn parse(text: &str) -> Result<Spec, SpecError> {
        crate::parse::parse_spec(text)
    }

    /// Builder: constrain the version list.
    pub fn with_versions(mut self, list: &str) -> Spec {
        self.versions = VersionList::parse(list).expect("invalid version list literal");
        self
    }

    /// Builder: set the compiler constraint.
    pub fn with_compiler(mut self, c: CompilerSpec) -> Spec {
        self.compiler = Some(c);
        self
    }

    /// Builder: set a variant flag.
    pub fn with_variant(mut self, name: impl Into<String>, enabled: bool) -> Spec {
        self.variants.insert(name.into(), enabled);
        self
    }

    /// Builder: set the architecture.
    pub fn with_arch(mut self, arch: impl Into<String>) -> Spec {
        self.architecture = Some(arch.into());
        self
    }

    /// Builder: add a dependency constraint.
    pub fn with_dependency(mut self, dep: Spec) -> Spec {
        let name = dep
            .name
            .clone()
            .expect("dependency constraint must be named");
        self.dependencies.insert(name, dep);
        self
    }

    /// True when no constraint at all has been applied to the root node.
    pub fn root_is_unconstrained(&self) -> bool {
        self.versions.is_any()
            && self.compiler.is_none()
            && self.variants.is_empty()
            && self.architecture.is_none()
    }

    /// Node-level concreteness: name, version, compiler (with version), and
    /// architecture are all pinned. (Whether *all* variants are set can
    /// only be judged against the package definition, which lives a layer
    /// up; the concretizer performs that check.)
    pub fn node_is_concrete(&self) -> bool {
        self.name.is_some()
            && self.versions.is_concrete()
            && self.compiler.as_ref().is_some_and(|c| c.is_concrete())
            && self.architecture.is_some()
    }

    /// Does this spec's *root node* satisfy the root-node constraints of
    /// `other`? Strict reading: every constraint `other` imposes must be
    /// implied by `self`. Dependencies are not consulted.
    pub fn node_satisfies(&self, other: &Spec) -> bool {
        if let Some(n) = &other.name {
            if self.name.as_ref() != Some(n) {
                return false;
            }
        }
        if !self.versions.is_subset_of(&other.versions) {
            return false;
        }
        if let Some(oc) = &other.compiler {
            match &self.compiler {
                Some(sc) if sc.satisfies(oc) => {}
                _ => return false,
            }
        }
        for (var, val) in &other.variants {
            if self.variants.get(var) != Some(val) {
                return false;
            }
        }
        if let Some(a) = &other.architecture {
            if self.architecture.as_ref() != Some(a) {
                return false;
            }
        }
        true
    }

    /// Full strict satisfaction: the root node satisfies `other`'s root
    /// constraints and, for every named dependency constraint in `other`,
    /// this spec carries a same-named dependency constraint that satisfies
    /// it.
    pub fn satisfies(&self, other: &Spec) -> bool {
        if !self.node_satisfies(other) {
            return false;
        }
        for (name, constraint) in &other.dependencies {
            match self.dependencies.get(name) {
                Some(dep) if dep.satisfies(constraint) => {}
                _ => return false,
            }
        }
        true
    }

    /// Could any concrete build satisfy both `self` and `other`?
    /// (Loose compatibility, used to detect conflicts early.)
    pub fn intersects(&self, other: &Spec) -> bool {
        if let (Some(a), Some(b)) = (&self.name, &other.name) {
            if a != b {
                return false;
            }
        }
        if !self.versions.overlaps(&other.versions) {
            return false;
        }
        if let (Some(a), Some(b)) = (&self.compiler, &other.compiler) {
            if !a.intersects(b) {
                return false;
            }
        }
        for (var, val) in &other.variants {
            if let Some(mine) = self.variants.get(var) {
                if mine != val {
                    return false;
                }
            }
        }
        if let (Some(a), Some(b)) = (&self.architecture, &other.architecture) {
            if a != b {
                return false;
            }
        }
        for (name, theirs) in &other.dependencies {
            if let Some(mine) = self.dependencies.get(name) {
                if !mine.intersects(theirs) {
                    return false;
                }
            }
        }
        true
    }

    /// Merge all constraints of `other` into `self` — the paper's
    /// constraint-intersection step (Fig. 6, "Intersect Constraints").
    ///
    /// Returns `Ok(true)` when `self` changed, `Ok(false)` when `other`
    /// added nothing new, and `Err` on any inconsistency (e.g. two
    /// different compilers or non-overlapping version ranges), mirroring
    /// how "Spack will stop and notify the user of the conflict".
    pub fn constrain(&mut self, other: &Spec) -> Result<bool, SpecError> {
        let mut changed = false;
        match (&self.name, &other.name) {
            (Some(a), Some(b)) if a != b => {
                return Err(SpecError::conflict(format!(
                    "cannot constrain `{a}` with spec for `{b}`"
                )));
            }
            (None, Some(b)) => {
                self.name = Some(b.clone());
                changed = true;
            }
            _ => {}
        }
        changed |= self.versions.intersect_with(&other.versions)?;
        if let Some(oc) = &other.compiler {
            match &mut self.compiler {
                Some(sc) => changed |= sc.constrain(oc)?,
                None => {
                    self.compiler = Some(oc.clone());
                    changed = true;
                }
            }
        }
        for (var, val) in &other.variants {
            match self.variants.get(var) {
                Some(mine) if mine != val => {
                    return Err(SpecError::conflict(format!(
                        "variant `{}{var}` conflicts with `{}{var}` on {}",
                        if *val { '+' } else { '~' },
                        if *mine { '+' } else { '~' },
                        self.name.as_deref().unwrap_or("<anonymous>"),
                    )));
                }
                Some(_) => {}
                None => {
                    self.variants.insert(var.clone(), *val);
                    changed = true;
                }
            }
        }
        if let Some(a) = &other.architecture {
            match &self.architecture {
                Some(mine) if mine != a => {
                    return Err(SpecError::conflict(format!(
                        "architecture `={mine}` conflicts with `={a}`"
                    )));
                }
                Some(_) => {}
                None => {
                    self.architecture = Some(a.clone());
                    changed = true;
                }
            }
        }
        for (name, dep) in &other.dependencies {
            match self.dependencies.get_mut(name) {
                Some(mine) => changed |= mine.constrain(dep)?,
                None => {
                    self.dependencies.insert(name.clone(), dep.clone());
                    changed = true;
                }
            }
        }
        Ok(changed)
    }

    /// The root-node constraints without any dependency clauses.
    pub fn root_only(&self) -> Spec {
        Spec {
            name: self.name.clone(),
            versions: self.versions.clone(),
            compiler: self.compiler.clone(),
            variants: self.variants.clone(),
            architecture: self.architecture.clone(),
            dependencies: BTreeMap::new(),
        }
    }

    /// The constraint spec for a named dependency, if present.
    pub fn dependency(&self, name: &str) -> Option<&Spec> {
        self.dependencies.get(name)
    }
}

impl FromStr for Spec {
    type Err = SpecError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Spec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> Spec {
        Spec::parse(s).unwrap()
    }

    #[test]
    fn node_satisfies_versions() {
        assert!(spec("mpileaks@1.3").node_satisfies(&spec("mpileaks@1.2:1.4")));
        assert!(!spec("mpileaks@1.5").node_satisfies(&spec("mpileaks@1.2:1.4")));
        assert!(!spec("mpileaks").node_satisfies(&spec("mpileaks@1.2:")));
    }

    #[test]
    fn node_satisfies_compiler_variant_arch() {
        let s = spec("mpileaks@1.1.2 %gcc@4.7.3 +debug =bgq");
        assert!(s.node_satisfies(&spec("mpileaks%gcc")));
        assert!(s.node_satisfies(&spec("mpileaks%gcc@4:")));
        assert!(s.node_satisfies(&spec("mpileaks+debug")));
        assert!(s.node_satisfies(&spec("mpileaks=bgq")));
        assert!(!s.node_satisfies(&spec("mpileaks~debug")));
        assert!(!s.node_satisfies(&spec("mpileaks%intel")));
        assert!(!s.node_satisfies(&spec("mpileaks=linux-x86_64")));
    }

    #[test]
    fn anonymous_constraints_apply_to_any_name() {
        let s = spec("mpileaks@2.3%gcc@4.7.3=bgq");
        assert!(s.node_satisfies(&spec("%gcc")));
        assert!(s.node_satisfies(&spec("@2:")));
        assert!(s.node_satisfies(&spec("=bgq")));
        assert!(!s.node_satisfies(&spec("%xl")));
    }

    #[test]
    fn dependency_satisfaction_is_by_name() {
        let s = spec("mpileaks ^callpath@1.0+debug ^libelf@0.8.11");
        assert!(s.satisfies(&spec("mpileaks^callpath@1:")));
        assert!(s.satisfies(&spec("mpileaks^libelf@0.8:0.9")));
        assert!(!s.satisfies(&spec("mpileaks^callpath@2.0")));
        assert!(!s.satisfies(&spec("mpileaks^dyninst")));
    }

    #[test]
    fn constrain_merges_and_detects_conflicts() {
        let mut s = spec("mpileaks@1.2:");
        let changed = s.constrain(&spec("mpileaks@:1.4 +debug")).unwrap();
        assert!(changed);
        assert_eq!(s.versions.to_string(), "1.2:1.4");
        assert_eq!(s.variants.get("debug"), Some(&true));
        // Re-applying the same constraint changes nothing.
        assert!(!s.constrain(&spec("mpileaks+debug")).unwrap());
        // Conflicting variant errors out.
        assert!(s.constrain(&spec("mpileaks~debug")).is_err());
        // Conflicting name errors out.
        assert!(s.constrain(&spec("openmpi")).is_err());
    }

    #[test]
    fn constrain_merges_dependencies() {
        let mut s = spec("mpileaks ^callpath@1:");
        s.constrain(&spec("mpileaks ^callpath@:2 ^libelf@0.8.11"))
            .unwrap();
        assert_eq!(s.dependencies["callpath"].versions.to_string(), "1:2");
        assert_eq!(s.dependencies["libelf"].versions.to_string(), "0.8.11");
        assert!(s.constrain(&spec("mpileaks ^callpath@3:")).is_err());
    }

    #[test]
    fn intersects_is_loose() {
        assert!(spec("mpileaks@1.2:").intersects(&spec("mpileaks@:1.4")));
        assert!(!spec("mpileaks@1.0").intersects(&spec("mpileaks@2.0")));
        assert!(spec("mpileaks").intersects(&spec("mpileaks%gcc")));
        assert!(!spec("mpileaks%intel").intersects(&spec("mpileaks%gcc")));
        assert!(!spec("mpileaks^mpich@1.9").intersects(&spec("mpileaks^mpich@2:")));
        assert!(spec("mpileaks^callpath@1.5").intersects(&spec("mpileaks^callpath@1:")));
    }

    #[test]
    fn compiler_constrain() {
        let mut c = CompilerSpec::by_name("gcc");
        assert!(c
            .constrain(&CompilerSpec::exact("gcc", "4.7.3").unwrap())
            .unwrap());
        assert!(c.is_concrete());
        assert!(c.constrain(&CompilerSpec::by_name("intel")).is_err());
    }

    #[test]
    fn node_concreteness() {
        assert!(spec("mpileaks@1.0%gcc@4.7.3=linux-x86_64").node_is_concrete());
        assert!(!spec("mpileaks@1.0%gcc=linux-x86_64").node_is_concrete());
        assert!(!spec("mpileaks@1:%gcc@4.7.3=linux-x86_64").node_is_concrete());
        assert!(!spec("mpileaks@1.0%gcc@4.7.3").node_is_concrete());
    }
}
