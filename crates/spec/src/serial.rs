//! Provenance serialization of concrete DAGs (SC'15 §3.4.3).
//!
//! Spack stores "a file that contains the complete concrete spec for the
//! package and its dependencies" inside every install prefix, so a build
//! can be reproduced "even if concretization preferences have changed".
//! This module implements that spec file as a simple, versioned,
//! line-oriented text format (the allowed dependency set has no JSON/YAML
//! serializer, so the format is hand-rolled and round-trip tested).
//!
//! ```text
//! specfile v1
//! node mpileaks builtin
//!   version 1.0
//!   compiler gcc 4.9.2
//!   arch linux-x86_64
//!   variant debug on
//!   dep callpath
//! node callpath builtin
//!   ...
//! root mpileaks
//! ```

use std::collections::BTreeMap;

use crate::dag::{ConcreteCompiler, ConcreteDag, ConcreteNode};
use crate::error::SpecError;
use crate::version::Version;

/// Render a concrete DAG to the spec-file format.
pub fn to_specfile(dag: &ConcreteDag) -> String {
    let mut out = String::from("specfile v1\n");
    // Nodes sorted by name for a canonical file.
    for name in dag.package_names() {
        let id = dag.by_name(name).expect("name from the dag");
        let n = dag.node(id);
        out.push_str(&format!("node {} {}\n", n.name, n.namespace));
        out.push_str(&format!("  version {}\n", n.version));
        out.push_str(&format!(
            "  compiler {} {}\n",
            n.compiler.name, n.compiler.version
        ));
        out.push_str(&format!("  arch {}\n", n.architecture));
        for (var, on) in &n.variants {
            out.push_str(&format!(
                "  variant {var} {}\n",
                if *on { "on" } else { "off" }
            ));
        }
        let mut dep_names: Vec<&str> = n.deps.iter().map(|&d| dag.node(d).name.as_str()).collect();
        dep_names.sort_unstable();
        for d in dep_names {
            out.push_str(&format!("  dep {d}\n"));
        }
    }
    out.push_str(&format!("root {}\n", dag.root_node().name));
    out
}

/// Parse a spec file back into a concrete DAG.
pub fn from_specfile(text: &str) -> Result<ConcreteDag, SpecError> {
    let mut lines = text.lines().peekable();
    match lines.next() {
        Some("specfile v1") => {}
        Some(other) => {
            return Err(SpecError::parse(format!(
                "unknown specfile header `{other}`"
            )))
        }
        None => return Err(SpecError::parse("empty specfile")),
    }

    struct PendingNode {
        node: ConcreteNode,
        dep_names: Vec<String>,
    }
    let mut pending: Vec<PendingNode> = Vec::new();
    let mut root_name: Option<String> = None;

    for line in lines {
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let indented = line.starts_with(' ');
        let mut parts = trimmed.split_whitespace();
        let key = parts.next().unwrap();
        match (indented, key) {
            (false, "node") => {
                let name = parts
                    .next()
                    .ok_or_else(|| SpecError::parse("node without a name"))?;
                let namespace = parts.next().unwrap_or("builtin");
                pending.push(PendingNode {
                    node: ConcreteNode {
                        name: name.to_string(),
                        version: Version::new("0")?,
                        compiler: ConcreteCompiler {
                            name: String::new(),
                            version: Version::new("0")?,
                        },
                        variants: BTreeMap::new(),
                        architecture: String::new(),
                        namespace: namespace.to_string(),
                        deps: Vec::new(),
                    },
                    dep_names: Vec::new(),
                });
            }
            (false, "root") => {
                root_name = Some(
                    parts
                        .next()
                        .ok_or_else(|| SpecError::parse("root without a name"))?
                        .to_string(),
                );
            }
            (true, field) => {
                let current = pending
                    .last_mut()
                    .ok_or_else(|| SpecError::parse(format!("`{field}` before any node")))?;
                match field {
                    "version" => {
                        let v = parts
                            .next()
                            .ok_or_else(|| SpecError::parse("version without value"))?;
                        current.node.version = Version::new(v)?;
                    }
                    "compiler" => {
                        let name = parts
                            .next()
                            .ok_or_else(|| SpecError::parse("compiler without name"))?;
                        let ver = parts
                            .next()
                            .ok_or_else(|| SpecError::parse("compiler without version"))?;
                        current.node.compiler = ConcreteCompiler {
                            name: name.to_string(),
                            version: Version::new(ver)?,
                        };
                    }
                    "arch" => {
                        current.node.architecture = parts
                            .next()
                            .ok_or_else(|| SpecError::parse("arch without value"))?
                            .to_string();
                    }
                    "variant" => {
                        let name = parts
                            .next()
                            .ok_or_else(|| SpecError::parse("variant without name"))?;
                        let value = match parts.next() {
                            Some("on") => true,
                            Some("off") => false,
                            other => {
                                return Err(SpecError::parse(format!(
                                    "variant `{name}` has invalid value {other:?}"
                                )))
                            }
                        };
                        current.node.variants.insert(name.to_string(), value);
                    }
                    "dep" => {
                        current.dep_names.push(
                            parts
                                .next()
                                .ok_or_else(|| SpecError::parse("dep without name"))?
                                .to_string(),
                        );
                    }
                    other => {
                        return Err(SpecError::parse(format!("unknown field `{other}`")));
                    }
                }
            }
            (false, other) => {
                return Err(SpecError::parse(format!("unknown record `{other}`")));
            }
        }
    }

    let index: BTreeMap<String, usize> = pending
        .iter()
        .enumerate()
        .map(|(i, p)| (p.node.name.clone(), i))
        .collect();
    if index.len() != pending.len() {
        return Err(SpecError::parse("duplicate node in specfile"));
    }
    let mut nodes = Vec::with_capacity(pending.len());
    for p in &pending {
        let mut n = p.node.clone();
        n.deps = p
            .dep_names
            .iter()
            .map(|d| {
                index
                    .get(d)
                    .copied()
                    .ok_or_else(|| SpecError::parse(format!("dep `{d}` has no node record")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        nodes.push(n);
    }
    let root_name = root_name.ok_or_else(|| SpecError::parse("specfile missing root record"))?;
    let root = *index
        .get(&root_name)
        .ok_or_else(|| SpecError::parse(format!("root `{root_name}` has no node record")))?;
    ConcreteDag::new(nodes, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{node, DagBuilder};

    fn sample() -> ConcreteDag {
        let mut b = DagBuilder::new();
        let root = b
            .add_node({
                let mut n = node("mpileaks", "1.0", ("gcc", "4.9.2"), "linux-x86_64");
                n.variants.insert("debug".into(), true);
                n.variants.insert("profile".into(), false);
                n
            })
            .unwrap();
        let cp = b
            .add_node(node("callpath", "1.0.2", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        let le = b
            .add_node(node("libelf", "0.8.11", ("gcc", "4.9.2"), "linux-x86_64"))
            .unwrap();
        b.add_edge(root, cp);
        b.add_edge(cp, le);
        b.build(root).unwrap()
    }

    #[test]
    fn roundtrip() {
        let dag = sample();
        let text = to_specfile(&dag);
        let back = from_specfile(&text).unwrap();
        assert_eq!(back.len(), dag.len());
        assert_eq!(back.root_node().name, "mpileaks");
        assert_eq!(
            crate::hash::dag_hash(&back),
            crate::hash::dag_hash(&dag),
            "serialization must preserve identity"
        );
        // Canonical: serializing again yields the identical text.
        assert_eq!(to_specfile(&back), text);
    }

    #[test]
    fn preserves_variants() {
        let back = from_specfile(&to_specfile(&sample())).unwrap();
        let root = back.root_node();
        assert_eq!(root.variants.get("debug"), Some(&true));
        assert_eq!(root.variants.get("profile"), Some(&false));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_specfile("").is_err());
        assert!(from_specfile("specfile v2\n").is_err());
        assert!(from_specfile("specfile v1\nroot ghost\n").is_err());
        assert!(from_specfile("specfile v1\nnode a builtin\n  dep ghost\nroot a\n").is_err());
        assert!(from_specfile("specfile v1\n  version 1.0\n").is_err());
        assert!(from_specfile(
            "specfile v1\nnode a builtin\n  version 1\n  compiler gcc 4\n  arch x\n  variant d maybe\nroot a\n"
        )
        .is_err());
    }

    #[test]
    fn missing_root_rejected() {
        assert!(from_specfile("specfile v1\nnode a builtin\n  version 1\n").is_err());
    }
}
