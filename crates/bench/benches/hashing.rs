//! Criterion benches for spec hashing (§3.4.2) and the from-scratch
//! SHA-256/MD5 underneath it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spack_bench::{bench_config, bench_repos};
use spack_concretize::Concretizer;
use spack_spec::sha::{md5_hex, sha256_hex};
use spack_spec::{serial, DagHashes, Spec};
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let repos = bench_repos();
    let config = bench_config();
    let ares = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("ares").unwrap())
        .unwrap();
    let mpileaks = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("mpileaks").unwrap())
        .unwrap();

    c.bench_function("dag_hash_mpileaks_10", |b| {
        b.iter(|| black_box(DagHashes::compute(black_box(&mpileaks))))
    });
    c.bench_function("dag_hash_ares_47", |b| {
        b.iter(|| black_box(DagHashes::compute(black_box(&ares))))
    });

    c.bench_function("specfile_roundtrip_ares", |b| {
        b.iter(|| {
            let text = serial::to_specfile(black_box(&ares));
            black_box(serial::from_specfile(&text).unwrap())
        })
    });

    let mut group = c.benchmark_group("digest_throughput");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("sha256_{size}B"), |b| {
            b.iter(|| black_box(sha256_hex(black_box(&data))))
        });
        group.bench_function(format!("md5_{size}B"), |b| {
            b.iter(|| black_box(md5_hex(black_box(&data))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
