//! Criterion benches for the DESIGN.md §6 ablations: greedy vs
//! backtracking resolution and reverse-index vs linear provider scans.

use criterion::{criterion_group, criterion_main, Criterion};
use spack_bench::{bench_config, bench_repos};
use spack_concretize::{BacktrackingConcretizer, Concretizer, ProviderIndex};
use spack_spec::Spec;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let repos = bench_repos();
    let config = bench_config();
    let request = Spec::parse("mpileaks").unwrap();

    c.bench_function("greedy_mpileaks", |b| {
        let concretizer = Concretizer::new(&repos, &config);
        b.iter(|| black_box(concretizer.concretize(black_box(&request)).unwrap()))
    });
    c.bench_function("backtracking_mpileaks_passthrough", |b| {
        let concretizer = BacktrackingConcretizer::new(&repos, &config);
        b.iter(|| black_box(concretizer.concretize(black_box(&request)).unwrap()))
    });

    let index = ProviderIndex::build(&repos);
    let mpi2 = Spec::parse("mpi@2:").unwrap();
    c.bench_function("provider_query_indexed", |b| {
        b.iter(|| black_box(index.candidates_for(black_box(&mpi2))))
    });
    c.bench_function("provider_query_linear_scan", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for pkg in repos.visible_packages() {
                for p in &pkg.provides {
                    if p.vspec.name.as_deref() == Some("mpi")
                        && p.vspec.versions.overlaps(&mpi2.versions)
                    {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
