//! Criterion benches for the Fig. 3 grammar: lexing, parsing, formatting.

use criterion::{criterion_group, criterion_main, Criterion};
use spack_spec::Spec;
use std::hint::black_box;

fn bench_parsing(c: &mut Criterion) {
    let simple = "mpileaks";
    let medium = "mpileaks@1.2:1.4%gcc@4.7.5+debug=bgq";
    let complex = "mpileaks @1.2:1.4 %gcc@4.7.5 -debug =bgq \
                   ^callpath @1.1 %gcc@4.7.2 +debug \
                   ^openmpi @1.4.7 ^libelf @0.8.11:0.8.13 ^boost@1.59.0";

    let mut group = c.benchmark_group("spec_parse");
    for (label, text) in [("simple", simple), ("medium", medium), ("complex", complex)] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(Spec::parse(black_box(text)).unwrap()))
        });
    }
    group.finish();

    let spec = Spec::parse(complex).unwrap();
    c.bench_function("spec_format_complex", |b| {
        b.iter(|| black_box(spec.to_string()))
    });

    let concrete = Spec::parse("mpileaks@2.3%gcc@4.9.3+debug=linux-x86_64").unwrap();
    let constraint = Spec::parse("mpileaks@2:%gcc+debug").unwrap();
    c.bench_function("spec_node_satisfies", |b| {
        b.iter(|| black_box(concrete.node_satisfies(black_box(&constraint))))
    });

    c.bench_function("spec_constrain", |b| {
        b.iter(|| {
            let mut s = Spec::parse("mpileaks@1.2:").unwrap();
            s.constrain(black_box(&constraint)).ok();
            black_box(s)
        })
    });
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
