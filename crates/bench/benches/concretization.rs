//! Criterion benches for concretization (the Fig. 8 quantity).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spack_bench::{bench_config, bench_repos};
use spack_concretize::Concretizer;
use spack_spec::Spec;
use std::hint::black_box;

fn bench_concretize(c: &mut Criterion) {
    let repos = bench_repos();
    let config = bench_config();
    let concretizer = Concretizer::new(&repos, &config);

    let mut group = c.benchmark_group("concretize");
    for (label, text) in [
        ("libelf_1node", "libelf"),
        ("mpileaks_10node", "mpileaks"),
        ("openspeedshop_19node", "openspeedshop"),
        ("paraview_30node", "paraview"),
        ("ares_47node", "ares"),
        (
            "constrained_fig2c",
            "mpileaks@2.3 ^callpath@1.0+debug ^libelf@0.8.11",
        ),
    ] {
        let request = Spec::parse(text).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| black_box(concretizer.concretize(black_box(&request)).unwrap()))
        });
    }
    group.finish();

    // Provider-index construction (amortized once per concretizer).
    c.bench_function("provider_index_build", |b| {
        b.iter_batched(
            || (),
            |_| black_box(spack_concretize::ProviderIndex::build(&repos)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_concretize);
criterion_main!(benches);
