//! Criterion benches for the compiler-wrapper rewrite path (§3.5.2/§3.5.3:
//! "argument parsing and indirection cause ... a small but noticeable
//! performance overhead").

use criterion::{criterion_group, criterion_main, Criterion};
use spack_buildenv::{Language, Wrapper};
use spack_spec::{ConcreteCompiler, Version};
use std::hint::black_box;

fn wrapper_with_deps(n: usize) -> Wrapper {
    let deps: Vec<String> = (0..n)
        .map(|i| format!("/spack/opt/linux-x86_64/gcc-4.9.3/dep{i}-1.0-0123abcd"))
        .collect();
    Wrapper::new(
        ConcreteCompiler {
            name: "gcc".to_string(),
            version: Version::new("4.9.3").unwrap(),
        },
        &deps,
    )
}

fn bench_wrappers(c: &mut Criterion) {
    let compile_args: Vec<String> = ["-O2", "-g", "-fPIC", "-c", "src.c", "-o", "src.o"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let link_args: Vec<String> = (0..64)
        .map(|i| format!("obj{i}.o"))
        .chain([
            "-o".to_string(),
            "libfoo.so".to_string(),
            "-lelf".to_string(),
        ])
        .collect();

    let mut group = c.benchmark_group("wrapper_rewrite");
    for deps in [0usize, 4, 16, 46] {
        // 46 = the ARES dependency count from the paper's abstract.
        let w = wrapper_with_deps(deps);
        group.bench_function(format!("compile_{deps}_deps"), |b| {
            b.iter(|| black_box(w.rewrite(Language::C, black_box(&compile_args))))
        });
        group.bench_function(format!("link_{deps}_deps"), |b| {
            b.iter(|| black_box(w.rewrite(Language::C, black_box(&link_args))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wrappers);
criterion_main!(benches);
