//! Shared fixtures for the spack-rs benchmark harness.
//!
//! Every table and figure of the SC'15 evaluation has a regeneration
//! binary in `src/bin/` (see DESIGN.md §2 for the index); the Criterion
//! benches in `benches/` cover the hot paths (concretization, spec
//! parsing, wrapper rewriting, hashing) and the ablations called out in
//! DESIGN.md §6.

use spack_concretize::Config;
use spack_package::RepoStack;
use spack_repo_builtin::repo_stack;

/// The standard benchmark repository: the full builtin stack.
pub fn bench_repos() -> RepoStack {
    repo_stack()
}

/// The standard benchmark configuration: an LLNL-like Linux cluster with
/// gcc/intel/clang toolchains and explicit provider policies.
pub fn bench_config() -> Config {
    let mut c = Config::new();
    c.register_compiler("gcc", "4.9.3", &[]);
    c.register_compiler("gcc", "4.7.4", &[]);
    c.register_compiler("intel", "14.0.4", &[]);
    c.register_compiler("intel", "15.0.1", &[]);
    c.register_compiler("clang", "3.6.2", &[]);
    c.register_compiler("pgi", "15.4", &[]);
    c.register_compiler("xl", "12.1", &["bgq"]);
    c.push_scope_text(
        "site",
        "arch = linux-x86_64\n\
         compiler = gcc\n\
         providers mpi = mvapich2,openmpi,mpich\n\
         providers blas = netlib-blas\n\
         providers lapack = netlib-lapack\n\
         providers fft = fftw\n",
    )
    .expect("valid bench config");
    c
}

/// The machine profiles of Fig. 8: the paper measures concretization on
/// an Intel Haswell, an Intel Sandy Bridge, and an IBM Power7 front-end
/// node. We run on one machine, so the other two series are derived with
/// the paper's observed relative speed factors (at 50 nodes: ~4 s Haswell
/// vs ~9 s Power7).
pub const MACHINE_PROFILES: &[(&str, f64)] = &[
    ("Linux, Intel Haswell, 2.3GHz", 1.0),
    ("Linux, Intel Sandy Bridge, 2.6GHz", 1.35),
    ("Linux, IBM Power7, 3.6Ghz", 2.25),
];
