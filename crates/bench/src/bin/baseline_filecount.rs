//! §2 reproduction: "the number of package files required for most
//! existing systems scales with the number of version combinations, not
//! the number of packages ... the EasyBuild system has over 3,300 files
//! for several permutations of around 600 packages."
//!
//! This harness counts, for our builtin repository and a realistic site
//! build matrix, how many package files each packaging model needs:
//!
//! * **Spack model** — one parameterized template per package;
//! * **EasyBuild-style model** — one file per (package, version,
//!   toolchain) combination actually built, where a toolchain is a
//!   (compiler, MPI) pair;
//! * **per-configuration model** (classic port trees) — one file per
//!   full configuration including variants.
//!
//! Run: `cargo run -p spack-bench --bin baseline_filecount`

use spack_bench::bench_repos;

fn main() {
    let repos = bench_repos();
    let packages = repos.visible_packages();
    let n_packages = packages.len();
    let n_versions: usize = packages.iter().map(|p| p.versions.len()).sum();

    // The site build matrix of Table 3: 6 compilers x 5 MPIs (not all
    // pairs exist; the paper's matrix has 10-11 live combos).
    let toolchains = 10usize;

    // Spack: one template per package, period.
    let spack_files = n_packages;

    // EasyBuild-style: a file per (package, version, toolchain).
    let easybuild_files = n_versions * toolchains;

    // Port-style with variants: multiply by the package's variant space.
    let port_files: usize = packages
        .iter()
        .map(|p| p.versions.len() * (1usize << p.variants.len().min(4)) * toolchains)
        .sum();

    println!("2: package-file counts by packaging model");
    println!("  repository: {n_packages} packages, {n_versions} (package, version) pairs");
    println!("  site build matrix: {toolchains} (compiler, MPI) toolchains\n");
    println!("  {:34} {:>9}", "model", "files");
    println!(
        "  {:34} {:>9}",
        "Spack (parameterized templates)", spack_files
    );
    println!(
        "  {:34} {:>9}",
        "EasyBuild-style (per toolchain)", easybuild_files
    );
    println!(
        "  {:34} {:>9}",
        "port-style (per configuration)", port_files
    );
    println!(
        "\n  ratio EasyBuild/Spack: {:.1}x   port/Spack: {:.1}x",
        easybuild_files as f64 / spack_files as f64,
        port_files as f64 / spack_files as f64
    );
    println!(
        "\n  paper: EasyBuild needs >3,300 files for ~600 packages (5.5x);\n  \
         here {easybuild_files} files for {n_packages} packages ({:.1}x) — same explosion,\n  \
         eliminated by first-class parameters.",
        easybuild_files as f64 / n_packages as f64
    );
}
