//! Fig. 8 companion: concretization scaling on *synthetic* package
//! graphs beyond the builtin repository's 47-node maximum.
//!
//! The paper extrapolates: "While concretization could become more
//! costly, we do not expect to see packages with thousands of
//! dependencies in the near future." This harness generates random
//! layered dependency graphs (a rand-seeded mix of chains, fan-outs, and
//! diamonds, the shapes real package DAGs are made of) at sizes up to
//! 320 nodes and measures concretization time, exposing the quadratic
//! trend the paper observes at 50 nodes.
//!
//! Run: `cargo run --release -p spack-bench --bin fig8_synthetic`
//! With `--golden`, timing is skipped and only the seeded graph
//! structure (requested → actual closure size) is printed, so the
//! output is byte-stable for the CI golden gate.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spack_concretize::{Concretizer, Config};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::Spec;

/// Build a synthetic repository whose root package closure has ~n nodes:
/// packages are arranged in layers, each depending on 1-4 packages from
/// lower layers.
fn synthetic_repo(n: usize, seed: u64) -> RepoStack {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut repo = Repository::new("synthetic");
    for i in 0..n {
        let name = format!("syn{i:04}");
        let mut b = PackageBuilder::new(&name)
            .describe("synthetic workload package")
            .version("1.0", "aa")
            .version("1.1", "ab")
            .variant("debug", false, "debug build");
        // Depend on a handful of earlier packages (acyclic by index).
        if i > 0 {
            let fanout = rng.random_range(1..=4usize.min(i));
            let mut picked = std::collections::BTreeSet::new();
            for _ in 0..fanout {
                // Bias towards nearby packages: realistic layering.
                let lo = i.saturating_sub(12);
                picked.insert(rng.random_range(lo..i));
            }
            for d in picked {
                b = b.depends_on(&format!("syn{d:04}"));
            }
        }
        repo.register(b.build().expect("valid synthetic package"))
            .expect("unique synthetic package");
    }
    RepoStack::with_builtin(repo)
}

fn main() {
    let golden = std::env::args().any(|a| a == "--golden");
    let mut config = Config::new();
    config.register_compiler("gcc", "4.9.3", &[]);
    config
        .push_scope_text("site", "arch = linux-x86_64\ncompiler = gcc\n")
        .unwrap();

    if golden {
        println!("# Fig. 8 (synthetic, golden): closure size per seeded graph");
        println!("# columns: nodes_requested nodes_actual");
    } else {
        println!("# Fig. 8 (synthetic): concretization time vs DAG size");
        println!("# columns: nodes_requested nodes_actual ms (avg of 5)");
    }
    let mut series = Vec::new();
    for &n in &[10usize, 20, 40, 80, 160, 320] {
        let repos = synthetic_repo(n, 0x5eed + n as u64);
        let concretizer = Concretizer::new(&repos, &config);
        // The last package's closure is the deepest.
        let root = format!("syn{:04}", n - 1);
        let request = Spec::named(&root);
        let dag = concretizer
            .concretize(&request)
            .expect("synthetic concretizes");
        if golden {
            println!("{n:5} {:5}", dag.len());
            continue;
        }
        let start = Instant::now();
        for _ in 0..5 {
            concretizer.concretize(&request).unwrap();
        }
        let ms = start.elapsed().as_secs_f64() / 5.0 * 1e3;
        println!("{n:5} {:5} {ms:10.3}", dag.len());
        series.push((dag.len() as f64, ms));
    }
    if golden {
        return;
    }
    // Fit: is growth superlinear? Compare cost ratios to size ratios.
    let (s0, t0) = series[1];
    let (s1, t1) = series.last().copied().unwrap();
    let size_ratio = s1 / s0;
    let time_ratio = t1 / t0;
    println!(
        "\n# size x{size_ratio:.1} -> time x{time_ratio:.1} (superlinear: {})",
        time_ratio > size_ratio
    );
    println!("# paper: 'we begin to see a quadratic trend' toward 50 nodes.");
}
