//! Scheduler scaling: simulated makespan vs. worker count over the ARES
//! DAG.
//!
//! Installs the full ares development stack once per `jobs` level on the
//! parallel frontier scheduler and reports the deterministic list-
//! scheduling makespan for that many build slots, its speedup over the
//! serial walk, and slot efficiency. The critical path is printed as the
//! lower bound no slot count can beat; `jobs = 1` reproduces the serial
//! time exactly.
//!
//! Every figure is derived from per-node *virtual* costs — the wall
//! clock never enters — so the table is byte-identical on any machine
//! and at any actual thread interleaving, which `ci.sh` exploits as a
//! golden regression gate against `results/sched_scaling.txt`.
//!
//! Run: `cargo run -p spack-bench --bin sched_scaling`

use parking_lot::Mutex;
use spack_bench::{bench_config, bench_repos};
use spack_buildenv::{install_dag, InstallOptions};
use spack_concretize::Concretizer;
use spack_spec::Spec;
use spack_store::Database;

const JOBS: &[usize] = &[1, 2, 4, 8];

fn main() {
    let repos = bench_repos();
    let config = bench_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("ares@develop~lite").unwrap())
        .expect("ares concretizes");

    println!(
        "Frontier scheduler scaling over the ares DAG ({} nodes)",
        dag.len()
    );
    println!("  list-scheduling makespan on N build slots, virtual time\n");
    println!(
        "{:>6} {:>12} {:>10} {:>12}",
        "jobs", "makespan", "speedup", "efficiency"
    );

    let mut serial = 0.0_f64;
    let mut critical = 0.0_f64;
    for &jobs in JOBS {
        let opts = InstallOptions {
            jobs,
            ..Default::default()
        };
        let db = Mutex::new(Database::new("/spack/opt"));
        let report = install_dag(&dag, &repos, &db, &opts).expect("clean install succeeds");
        assert_eq!(report.built_count(), dag.len(), "fresh store builds all");
        assert!(
            report.makespan_seconds >= report.critical_path_seconds - 1e-9,
            "makespan below the critical-path bound"
        );
        serial = report.serial_seconds;
        critical = report.critical_path_seconds;
        let speedup = report.serial_seconds / report.makespan_seconds;
        println!(
            "{:>6} {:>11.1}s {:>9.2}x {:>11.1}%",
            jobs,
            report.makespan_seconds,
            speedup,
            100.0 * speedup / jobs as f64
        );
    }

    println!(
        "\n{:>6} {:>11.1}s  (serial walk, jobs = 1 by definition)",
        "1", serial
    );
    println!(
        "{:>6} {:>11.1}s  (critical path: lower bound at any jobs)",
        "inf", critical
    );
}
