//! Fig. 13 regeneration: the ARES dependency DAG, colored by package type
//! (physics / utility / math / external).
//!
//! Prints the node census per category (the paper: ARES + 11 physics +
//! 4 math/meshing + 8 utility + 23 external = 47) and emits GraphViz dot
//! on request (`--dot`).
//!
//! Run: `cargo run -p spack-bench --bin fig13_ares_dag [--dot]`

use spack_bench::{bench_config, bench_repos};
use spack_concretize::Concretizer;
use spack_spec::Spec;

fn main() {
    let dot_mode = std::env::args().any(|a| a == "--dot");
    let repos = bench_repos();
    let config = bench_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("ares").unwrap())
        .expect("ares concretizes");

    let category = |name: &str| -> &'static str {
        if name == "ares" {
            return "root";
        }
        match repos.get(name).and_then(|p| p.category.as_deref()) {
            Some("physics") => "physics",
            Some("math") => "math",
            Some("utility") => "utility",
            _ => "external",
        }
    };

    if dot_mode {
        print!("{}", dag.to_dot(|n| category(&n.name)));
        return;
    }

    println!(
        "Fig. 13: dependencies of ARES ({} packages, {} edges)\n",
        dag.len(),
        dag.edge_count()
    );
    for cat in ["root", "physics", "math", "utility", "external"] {
        let members: Vec<&str> = dag
            .package_names()
            .into_iter()
            .filter(|n| category(n) == cat)
            .collect();
        println!("{:9} ({:2}): {}", cat, members.len(), members.join(", "));
    }
    println!("\npaper: ARES depends on 11 LLNL physics packages, 4 LLNL math/meshing");
    println!("libraries, 8 LLNL utility libraries, and 23 external packages (incl. MPI/BLAS).");

    // Per-node fan-in/fan-out extremes, to show DAG complexity.
    let mut fan_in = vec![0usize; dag.len()];
    for n in dag.nodes() {
        for &d in &n.deps {
            fan_in[d] += 1;
        }
    }
    let (most_needed, count) = fan_in
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, &c)| (dag.node(i).name.clone(), c))
        .unwrap();
    println!("\nmost-depended-on package: {most_needed} ({count} dependents)");
    println!("root out-degree: {}", dag.root_node().deps.len());
}
