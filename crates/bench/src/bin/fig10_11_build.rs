//! Figs. 10 & 11 regeneration: build time with and without compiler
//! wrappers, on NFS vs. node-local temp filesystems, for the paper's
//! seven packages (libelf, libpng, mpileaks, libdwarf, python, dyninst,
//! LAPACK).
//!
//! Three scenarios per package, as in Fig. 10's legend:
//!   * Wrappers, NFS
//!   * Wrappers, Temp FS
//!   * No Wrappers, Temp FS
//!
//! Fig. 11 derives two overheads:
//!   * NFS overhead      = (wrappers,NFS − wrappers,temp) / wrappers,temp
//!   * wrapper overhead  = (wrappers,temp − no-wrappers,temp) / no-wrappers,temp
//!
//! Builds are simulated (DESIGN.md §3): the operation stream of each
//! build-system phase is replayed against the virtual-clock filesystem
//! and the real wrapper-rewrite code path, with per-package workloads
//! calibrated against the paper's reported overheads.
//!
//! Run: `cargo run -p spack-bench --bin fig10_11_build`

use spack_bench::bench_repos;
use spack_buildenv::{run_build, BuildSettings, FsProfile, Wrapper};
use spack_spec::{ConcreteCompiler, Version};

/// (package, Fig. 10 label, paper NFS overhead %, paper wrapper overhead %).
const PACKAGES: &[(&str, &str, f64, f64)] = &[
    ("libelf", "libelf", 48.0, 9.5),
    ("libpng", "libpng", 62.7, 9.4),
    ("mpileaks", "mpileaks", 35.6, 12.3),
    ("libdwarf", "libdwarf", 17.7, 6.6),
    ("python", "python", 46.4, 10.2),
    ("dyninst", "dyninst", 4.9, -0.4),
    ("netlib-lapack", "LAPACK", 16.6, 6.0),
];

fn main() {
    let repos = bench_repos();
    let wrapper = Wrapper::new(
        ConcreteCompiler {
            name: "gcc".to_string(),
            version: Version::new("4.9.3").unwrap(),
        },
        &[
            "/spack/opt/linux-x86_64/gcc-4.9.3/dep-a".to_string(),
            "/spack/opt/linux-x86_64/gcc-4.9.3/dep-b".to_string(),
        ],
    );

    println!("Fig. 10: build time (simulated seconds), three scenarios");
    println!(
        "{:10} {:>14} {:>17} {:>21}",
        "package", "Wrappers, NFS", "Wrappers, Temp FS", "No Wrappers, Temp FS"
    );
    let mut rows = Vec::new();
    for (name, label, _, _) in PACKAGES {
        let pkg = repos.get(name).expect("package exists");
        let node = spack_spec::Spec::parse(&format!("{name}%gcc@4.9.3=linux-x86_64")).unwrap();
        let recipe = pkg.recipe_for(&node).expect("recipe");
        let run = |wrappers: bool, fs: FsProfile| {
            run_build(
                recipe,
                &pkg.workload,
                &wrapper,
                BuildSettings {
                    use_wrappers: wrappers,
                    stage_fs: fs,
                },
            )
            .total()
        };
        let wrap_nfs = run(true, FsProfile::Nfs);
        let wrap_tmp = run(true, FsProfile::TmpFs);
        let nowrap_tmp = run(false, FsProfile::TmpFs);
        println!("{label:10} {wrap_nfs:>14.1} {wrap_tmp:>17.1} {nowrap_tmp:>21.1}");
        rows.push((*label, wrap_nfs, wrap_tmp, nowrap_tmp));
    }

    println!("\nFig. 11: overhead (% of wrapper-less / temp-FS runtime)");
    println!(
        "{:10} {:>12} {:>12}   {:>12} {:>12}",
        "package", "NFS %", "paper", "wrappers %", "paper"
    );
    let mut nfs_sum = 0.0;
    let mut wrap_sum = 0.0;
    for ((label, wrap_nfs, wrap_tmp, nowrap_tmp), (_, _, paper_nfs, paper_wrap)) in
        rows.iter().zip(PACKAGES.iter())
    {
        let nfs_pct = (wrap_nfs - wrap_tmp) / wrap_tmp * 100.0;
        let wrap_pct = (wrap_tmp - nowrap_tmp) / nowrap_tmp * 100.0;
        nfs_sum += nfs_pct;
        wrap_sum += wrap_pct;
        println!(
            "{label:10} {nfs_pct:>12.1} {paper_nfs:>12.1}   {wrap_pct:>12.1} {paper_wrap:>12.1}"
        );
    }
    let n = PACKAGES.len() as f64;
    println!(
        "\nmean NFS overhead: {:.1}% (paper: ~33% on average, up to 62.7%)",
        nfs_sum / n
    );
    println!(
        "mean wrapper overhead: {:.1}% (paper: \"only around 10%\")",
        wrap_sum / n
    );
}
