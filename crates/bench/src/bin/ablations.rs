//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. greedy vs. backtracking concretization (the paper's §4.5 future
//!    work) — success rate and cost on conflict-prone requests;
//! 2. provider reverse-index vs. a linear scan of all packages;
//! 3. hash-based sub-DAG reuse (Fig. 9) vs. rebuild-everything;
//! 4. parallel (ready-queue) vs. serial installs.
//!
//! Run: `cargo run --release -p spack-bench --bin ablations`
//! With `--golden`, measured wall-clock figures (backtracking ms,
//! index-vs-scan microseconds) are stripped; the structural results —
//! ok/CONFLICT verdicts, attempt counts, candidate counts, and all
//! virtual-time figures — are byte-stable for the CI golden gate.

use std::time::Instant;

use parking_lot::Mutex;
use spack_bench::{bench_config, bench_repos};
use spack_buildenv::{install_dag, InstallOptions};
use spack_concretize::{BacktrackingConcretizer, Concretizer, ProviderIndex};
use spack_package::{PackageBuilder, Repository};
use spack_spec::Spec;
use spack_store::Database;

fn main() {
    let golden = std::env::args().any(|a| a == "--golden");
    let repos = bench_repos();
    let config = bench_config();

    // ---- 1. greedy vs backtracking --------------------------------------
    println!("== ablation 1: greedy vs backtracking concretization ==");
    // A site repo overlays the paper's own greedy-failure scenario
    // (4.5): `hwloc-app` needs hwloc@1.9 and mpi, while the site-policy
    // MPI (`sitempi`) pins hwloc@1.8.
    let mut site = Repository::new("site");
    site.register(
        PackageBuilder::new("sitempi")
            .version("1.0", "aa")
            .provides("mpi@:3")
            .depends_on("hwloc@1.8")
            .build()
            .unwrap(),
    )
    .unwrap();
    site.register(
        PackageBuilder::new("hwloc-app")
            .version("1.0", "bb")
            .depends_on("hwloc@1.9")
            .depends_on("mpi")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut repos_site = repos.clone();
    repos_site.push_front(site);
    let mut config_site = config.clone();
    config_site
        .push_scope_text("ablation", "providers mpi = sitempi\n")
        .unwrap();

    // Conflict-prone requests: constraints that fight the site policy.
    let requests = [
        "mpileaks",           // easy: both succeed
        "gerris",             // needs mpi@2:, policy must adapt
        "mpileaks ^mpi@3.0",  // only mpi-3 providers qualify
        "stat+dysect",        // conditional dyninst variant
        "hwloc-app",          // 4.5: greedy conflicts, search wins
        "hwloc-app ^sitempi", // genuinely unsatisfiable
    ];
    for text in requests {
        let request = Spec::parse(text).unwrap();
        let greedy = Concretizer::new(&repos_site, &config_site).concretize(&request);
        let t = Instant::now();
        let back =
            BacktrackingConcretizer::new(&repos_site, &config_site).concretize_with_stats(&request);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        let timing = if golden {
            String::new()
        } else {
            format!(", {dt:.2} ms")
        };
        println!(
            "  {text:24} greedy: {:9} backtracking: {:9} ({} attempts{timing})",
            if greedy.is_ok() { "ok" } else { "CONFLICT" },
            if back.is_ok() { "ok" } else { "CONFLICT" },
            back.as_ref().map(|(_, s)| s.attempts).unwrap_or(0),
        );
    }

    // ---- 2. provider index vs linear scan --------------------------------
    println!("\n== ablation 2: provider reverse-index vs linear scan ==");
    let index = ProviderIndex::build(&repos);
    let mpi2 = Spec::parse("mpi@2:").unwrap();
    let trials = 10_000;
    let t = Instant::now();
    let mut found_idx = 0;
    for _ in 0..trials {
        found_idx = index.candidates_for(&mpi2).len();
    }
    let with_index = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut found_scan = 0;
    for _ in 0..trials {
        found_scan = 0;
        // Linear scan: walk every package's provides directives.
        for pkg in repos.visible_packages() {
            for p in &pkg.provides {
                if p.vspec.name.as_deref() == Some("mpi")
                    && p.vspec.versions.overlaps(&mpi2.versions)
                {
                    found_scan += 1;
                }
            }
        }
    }
    let with_scan = t.elapsed().as_secs_f64();
    assert_eq!(found_idx, found_scan);
    if golden {
        println!("  {found_idx} candidates; index and scan agree");
    } else {
        println!(
            "  {found_idx} candidates; index: {:.2} us/query, scan: {:.2} us/query ({:.0}x)",
            with_index / trials as f64 * 1e6,
            with_scan / trials as f64 * 1e6,
            with_scan / with_index
        );
    }

    // ---- 3. sub-DAG reuse vs rebuild-everything ---------------------------
    println!("\n== ablation 3: hash-based reuse (Fig. 9) vs rebuild-everything ==");
    let concretizer = Concretizer::new(&repos, &config);
    let builds = ["mpileaks ^mpich", "mpileaks ^openmpi", "mpileaks ^mvapich2"];
    let mut with_reuse = 0.0;
    let mut without_reuse = 0.0;
    let shared_db = Mutex::new(Database::new("/spack/opt"));
    for text in builds {
        let dag = concretizer.concretize(&Spec::parse(text).unwrap()).unwrap();
        let report = install_dag(&dag, &repos, &shared_db, &InstallOptions::default()).unwrap();
        with_reuse += report.serial_seconds;
        let fresh_db = Mutex::new(Database::new("/spack/fresh"));
        let report = install_dag(&dag, &repos, &fresh_db, &InstallOptions::default()).unwrap();
        without_reuse += report.serial_seconds;
    }
    println!(
        "  simulated build time for 3 MPI configurations of mpileaks:\n  \
         with sub-DAG reuse: {with_reuse:.0}s   rebuild-everything: {without_reuse:.0}s   saved: {:.0}%",
        (1.0 - with_reuse / without_reuse) * 100.0
    );
    println!(
        "  disk: {} prefixes with reuse vs {} without (the paper's \"more disk\n  \
         space than a module-based system\" trade, 4.5, mitigated by sharing)",
        shared_db.lock().len(),
        3 * concretizer
            .concretize(&Spec::parse("mpileaks ^mpich").unwrap())
            .unwrap()
            .len()
    );

    // ---- 4. parallel vs serial install -----------------------------------
    println!("\n== ablation 4: ready-queue parallel vs serial install ==");
    let dag = concretizer
        .concretize(&Spec::parse("ares").unwrap())
        .unwrap();
    let db = Mutex::new(Database::new("/spack/opt2"));
    let report = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
    println!(
        "  ares ({} packages): {:.0}s serial vs {:.0}s on the critical path \
         ({:.1}x ideal speedup from DAG parallelism)",
        dag.len(),
        report.serial_seconds,
        report.critical_path_seconds,
        report.serial_seconds / report.critical_path_seconds
    );
    println!(
        "  frontier scheduler at {} workers: {:.0}s makespan \
         ({:.1}x of the ideal; see sched_scaling for the full curve)",
        report.jobs,
        report.makespan_seconds,
        report.makespan_seconds / report.critical_path_seconds
    );
}
