//! Table 1 regeneration: site naming conventions and why they fail.
//!
//! Formats a sweep of real configurations under each site's scheme and
//! measures collisions — distinct configurations mapping to one path. The
//! paper's point: "none of these naming conventions covers the entire
//! configuration space"; Spack's hashed scheme is injective.
//!
//! Run: `cargo run -p spack-bench --bin table1_naming`

use std::collections::BTreeMap;

use spack_bench::{bench_config, bench_repos};
use spack_concretize::Concretizer;
use spack_spec::{DagHashes, Spec};
use spack_store::NamingScheme;

fn main() {
    let repos = bench_repos();
    let config = bench_config();
    let concretizer = Concretizer::new(&repos, &config);

    // A realistic configuration sweep: mpileaks across MPIs, compilers,
    // variants, and a dependency-version change invisible to most schemes.
    let requests = [
        "mpileaks ^mpich",
        "mpileaks ^openmpi",
        "mpileaks ^mvapich2",
        "mpileaks%gcc@4.7.4 ^mpich",
        "mpileaks%intel@15.0.1 ^mpich",
        "mpileaks+debug ^mpich",
        "mpileaks ^mpich ^libelf@0.8.12", // differs ONLY in libelf
        "mpileaks ^mpich ^libelf@0.8.11", // differs ONLY in libelf
        "mpileaks ^mpich ^callpath@1.0",
        "mpileaks@1.1 ^mpich",
    ];
    let dags: Vec<_> = requests
        .iter()
        .map(|r| {
            concretizer
                .concretize(&Spec::parse(r).unwrap())
                .unwrap_or_else(|e| panic!("{r}: {e}"))
        })
        .collect();

    println!("Table 1: software organization of various HPC sites");
    println!(
        "({} distinct mpileaks configurations formatted per scheme)\n",
        dags.len()
    );
    println!(
        "{:24} {:>8} {:>11}  example",
        "scheme", "paths", "collisions"
    );
    for scheme in NamingScheme::all() {
        let mut by_path: BTreeMap<String, usize> = BTreeMap::new();
        let mut example = String::new();
        for dag in &dags {
            let hashes = DagHashes::compute(dag);
            let path = scheme.prefix_for("/opt", dag, dag.root(), &hashes);
            if example.is_empty() {
                example = path.clone();
            }
            *by_path.entry(path).or_insert(0) += 1;
        }
        let collisions: usize = by_path.values().filter(|&&n| n > 1).map(|n| n - 1).sum();
        println!(
            "{:24} {:>8} {:>11}  {}",
            scheme.site(),
            by_path.len(),
            collisions,
            example
        );
    }
    println!(
        "\nOnly the Spack scheme keeps all {} configurations distinct; the baseline\n\
         conventions collapse configurations that differ in parameters their paths\n\
         cannot express (e.g. the two builds differing only in libelf version).",
        dags.len()
    );
}
