//! Chaos sweep: failure rates × retry budgets over the ARES DAG.
//!
//! For each (fault rate, retry budget) cell, installs the full ares
//! development stack with `keep_going` through a two-mirror failover
//! chain whose mirrors (and the build step) inject faults from a fixed
//! seed, then reports how much of the DAG committed, how much virtual
//! time was wasted on retries and dead attempts, and the resulting
//! goodput (nodes committed per simulated critical-path second).
//!
//! Everything is deterministic: the same seed produces byte-identical
//! output on any machine, which `ci.sh` exploits as a determinism
//! regression gate against `results/chaos_sweep.txt`.
//!
//! Run: `cargo run -p spack-bench --bin chaos_sweep [-- --seed N]`

use parking_lot::Mutex;
use spack_bench::{bench_config, bench_repos};
use spack_buildenv::{
    install_dag, FaultPlan, FaultyMirror, FetchSource, InstallOptions, Mirror, MirrorChain,
    RetryPolicy,
};
use spack_concretize::Concretizer;
use spack_spec::Spec;
use spack_store::Database;
use std::sync::Arc;

const RATES: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.4];
const RETRY_BUDGETS: &[u32] = &[0, 1, 2, 4];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed = 42u64;
    let mut iter = args.iter().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let repos = bench_repos();
    let config = bench_config();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("ares@develop~lite").unwrap())
        .expect("ares concretizes");

    println!(
        "Chaos sweep over the ares DAG ({} nodes), seed {seed}",
        dag.len()
    );
    println!("  two-mirror failover chain; keep-going; virtual-time accounting\n");
    println!(
        "{:>6} {:>8} {:>10} {:>7} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "rate",
        "retries",
        "committed",
        "failed",
        "skipped",
        "used",
        "backoff",
        "wasted",
        "critpath",
        "goodput"
    );

    for &rate in RATES {
        for &budget in RETRY_BUDGETS {
            let plan = FaultPlan::uniform(seed, rate);
            let opts = InstallOptions {
                source: MirrorChain::from_sources(vec![
                    Arc::new(FaultyMirror::new(Mirror::named("m0"), plan)) as Arc<dyn FetchSource>,
                    Arc::new(FaultyMirror::new(Mirror::named("m1"), plan)) as Arc<dyn FetchSource>,
                ]),
                faults: Some(plan),
                retry: RetryPolicy::with_retries(budget),
                keep_going: true,
                ..Default::default()
            };
            let db = Mutex::new(Database::new("/spack/opt"));
            let report = install_dag(&dag, &repos, &db, &opts).expect("keep-going never errors");
            let goodput = if report.critical_path_seconds > 0.0 {
                report.committed_count() as f64 / report.critical_path_seconds
            } else {
                0.0
            };
            println!(
                "{:>6.2} {:>8} {:>10} {:>7} {:>8} {:>8} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.4}",
                rate,
                budget,
                format!("{}/{}", report.committed_count(), dag.len()),
                report.failed_count(),
                report.skipped_count(),
                report.retries,
                report.backoff_seconds,
                report.wasted_seconds,
                report.critical_path_seconds,
                goodput
            );
        }
    }
    println!("\ngoodput = nodes committed per simulated critical-path second");
}
