//! Table 2 regeneration: the spec syntax examples and their meanings.
//!
//! Run: `cargo run -p spack-bench --bin table2_specs`

use spack_spec::Spec;

fn main() {
    let rows: &[(&str, &str)] = &[
        ("mpileaks", "mpileaks package, no constraints."),
        ("mpileaks@1.1.2", "mpileaks package, version 1.1.2."),
        ("mpileaks@1.1.2 %gcc",
         "mpileaks package, version 1.1.2, built with gcc at the default version."),
        ("mpileaks@1.1.2 %intel@14.1 +debug",
         "mpileaks package, version 1.1.2, built with Intel compiler version 14.1, with the debug build option."),
        ("mpileaks@1.1.2 =bgq",
         "mpileaks package, version 1.1.2, built for the Blue Gene/Q platform (BG/Q)."),
        ("mpileaks@1.1.2 ^mvapich2@1.9",
         "mpileaks package version 1.1.2, using mvapich2 version 1.9 for MPI."),
        ("mpileaks @1.2:1.4 %gcc@4.7.5 -debug =bgq ^callpath @1.1 %gcc@4.7.2 ^openmpi @1.4.7",
         "mpileaks at any version between 1.2 and 1.4 (inclusive), built with gcc 4.7.5, \
          without the debug option, for BG/Q, linked with callpath version 1.1 (built with \
          gcc 4.7.2) and openmpi version 1.4.7."),
    ];
    println!("Table 2: Spack build spec syntax examples (parsed by spack-rs)\n");
    for (i, (text, meaning)) in rows.iter().enumerate() {
        let spec = Spec::parse(text).expect("Table 2 rows must parse");
        println!("{}. input:     {text}", i + 1);
        println!("   canonical: {spec}");
        println!("   meaning:   {meaning}\n");
        // Round-trip sanity.
        assert_eq!(spec, Spec::parse(&spec.to_string()).unwrap());
    }
    println!(
        "all {} rows parse and round-trip through the Fig. 3 grammar",
        rows.len()
    );
}
