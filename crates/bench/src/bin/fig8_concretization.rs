//! Fig. 8 regeneration: concretization running time vs. package DAG size.
//!
//! The paper concretizes "all of Spack's 245 packages" on three cluster
//! front-end nodes, 10 trials each, and plots seconds against DAG size in
//! nodes, observing sub-2-second times for all but the largest packages
//! and "a quadratic trend" toward 50 nodes. We concretize every builtin
//! package with 10 timed trials (after one warm-up), in parallel across
//! packages with rayon, and emit one (nodes, time) series per machine
//! profile — the Haswell series is measured, the other two derived with
//! the paper's observed machine ratios (see DESIGN.md §3).
//!
//! Run: `cargo run --release -p spack-bench --bin fig8_concretization`
//! With `--golden`, wall-clock measurement is skipped and only the
//! machine-independent structure (package → DAG size) is printed, so the
//! output is byte-stable for the CI golden gate.

use std::time::Instant;

use rayon::prelude::*;
use spack_bench::{bench_config, bench_repos, MACHINE_PROFILES};
use spack_concretize::Concretizer;
use spack_spec::Spec;

const TRIALS: u32 = 10;

fn main() {
    let golden = std::env::args().any(|a| a == "--golden");
    let repos = bench_repos();
    let config = bench_config();
    let names = repos.package_names();

    let mut samples: Vec<(String, usize, f64)> = names
        .par_iter()
        .map(|name| {
            let concretizer = Concretizer::new(&repos, &config);
            let request = Spec::named(name);
            let dag = concretizer
                .concretize(&request)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            if golden {
                return (name.clone(), dag.len(), 0.0);
            }
            // Warm-up, then timed trials (paper: average of 10).
            let start = Instant::now();
            for _ in 0..TRIALS {
                let _ = concretizer.concretize(&request).unwrap();
            }
            let avg = start.elapsed().as_secs_f64() / TRIALS as f64;
            (name.clone(), dag.len(), avg)
        })
        .collect();
    samples.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

    if golden {
        println!("# Fig. 8 (golden): concretized DAG size per package");
        println!(
            "# {} packages; timing stripped for byte-stability",
            samples.len()
        );
        println!("# columns: package  dag_nodes");
        for (name, nodes, _) in &samples {
            println!("{name:24} {nodes:3}");
        }
        let max = samples.iter().map(|s| s.1).max().unwrap();
        let biggest = samples.iter().find(|s| s.1 == max).unwrap();
        println!("\n# largest DAG: {max} nodes ({})", biggest.0);
        return;
    }

    println!("# Fig. 8: concretization running time vs package DAG size");
    println!("# {} packages, {} trials each", samples.len(), TRIALS);
    println!(
        "# columns: package  dag_nodes  {}",
        MACHINE_PROFILES
            .iter()
            .map(|(n, _)| format!("ms[{n}]"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for (name, nodes, secs) in &samples {
        let cols: Vec<String> = MACHINE_PROFILES
            .iter()
            .map(|(_, factor)| format!("{:10.4}", secs * factor * 1e3))
            .collect();
        println!("{name:24} {nodes:3} {}", cols.join(" "));
    }

    // Summary statistics in the shape the paper reports.
    let max = samples.iter().map(|s| s.1).max().unwrap();
    let big: Vec<&(String, usize, f64)> = samples.iter().filter(|s| s.1 * 10 >= max * 9).collect();
    let small_worst = samples
        .iter()
        .filter(|s| s.1 <= 10)
        .map(|s| s.2)
        .fold(0.0, f64::max);
    let big_worst = samples.iter().map(|s| s.2).fold(0.0, f64::max);
    println!("\n# largest DAG: {max} nodes ({})", big[0].0);
    println!(
        "# worst time, DAGs <= 10 nodes: {:.3} ms",
        small_worst * 1e3
    );
    println!(
        "# worst time overall (Haswell profile): {:.3} ms; Power7 profile: {:.3} ms",
        big_worst * 1e3,
        big_worst * MACHINE_PROFILES[2].1 * 1e3
    );
    println!(
        "# paper shape: <2 s for all but the 10 largest; <4 s (Haswell) / <9 s (Power7) at ~50 nodes.\n\
         # spack-rs is a compiled implementation, so absolute values are ~1000x smaller;\n\
         # the growth trend with DAG size is the reproduced quantity."
    );

    // Growth check: mean time of the largest quartile vs the smallest.
    let q = samples.len() / 4;
    let small_mean: f64 = samples[..q].iter().map(|s| s.2).sum::<f64>() / q as f64;
    let large_mean: f64 = samples[samples.len() - q..]
        .iter()
        .map(|s| s.2)
        .sum::<f64>()
        / q as f64;
    println!(
        "# mean time, smallest quartile: {:.4} ms; largest quartile: {:.4} ms ({}x)",
        small_mean * 1e3,
        large_mean * 1e3,
        (large_mean / small_mean).round()
    );
}
