//! Table 3 regeneration: the ARES configurations built nightly with Spack
//! (SC'15 §4.4) — up to four code configurations ((C)urrent and
//! (P)revious production, (L)ite, (D)evelopment) per
//! architecture-compiler-MPI combination, 36 in total.
//!
//! Run: `cargo run -p spack-bench --bin table3_ares`

use spack_bench::{bench_config, bench_repos};
use spack_concretize::Concretizer;
use spack_spec::Spec;

fn config_spec(c: char) -> &'static str {
    match c {
        'C' => "@2015.06~lite",
        'P' => "@2014.11~lite",
        'L' => "@2015.06+lite",
        'D' => "@develop~lite",
        _ => unreachable!(),
    }
}

fn main() {
    let repos = bench_repos();
    let mut config = bench_config();
    // Cross-compilation toolchains for the BG/Q and Cray rows.
    for (name, ver, archs) in [
        ("gcc", "4.9.3", vec!["bgq"]),
        ("pgi", "15.4", vec!["bgq", "cray-xe6"]),
        ("clang", "3.6.2", vec!["bgq"]),
        ("intel", "15.0.1", vec!["cray-xe6"]),
    ] {
        config.register_compiler(name, ver, &archs);
    }
    let concretizer = Concretizer::new(&repos, &config);

    // The filled cells of Table 3.
    let cells: &[(&str, &str, &str, &str)] = &[
        ("linux-x86_64", "gcc", "mvapich", "CPLD"),
        ("linux-x86_64", "intel@14.0.4", "mvapich2", "CPLD"),
        ("linux-x86_64", "intel@15.0.1", "mvapich2", "CPLD"),
        ("linux-x86_64", "pgi", "mvapich", "D"),
        ("linux-x86_64", "clang", "mvapich", "CPLD"),
        ("bgq", "gcc", "bgq-mpi", "CPLD"),
        ("bgq", "pgi", "bgq-mpi", "CPLD"),
        ("bgq", "clang", "bgq-mpi", "CLD"),
        ("bgq", "xl", "bgq-mpi", "CPLD"),
        ("cray-xe6", "intel@15.0.1", "cray-mpich", "D"),
        ("cray-xe6", "pgi", "cray-mpich", "CLD"),
    ];

    println!("Table 3: configurations of ARES built with spack-rs");
    println!("  (C)urrent and (P)revious production, (L)ite, (D)evelopment\n");
    println!(
        "{:14} {:15} {:11} configs  (DAG sizes)",
        "arch", "compiler", "MPI"
    );
    let mut total = 0;
    let mut failures = Vec::new();
    for (arch, compiler, mpi, configs) in cells {
        let mut built = String::new();
        let mut sizes = Vec::new();
        for c in configs.chars() {
            let text = format!("ares{} %{compiler} ={arch} ^{mpi}", config_spec(c));
            match concretizer.concretize(&Spec::parse(&text).unwrap()) {
                Ok(dag) => {
                    built.push(c);
                    built.push(' ');
                    sizes.push(dag.len().to_string());
                    total += 1;
                    // Patches differ per platform/compiler (e.g. python on
                    // BG/Q, §3.2.4) — verified by the patch directives.
                    assert!(dag.by_name(mpi).is_some());
                    assert_eq!(dag.root_node().architecture, *arch);
                }
                Err(e) => failures.push(format!("{text}: {e}")),
            }
        }
        println!(
            "{arch:14} {compiler:15} {mpi:11} {built:9} ({})",
            sizes.join(",")
        );
    }
    println!("\n=> {total} configurations concretized (paper: 36)");
    if !failures.is_empty() {
        println!("FAILURES:\n{}", failures.join("\n"));
        std::process::exit(1);
    }
}
