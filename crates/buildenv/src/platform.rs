//! Platform descriptions (SC'15 §4.5, Fig. 12).
//!
//! Porting Spack to Blue Gene/Q and Cray required teaching the build
//! environment that certain (architecture, compiler) pairs need extra
//! flags on every compiler invocation — Fig. 12 shows `-qnostaticlink`
//! forcing dynamic linking with XL on BG/Q. A [`PlatformRegistry`] maps a
//! concrete node's architecture and compiler to those flags and mints the
//! node's compiler [`Wrapper`] with them baked in.

use crate::wrapper::Wrapper;
use spack_spec::ConcreteNode;
use std::collections::BTreeMap;

/// One platform: an architecture name plus per-compiler-family flag
/// rules. A rule keyed `"*"` applies to every compiler on the platform.
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    rules: Vec<(String, Vec<String>)>,
}

impl Platform {
    /// A platform with no special flags.
    pub fn new(name: &str) -> Platform {
        Platform {
            name: name.to_string(),
            rules: Vec::new(),
        }
    }

    /// Add a flag rule for a compiler family (`"xl"`, or `"*"` for all).
    pub fn with_rule(mut self, compiler: &str, flags: &[&str]) -> Platform {
        self.rules.push((
            compiler.to_string(),
            flags.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// The architecture name this platform describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flags mandated for the given compiler family on this platform.
    pub fn flags_for(&self, compiler: &str) -> Vec<String> {
        let mut flags = Vec::new();
        for (family, f) in &self.rules {
            if family == "*" || family == compiler {
                flags.extend(f.iter().cloned());
            }
        }
        flags
    }
}

/// The set of known platforms, keyed by architecture string.
#[derive(Debug, Clone, Default)]
pub struct PlatformRegistry {
    platforms: BTreeMap<String, Platform>,
}

impl PlatformRegistry {
    /// An empty registry: no platform mandates any flags.
    pub fn new() -> PlatformRegistry {
        PlatformRegistry::default()
    }

    /// The platforms of the paper's §4.5 porting story: BG/Q (XL must
    /// link dynamically, Fig. 12) and Cray XE6 (dynamic linking against
    /// the wrapper-managed RPATHs instead of Cray's static default).
    pub fn with_defaults() -> PlatformRegistry {
        let mut r = PlatformRegistry::new();
        r.register(Platform::new("bgq").with_rule("xl", &["-qnostaticlink"]));
        r.register(Platform::new("cray-xe6").with_rule("*", &["-dynamic"]));
        r
    }

    /// Add or replace a platform description.
    pub fn register(&mut self, platform: Platform) {
        self.platforms.insert(platform.name().to_string(), platform);
    }

    /// Flags mandated for (architecture, compiler family); empty when the
    /// architecture has no registered platform.
    pub fn flags_for(&self, architecture: &str, compiler: &str) -> Vec<String> {
        self.platforms
            .get(architecture)
            .map(|p| p.flags_for(compiler))
            .unwrap_or_default()
    }

    /// Mint the compiler wrapper for a concrete node: its toolchain, its
    /// dependency prefixes, and any platform-mandated flags.
    pub fn wrapper_for(&self, node: &ConcreteNode, dep_prefixes: &[String]) -> Wrapper {
        let flags = self.flags_for(&node.architecture, &node.compiler.name);
        Wrapper::with_flags(node.compiler.clone(), dep_prefixes, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgq_xl_forces_dynamic_linking() {
        let r = PlatformRegistry::with_defaults();
        assert_eq!(r.flags_for("bgq", "xl"), vec!["-qnostaticlink".to_string()]);
        assert!(r.flags_for("bgq", "gcc").is_empty());
        assert!(r.flags_for("linux-x86_64", "xl").is_empty());
    }

    #[test]
    fn wildcard_rules_apply_to_every_compiler() {
        let r = PlatformRegistry::with_defaults();
        assert_eq!(r.flags_for("cray-xe6", "pgi"), vec!["-dynamic".to_string()]);
        assert_eq!(
            r.flags_for("cray-xe6", "intel"),
            vec!["-dynamic".to_string()]
        );
    }
}
