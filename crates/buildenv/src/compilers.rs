//! Compiler toolchain detection (SC'15 §3.2.3 "Compilers").
//!
//! "Spack can auto-detect compiler toolchains in the user's `PATH`": it
//! scans executables, recognizes front-end naming conventions
//! (`gcc-5.2.0`, `icc`, `clang++-3.6`, ...), and groups the C, C++, and
//! Fortran front-ends of one release into a single toolchain entry that
//! plugs directly into the concretizer configuration.

use spack_spec::{ConcreteCompiler, Version};
use std::collections::BTreeMap;

/// One detected toolchain: the concrete compiler plus the front-end
/// executables found for it.
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// The (name, version) pair, ready for
    /// `Config::register_concrete_compiler`.
    pub compiler: ConcreteCompiler,
    /// Path of the detected C front-end, if any.
    pub cc: Option<String>,
    /// Path of the detected C++ front-end, if any.
    pub cxx: Option<String>,
    /// Path of the detected Fortran front-end, if any.
    pub fc: Option<String>,
}

/// Which toolchain family a front-end executable belongs to, and which
/// language slot it fills.
fn classify(stem: &str) -> Option<(&'static str, u8)> {
    const TABLE: &[(&str, &str, u8)] = &[
        ("gcc", "gcc", 0),
        ("g++", "gcc", 1),
        ("gfortran", "gcc", 2),
        ("icc", "intel", 0),
        ("icpc", "intel", 1),
        ("ifort", "intel", 2),
        ("clang", "clang", 0),
        ("clang++", "clang", 1),
        ("flang", "clang", 2),
        ("xlc", "xl", 0),
        ("xlC", "xl", 1),
        ("xlf", "xl", 2),
        ("pgcc", "pgi", 0),
        ("pgc++", "pgi", 1),
        ("pgfortran", "pgi", 2),
    ];
    // Longest match first so `clang++` is not classified as `clang`.
    TABLE
        .iter()
        .filter(|(exe, _, _)| *exe == stem)
        .map(|(_, fam, slot)| (*fam, *slot))
        .next()
}

/// Detect toolchains from a PATH-style listing of executables.
///
/// `version_probe` stands in for running `<exe> --version`: it is
/// consulted for executables whose file name does not carry a version
/// suffix (plain `gcc`). Returning `None` skips the executable.
pub fn detect_toolchains(
    executables: &[String],
    version_probe: impl Fn(&str) -> Option<String>,
) -> Vec<Toolchain> {
    let mut grouped: BTreeMap<(String, String), Toolchain> = BTreeMap::new();
    for path in executables {
        let base = path.rsplit('/').next().unwrap_or(path);
        // Split a trailing `-<version>` suffix if present.
        let (stem, version) = match base.rsplit_once('-') {
            Some((s, v)) if v.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                (s, Some(v.to_string()))
            }
            _ => (base, None),
        };
        let Some((family, slot)) = classify(stem) else {
            continue;
        };
        let Some(version) = version.or_else(|| version_probe(path)) else {
            continue;
        };
        let Ok(parsed) = Version::new(&version) else {
            continue;
        };
        let entry = grouped
            .entry((family.to_string(), version.clone()))
            .or_insert_with(|| Toolchain {
                compiler: ConcreteCompiler {
                    name: family.to_string(),
                    version: parsed,
                },
                cc: None,
                cxx: None,
                fc: None,
            });
        let slot_ref = match slot {
            0 => &mut entry.cc,
            1 => &mut entry.cxx,
            _ => &mut entry.fc,
        };
        if slot_ref.is_none() {
            *slot_ref = Some(path.clone());
        }
    }
    grouped.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_front_ends_by_family_and_version() {
        let exes: Vec<String> = [
            "/opt/bin/gcc-5.2.0",
            "/opt/bin/g++-5.2.0",
            "/opt/bin/gfortran-5.2.0",
            "/opt/bin/gcc-4.9.3",
            "/usr/bin/icc-15.0.1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let tcs = detect_toolchains(&exes, |_| None);
        assert_eq!(tcs.len(), 3);
        let gcc52 = tcs
            .iter()
            .find(|t| t.compiler.to_string() == "gcc@5.2.0")
            .unwrap();
        assert!(gcc52.cc.is_some() && gcc52.cxx.is_some() && gcc52.fc.is_some());
        let gcc49 = tcs
            .iter()
            .find(|t| t.compiler.to_string() == "gcc@4.9.3")
            .unwrap();
        assert!(gcc49.cxx.is_none());
    }

    #[test]
    fn unversioned_executables_use_the_probe() {
        let exes = vec!["/usr/bin/gcc".to_string(), "/usr/bin/cc".to_string()];
        let tcs = detect_toolchains(&exes, |path| {
            path.ends_with("gcc").then(|| "4.8.5".to_string())
        });
        assert_eq!(tcs.len(), 1);
        assert_eq!(tcs[0].compiler.to_string(), "gcc@4.8.5");
        // `cc` is not a recognized front-end name; the probe was not
        // enough to classify it.
        let none = detect_toolchains(&exes[1..], |_| Some("1.0".to_string()));
        assert!(none.is_empty());
    }

    #[test]
    fn unprobeable_executables_are_skipped() {
        let exes = vec!["/usr/bin/gcc".to_string()];
        assert!(detect_toolchains(&exes, |_| None).is_empty());
    }
}
