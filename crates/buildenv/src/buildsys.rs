//! Simulated build systems (SC'15 §3.5, Figs. 10/11).
//!
//! A build is replayed on a virtual clock from the package's calibrated
//! [`BuildWorkload`]: configure probes, compiler invocations, and
//! filesystem operations each charge simulated seconds. The wrapper's
//! *real* argv-rewrite path is exercised for representative invocations,
//! but its cost model is a fixed per-invocation charge — the paper's
//! "small but noticeable" indirection overhead (~10%, Fig. 11).

use crate::simfs::{FsProfile, SimFs};
use crate::wrapper::{Language, Wrapper};
use spack_package::{BuildRecipe, BuildWorkload};

/// Simulated seconds of compile time per workload cost unit
/// (`compile_units × unit_cost`).
const COMPILE_SECONDS_PER_UNIT: f64 = 0.1;
/// Simulated seconds per configure probe (fork, tiny compile, check).
const CONFIGURE_SECONDS_PER_PROBE: f64 = 0.05;
/// Simulated seconds of wrapper indirection per compiler invocation
/// (argv rewrite, PATH shadowing, exec of the real compiler).
const WRAPPER_SECONDS_PER_INVOCATION: f64 = 0.01;
/// Filesystem operations charged per installed file (create, write,
/// chmod, stat, manifest update).
const OPS_PER_INSTALL_FILE: u64 = 5;

/// How a simulated build is staged and wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildSettings {
    /// Put Spack's compiler wrappers first in PATH (§3.5.2). Disabling
    /// them models a "native" build for overhead comparisons (Fig. 11).
    pub use_wrappers: bool,
    /// Where the build stage lives (Fig. 10's NFS vs. temp FS scenarios).
    pub stage_fs: FsProfile,
}

impl Default for BuildSettings {
    fn default() -> Self {
        BuildSettings {
            use_wrappers: true,
            stage_fs: FsProfile::TmpFs,
        }
    }
}

/// The cost breakdown of one simulated build.
#[derive(Debug, Clone, Copy)]
pub struct BuildOutcome {
    /// Seconds spent compiling translation units.
    pub compile_seconds: f64,
    /// Seconds spent in the configure/probe phase.
    pub configure_seconds: f64,
    /// Seconds of wrapper indirection overhead (0 without wrappers).
    pub wrapper_seconds: f64,
    /// Seconds lost to filesystem operation latency on the stage.
    pub fs_seconds: f64,
    /// Filesystem operations performed.
    pub fs_ops: u64,
    /// Compiler invocations (configure probes + translation units).
    pub compiler_invocations: u64,
}

impl BuildOutcome {
    /// Total simulated build time in seconds.
    pub fn total(&self) -> f64 {
        self.compile_seconds + self.configure_seconds + self.wrapper_seconds + self.fs_seconds
    }
}

/// Run one simulated build of `recipe` with the given workload, wrapper,
/// and settings. Deterministic: the same inputs always produce the same
/// outcome, independent of the host machine.
pub fn run_build(
    recipe: &BuildRecipe,
    workload: &BuildWorkload,
    wrapper: &Wrapper,
    settings: BuildSettings,
) -> BuildOutcome {
    let mut fs = SimFs::new(settings.stage_fs);

    // Configure phase: probe executions plus their filesystem churn
    // (conftest files, PATH lookups, libtool reads). Recipes without a
    // configure phase (Makefile, PythonSetup, Bundle) skip it entirely.
    let probes = if recipe.has_configure_phase() {
        workload.configure_probes as u64
    } else {
        0
    };
    let configure_seconds = probes as f64 * CONFIGURE_SECONDS_PER_PROBE;
    fs.touch(probes * workload.ops_per_probe as u64);

    // Compile phase: every translation unit stats and reads its headers.
    let units = workload.compile_units as u64;
    let compile_seconds =
        (workload.compile_units * workload.unit_cost) as f64 * COMPILE_SECONDS_PER_UNIT;
    fs.touch(units * workload.headers_per_unit as u64);

    // Install phase: populate the prefix.
    fs.touch(workload.install_files as u64 * OPS_PER_INSTALL_FILE);

    let compiler_invocations = probes + units;
    let wrapper_seconds = if settings.use_wrappers {
        // Exercise the real rewrite path for one representative compile
        // and one link, then charge the flat indirection cost per
        // invocation.
        let compile_argv = wrapper.rewrite(Language::C, &["-c".to_string(), "unit.c".to_string()]);
        let link_argv = wrapper.rewrite(
            Language::C,
            &["-o".to_string(), "prog".to_string(), "unit.o".to_string()],
        );
        debug_assert!(compile_argv.len() <= link_argv.len());
        compiler_invocations as f64 * WRAPPER_SECONDS_PER_INVOCATION
    } else {
        0.0
    };

    BuildOutcome {
        compile_seconds,
        configure_seconds,
        wrapper_seconds,
        fs_seconds: fs.elapsed_seconds(),
        fs_ops: fs.ops(),
        compiler_invocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::{ConcreteCompiler, Version};

    fn wrapper() -> Wrapper {
        Wrapper::new(
            ConcreteCompiler {
                name: "gcc".to_string(),
                version: Version::new("4.9.3").unwrap(),
            },
            &[],
        )
    }

    #[test]
    fn wrappers_add_overhead() {
        let recipe = BuildRecipe::autotools();
        let wl = BuildWorkload::default();
        let with = run_build(&recipe, &wl, &wrapper(), BuildSettings::default());
        let without = run_build(
            &recipe,
            &wl,
            &wrapper(),
            BuildSettings {
                use_wrappers: false,
                stage_fs: FsProfile::TmpFs,
            },
        );
        assert!(with.total() > without.total());
        assert_eq!(with.compile_seconds, without.compile_seconds);
        assert_eq!(without.wrapper_seconds, 0.0);
    }

    #[test]
    fn nfs_staging_is_slower() {
        let recipe = BuildRecipe::autotools();
        let wl = BuildWorkload::default();
        let tmp = run_build(&recipe, &wl, &wrapper(), BuildSettings::default());
        let nfs = run_build(
            &recipe,
            &wl,
            &wrapper(),
            BuildSettings {
                use_wrappers: true,
                stage_fs: FsProfile::Nfs,
            },
        );
        assert!(nfs.total() > tmp.total());
        assert_eq!(nfs.fs_ops, tmp.fs_ops, "same ops, different latency");
    }

    #[test]
    fn configure_phase_is_recipe_dependent() {
        let wl = BuildWorkload::default();
        let auto = run_build(
            &BuildRecipe::autotools(),
            &wl,
            &wrapper(),
            BuildSettings::default(),
        );
        let make = run_build(
            &BuildRecipe::Makefile,
            &wl,
            &wrapper(),
            BuildSettings::default(),
        );
        assert!(auto.configure_seconds > 0.0);
        assert_eq!(make.configure_seconds, 0.0);
        assert!(make.compiler_invocations < auto.compiler_invocations);
    }

    #[test]
    fn builds_are_deterministic() {
        let recipe = BuildRecipe::cmake();
        let wl = BuildWorkload::tiny();
        let a = run_build(&recipe, &wl, &wrapper(), BuildSettings::default());
        let b = run_build(&recipe, &wl, &wrapper(), BuildSettings::default());
        assert_eq!(a.total(), b.total());
        assert_eq!(a.fs_ops, b.fs_ops);
    }
}
