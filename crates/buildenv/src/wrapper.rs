//! Compiler wrappers (SC'15 §3.5.2).
//!
//! Spack puts wrapper scripts named `cc`, `c++`, `f77`, `f90` first in
//! `PATH`; build systems invoke them as "the compiler" and the wrapper
//! rewrites the argument vector before delegating to the real toolchain:
//! it adds `-I` flags for every dependency include directory, `-L` and
//! `-Wl,-rpath` flags for every dependency library directory, and any
//! platform-mandated flags (Fig. 12: `-qnostaticlink` for XL on BG/Q).
//! RPATHs mean installed binaries find their exact dependencies without
//! `LD_LIBRARY_PATH` tricks.

use spack_spec::ConcreteCompiler;

/// The language front-end a wrapper impersonates (`cc`, `c++`, `f77`,
/// `f90` in Spack's build environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// The `cc` wrapper.
    C,
    /// The `c++` wrapper.
    Cxx,
    /// The `f77` wrapper.
    F77,
    /// The `f90` wrapper.
    F90,
}

/// An argv-rewriting compiler wrapper bound to one concrete toolchain and
/// one set of dependency prefixes.
#[derive(Debug, Clone)]
pub struct Wrapper {
    compiler: ConcreteCompiler,
    dep_prefixes: Vec<String>,
    platform_flags: Vec<String>,
}

impl Wrapper {
    /// A wrapper for `compiler` that injects flags for `dep_prefixes`.
    pub fn new(compiler: ConcreteCompiler, dep_prefixes: &[String]) -> Wrapper {
        Wrapper {
            compiler,
            dep_prefixes: dep_prefixes.to_vec(),
            platform_flags: Vec::new(),
        }
    }

    /// Like [`Wrapper::new`], with platform-mandated flags appended to
    /// every invocation (see [`crate::platform::PlatformRegistry`]).
    pub fn with_flags(
        compiler: ConcreteCompiler,
        dep_prefixes: &[String],
        platform_flags: Vec<String>,
    ) -> Wrapper {
        Wrapper {
            compiler,
            dep_prefixes: dep_prefixes.to_vec(),
            platform_flags,
        }
    }

    /// The toolchain this wrapper delegates to.
    pub fn compiler(&self) -> &ConcreteCompiler {
        &self.compiler
    }

    /// Dependency prefixes whose include/lib directories are injected.
    pub fn dep_prefixes(&self) -> &[String] {
        &self.dep_prefixes
    }

    /// The real compiler executable for a language front-end
    /// (§3.2.3 toolchain model: gcc/g++/gfortran, icc/icpc/ifort, ...).
    pub fn real_compiler(&self, lang: Language) -> String {
        let family: [&str; 4] = match self.compiler.name.as_str() {
            "gcc" => ["gcc", "g++", "gfortran", "gfortran"],
            "intel" => ["icc", "icpc", "ifort", "ifort"],
            "clang" => ["clang", "clang++", "flang", "flang"],
            "xl" => ["xlc", "xlC", "xlf", "xlf90"],
            "pgi" => ["pgcc", "pgc++", "pgf77", "pgf90"],
            other => return format!("{other}-{}", self.compiler.version),
        };
        let exe = match lang {
            Language::C => family[0],
            Language::Cxx => family[1],
            Language::F77 => family[2],
            Language::F90 => family[3],
        };
        format!("{exe}-{}", self.compiler.version)
    }

    /// Rewrite one compiler invocation: the wrapper's whole job.
    ///
    /// Returns the delegated argv: real compiler, injected `-I` flags, the
    /// original arguments, platform flags, and — on linking invocations —
    /// `-L`/`-Wl,-rpath` pairs for every dependency prefix.
    pub fn rewrite(&self, lang: Language, args: &[String]) -> Vec<String> {
        let compile_only = args.iter().any(|a| a == "-c" || a == "-E" || a == "-S");
        let mut argv = Vec::with_capacity(
            1 + args.len() + self.dep_prefixes.len() * 3 + self.platform_flags.len(),
        );
        argv.push(self.real_compiler(lang));
        for dep in &self.dep_prefixes {
            argv.push(format!("-I{dep}/include"));
        }
        argv.extend(args.iter().cloned());
        argv.extend(self.platform_flags.iter().cloned());
        if !compile_only {
            for dep in &self.dep_prefixes {
                argv.push(format!("-L{dep}/lib"));
                argv.push(format!("-Wl,-rpath,{dep}/lib"));
            }
        }
        argv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::Version;

    fn wrapper(deps: &[&str]) -> Wrapper {
        Wrapper::new(
            ConcreteCompiler {
                name: "gcc".to_string(),
                version: Version::new("4.9.3").unwrap(),
            },
            &deps.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn compile_gets_includes_but_no_rpaths() {
        let w = wrapper(&["/opt/libelf"]);
        let argv = w.rewrite(
            Language::C,
            &["-c".into(), "x.c".into(), "-o".into(), "x.o".into()],
        );
        assert_eq!(argv[0], "gcc-4.9.3");
        assert!(argv.contains(&"-I/opt/libelf/include".to_string()));
        assert!(!argv.iter().any(|a| a.starts_with("-L")));
        assert!(!argv.iter().any(|a| a.starts_with("-Wl,-rpath")));
    }

    #[test]
    fn link_gets_search_paths_and_rpaths() {
        let w = wrapper(&["/opt/a", "/opt/b"]);
        let argv = w.rewrite(Language::C, &["-o".into(), "prog".into(), "x.o".into()]);
        assert!(argv.contains(&"-L/opt/a/lib".to_string()));
        assert!(argv.contains(&"-Wl,-rpath,/opt/a/lib".to_string()));
        assert!(argv.contains(&"-Wl,-rpath,/opt/b/lib".to_string()));
    }

    #[test]
    fn language_selects_front_end() {
        let w = wrapper(&[]);
        assert_eq!(w.real_compiler(Language::Cxx), "g++-4.9.3");
        assert_eq!(w.real_compiler(Language::F90), "gfortran-4.9.3");
    }

    #[test]
    fn platform_flags_are_appended() {
        let w = Wrapper::with_flags(
            ConcreteCompiler {
                name: "xl".to_string(),
                version: Version::new("12.1").unwrap(),
            },
            &[],
            vec!["-qnostaticlink".to_string()],
        );
        let argv = w.rewrite(Language::C, &["-o".into(), "x".into(), "x.c".into()]);
        assert_eq!(argv[0], "xlc-12.1");
        assert!(argv.contains(&"-qnostaticlink".to_string()));
    }
}
