//! Deterministic fault injection for the install pipeline (the chaos
//! substrate behind `spack-rs install --chaos`).
//!
//! HPC build substrates fail in mundane ways: mirrors drop connections,
//! archives arrive truncated or bit-flipped, builds die on flaky
//! filesystems. A [`FaultPlan`] reproduces that chaos *deterministically*:
//! every fault decision is a pure function of (seed, fault kind, package,
//! version, attempt, scope), derived by hashing those coordinates into a
//! seeded [`rand`] stream. No wall clock, no shared mutable state — two
//! runs with the same plan see bit-identical faults regardless of node
//! visit order or host machine, which is what lets the chaos harness
//! assert byte-identical reports across runs.
//!
//! [`FaultyMirror`] wraps any [`Mirror`] with a plan, injecting the three
//! fetch-side fault kinds; the pipeline consults the same plan directly
//! for [`FaultKind::BuildFailure`]. Because the decision space is keyed
//! by attempt number and mirror label, retries and mirror failover each
//! re-roll the dice — exactly like the real world they simulate.

use crate::fetch::{Archive, FetchError, FetchSource, Mirror};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spack_package::PackageDef;
use spack_spec::sha::{md5_hex, Sha256};
use spack_spec::Version;
use std::fmt;

/// The taxonomy of injectable faults (DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The mirror dropped the connection: no bytes arrive. Retryable and
    /// failover-able — the canonical transient fault.
    TransientFetch,
    /// The archive arrived short: bytes were cut mid-stream, so any
    /// declared checksum fails verification.
    TruncatedArchive,
    /// The archive arrived complete but bit-flipped: same length,
    /// different digest.
    CorruptArchive,
    /// The build itself died after consuming its full simulated cost —
    /// wasted work that the report accounts separately.
    BuildFailure,
}

impl FaultKind {
    /// Stable short name, used both for display and as the hash
    /// coordinate that makes per-kind decisions independent.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::TransientFetch => "transient-fetch",
            FaultKind::TruncatedArchive => "truncated-archive",
            FaultKind::CorruptArchive => "corrupt-archive",
            FaultKind::BuildFailure => "build-failure",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fault observed during an install: what, where, and on which
/// attempt. `injected` distinguishes planned chaos from genuine trouble
/// (e.g. a mirror whose copy really is corrupt), so reports carry full
/// fault provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// What went wrong.
    pub kind: FaultKind,
    /// Where it happened: a mirror label, or `"build"` for build faults.
    pub source: String,
    /// 1-based fetch/build attempt the fault struck.
    pub attempt: u32,
    /// True when a [`FaultPlan`] injected the fault deliberately.
    pub injected: bool,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} (attempt {}){}",
            self.kind,
            self.source,
            self.attempt,
            if self.injected { ", injected" } else { "" }
        )
    }
}

/// A seeded, per-kind fault probability table. Copyable so one plan can
/// drive every mirror in a chain plus the pipeline's build faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Probability of a dropped fetch, per (package, attempt, mirror).
    pub transient_fetch: f64,
    /// Probability of a truncated archive.
    pub truncated_archive: f64,
    /// Probability of a bit-flipped archive.
    pub corrupt_archive: f64,
    /// Probability that a build dies after consuming its full cost.
    pub build_failure: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_fetch: 0.0,
            truncated_archive: 0.0,
            corrupt_archive: 0.0,
            build_failure: 0.0,
        }
    }

    /// Every fault kind at the same rate — the `--chaos <seed>:<rate>`
    /// shape.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_fetch: rate,
            truncated_archive: rate,
            corrupt_archive: rate,
            build_failure: rate,
        }
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::TransientFetch => self.transient_fetch,
            FaultKind::TruncatedArchive => self.truncated_archive,
            FaultKind::CorruptArchive => self.corrupt_archive,
            FaultKind::BuildFailure => self.build_failure,
        }
    }

    /// Should `kind` strike `package@version` on this `attempt` in
    /// `scope` (a mirror label, or `"build"`)? Pure: the answer depends
    /// only on the arguments and the seed, never on call order.
    pub fn decide(
        &self,
        kind: FaultKind,
        package: &str,
        version: &str,
        attempt: u32,
        scope: &str,
    ) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = Sha256::new();
        h.update(&self.seed.to_be_bytes());
        h.update(kind.as_str().as_bytes());
        h.update(package.as_bytes());
        h.update(b"@");
        h.update(version.as_bytes());
        h.update(&attempt.to_be_bytes());
        h.update(scope.as_bytes());
        let digest = h.finalize();
        let mut rng = StdRng::seed_from_u64(u64::from_be_bytes(digest[..8].try_into().unwrap()));
        rng.random_bool(rate)
    }
}

/// A [`Mirror`] wrapped with a [`FaultPlan`]: serves the inner mirror's
/// archives, except when the plan says this (package, attempt, mirror)
/// coordinate is struck by a transient drop, a truncation, or a bit
/// flip. Tampered archives carry their [`Archive::injected`] provenance
/// so reports can tell chaos from genuine corruption.
#[derive(Debug, Clone)]
pub struct FaultyMirror {
    inner: Mirror,
    plan: FaultPlan,
}

impl FaultyMirror {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Mirror, plan: FaultPlan) -> FaultyMirror {
        FaultyMirror { inner, plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FetchSource for FaultyMirror {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn fetch_version(
        &self,
        pkg: &PackageDef,
        version: &Version,
        attempt: u32,
    ) -> Result<Archive, FetchError> {
        let ver = version.to_string();
        let scope = self.label();
        if self
            .plan
            .decide(FaultKind::TransientFetch, &pkg.name, &ver, attempt, scope)
        {
            return Err(FetchError::Transient {
                package: pkg.name.clone(),
                version: ver,
                mirror: scope.to_string(),
                attempt,
            });
        }
        let mut archive = self.inner.fetch(pkg, version)?;
        let tampered =
            if self
                .plan
                .decide(FaultKind::TruncatedArchive, &pkg.name, &ver, attempt, scope)
            {
                let keep = archive.bytes.len() / 2;
                archive.bytes.truncate(keep);
                Some(FaultKind::TruncatedArchive)
            } else if self
                .plan
                .decide(FaultKind::CorruptArchive, &pkg.name, &ver, attempt, scope)
            {
                archive.bytes[0] ^= 0x55;
                Some(FaultKind::CorruptArchive)
            } else {
                None
            };
        if let Some(kind) = tampered {
            archive.md5 = md5_hex(&archive.bytes);
            archive.verified = match pkg.checksum_for(version) {
                Some(declared) => declared == archive.md5,
                None => true,
            };
            archive.injected = Some(kind);
        }
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::PackageBuilder;

    fn pkg() -> PackageDef {
        let v = Version::new("1.0").unwrap();
        PackageBuilder::new("demo")
            .version("1.0", &Mirror::checksum_of("demo", &v))
            .build()
            .unwrap()
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::uniform(7, 0.5);
        let forward: Vec<bool> = (1..=20)
            .map(|a| plan.decide(FaultKind::TransientFetch, "demo", "1.0", a, "m0"))
            .collect();
        let mut backward: Vec<bool> = (1..=20)
            .rev()
            .map(|a| plan.decide(FaultKind::TransientFetch, "demo", "1.0", a, "m0"))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|&b| b));
        assert!(forward.iter().any(|&b| !b));
    }

    #[test]
    fn rates_zero_and_one_are_absolute() {
        let never = FaultPlan::new(1);
        let always = FaultPlan::uniform(1, 1.0);
        for a in 1..10 {
            assert!(!never.decide(FaultKind::BuildFailure, "x", "1", a, "build"));
            assert!(always.decide(FaultKind::BuildFailure, "x", "1", a, "build"));
        }
    }

    #[test]
    fn kinds_and_scopes_roll_independently() {
        let plan = FaultPlan::uniform(99, 0.5);
        let mut differs_by_kind = false;
        let mut differs_by_scope = false;
        for a in 1..=32 {
            let t = plan.decide(FaultKind::TransientFetch, "demo", "1.0", a, "m0");
            if t != plan.decide(FaultKind::CorruptArchive, "demo", "1.0", a, "m0") {
                differs_by_kind = true;
            }
            if t != plan.decide(FaultKind::TransientFetch, "demo", "1.0", a, "m1") {
                differs_by_scope = true;
            }
        }
        assert!(differs_by_kind && differs_by_scope);
    }

    #[test]
    fn transient_faults_surface_as_errors() {
        let plan = FaultPlan {
            transient_fetch: 1.0,
            ..FaultPlan::new(3)
        };
        let m = FaultyMirror::new(Mirror::new(), plan);
        let err = m
            .fetch_version(&pkg(), &Version::new("1.0").unwrap(), 1)
            .unwrap_err();
        assert!(
            matches!(err, FetchError::Transient { attempt: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn tampered_archives_fail_verification_with_provenance() {
        for (plan, kind) in [
            (
                FaultPlan {
                    truncated_archive: 1.0,
                    ..FaultPlan::new(3)
                },
                FaultKind::TruncatedArchive,
            ),
            (
                FaultPlan {
                    corrupt_archive: 1.0,
                    ..FaultPlan::new(3)
                },
                FaultKind::CorruptArchive,
            ),
        ] {
            let m = FaultyMirror::new(Mirror::new(), plan);
            let a = m
                .fetch_version(&pkg(), &Version::new("1.0").unwrap(), 1)
                .unwrap();
            assert!(!a.verified);
            assert_eq!(a.injected, Some(kind));
        }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let m = FaultyMirror::new(Mirror::new(), FaultPlan::new(0));
        let v = Version::new("1.0").unwrap();
        let a = m.fetch_version(&pkg(), &v, 1).unwrap();
        let b = Mirror::new().fetch(&pkg(), &v).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert!(a.verified);
        assert_eq!(a.injected, None);
    }
}
