//! The virtual-latency staging filesystem (SC'15 §3.5.3).
//!
//! The paper measures that staging builds on NFS home directories is "as
//! much as 62.7% slower than using a temporary file system and 33% slower
//! on average". The effect is dominated by per-operation latency (stat,
//! open, small read/write during configure probes and header inclusion)
//! multiplied by the sheer number of operations a build performs. This
//! module models exactly that: a filesystem profile is a per-operation
//! latency, and a [`SimFs`] accumulates virtual elapsed time over an
//! operation stream.

/// Where the build stage lives: node-local temporary storage or an NFS
/// home directory (Fig. 10's two filesystem scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FsProfile {
    /// Node-local tmpfs / ramdisk: near-zero per-op latency.
    #[default]
    TmpFs,
    /// NFS-mounted home directory: every metadata/IO op pays a round trip.
    Nfs,
}

impl FsProfile {
    /// Simulated seconds charged per filesystem operation.
    ///
    /// Calibrated so the seven Fig. 10 packages reproduce the paper's
    /// Fig. 11 overheads (mean ≈33%, max ≈63% on libpng, minimum on the
    /// compile-dominated dyninst).
    pub fn per_op_seconds(self) -> f64 {
        match self {
            FsProfile::TmpFs => 2.0e-5,
            FsProfile::Nfs => 4.2e-4,
        }
    }
}

/// A virtual-clock filesystem: counts operations, accumulates latency.
#[derive(Debug, Clone, Copy)]
pub struct SimFs {
    profile: FsProfile,
    ops: u64,
}

impl SimFs {
    /// A fresh filesystem with the given latency profile.
    pub fn new(profile: FsProfile) -> SimFs {
        SimFs { profile, ops: 0 }
    }

    /// Charge `n` metadata/IO operations (stat, open, read, write...).
    pub fn touch(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total operations charged so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Virtual seconds elapsed in filesystem operations.
    pub fn elapsed_seconds(&self) -> f64 {
        self.ops as f64 * self.profile.per_op_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfs_is_much_slower_per_op() {
        assert!(FsProfile::Nfs.per_op_seconds() > 10.0 * FsProfile::TmpFs.per_op_seconds());
    }

    #[test]
    fn elapsed_scales_with_ops() {
        let mut fs = SimFs::new(FsProfile::Nfs);
        fs.touch(1000);
        fs.touch(500);
        assert_eq!(fs.ops(), 1500);
        let expected = 1500.0 * FsProfile::Nfs.per_op_seconds();
        assert!((fs.elapsed_seconds() - expected).abs() < 1e-12);
    }
}
