//! # spack-buildenv
//!
//! The build environment of `spack-rs` (SC'15 §3.5): isolated, simulated
//! builds on a virtual clock.
//!
//! * [`wrapper`] — the compiler-wrapper argv rewriter (§3.5.2):
//!   `-I`/`-L`/`-Wl,-rpath` injection per dependency prefix, compiler
//!   switching by language, platform flag injection (Fig. 12);
//! * [`compilers`] — toolchain detection from PATH listings (§3.2.3);
//! * [`fetch`] — a deterministic simulated source mirror with MD5
//!   verification and corruption injection (§3.5, Fig. 1 checksums);
//! * [`simfs`] — the virtual-latency staging filesystem (NFS vs. local
//!   tmpfs, §3.5.3);
//! * [`buildsys`] — simulated build systems replaying calibrated
//!   per-package workloads against the wrapper and filesystem models
//!   (Figs. 10/11);
//! * [`platform`] — platform descriptions mapping (architecture,
//!   compiler) to extra wrapper flags (§4.5, Fig. 12);
//! * [`pipeline`] — the fetch→verify→patch→build→register install
//!   pipeline over a concrete DAG, with sub-DAG reuse (Fig. 9) and
//!   deterministic virtual-time parallelism.
//!
//! All timing is *virtual*: builds report simulated seconds derived from
//! the package workload, so results are bit-identical regardless of the
//! host machine or the `jobs` setting.

#![warn(missing_docs)]

pub mod buildsys;
pub mod compilers;
pub mod fetch;
pub mod pipeline;
pub mod platform;
pub mod simfs;
pub mod wrapper;

pub use buildsys::{run_build, BuildOutcome, BuildSettings};
pub use compilers::{detect_toolchains, Toolchain};
pub use fetch::{Archive, Mirror};
pub use pipeline::{install_dag, BuildRecord, InstallError, InstallOptions, InstallReport};
pub use platform::{Platform, PlatformRegistry};
pub use simfs::{FsProfile, SimFs};
pub use wrapper::{Language, Wrapper};
