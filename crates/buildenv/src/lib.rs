//! # spack-buildenv
//!
//! The build environment of `spack-rs` (SC'15 §3.5): isolated, simulated
//! builds on a virtual clock.
//!
//! * [`wrapper`] — the compiler-wrapper argv rewriter (§3.5.2):
//!   `-I`/`-L`/`-Wl,-rpath` injection per dependency prefix, compiler
//!   switching by language, platform flag injection (Fig. 12);
//! * [`compilers`] — toolchain detection from PATH listings (§3.2.3);
//! * [`fetch`] — deterministic simulated source mirrors with MD5
//!   verification and failover chains (§3.5, Fig. 1 checksums);
//! * [`faults`] — seeded, reproducible fault injection (transient
//!   fetches, tampered archives, build deaths) for chaos testing;
//! * [`simfs`] — the virtual-latency staging filesystem (NFS vs. local
//!   tmpfs, §3.5.3);
//! * [`buildsys`] — simulated build systems replaying calibrated
//!   per-package workloads against the wrapper and filesystem models
//!   (Figs. 10/11);
//! * [`platform`] — platform descriptions mapping (architecture,
//!   compiler) to extra wrapper flags (§4.5, Fig. 12);
//! * [`pipeline`] — the fetch→verify→patch→build→register install
//!   pipeline over a concrete DAG, with sub-DAG reuse (Fig. 9),
//!   deterministic virtual-time parallelism, retries with exponential
//!   backoff, and keep-going failure isolation with partial commits.
//!
//! All timing is *virtual*: builds report simulated seconds derived from
//! the package workload, so results are bit-identical regardless of the
//! host machine or the `jobs` setting.

#![warn(missing_docs)]

pub mod buildsys;
pub mod compilers;
pub mod faults;
pub mod fetch;
pub mod pipeline;
pub mod platform;
pub mod simfs;
pub mod wrapper;

pub use buildsys::{run_build, BuildOutcome, BuildSettings};
pub use compilers::{detect_toolchains, Toolchain};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultyMirror};
pub use fetch::{Archive, FetchError, FetchSource, Mirror, MirrorChain};
pub use pipeline::{
    install_dag, Backoff, BuildRecord, InstallError, InstallOptions, InstallReport, NodeStatus,
    RetryPolicy,
};
pub use platform::{Platform, PlatformRegistry};
pub use simfs::{FsProfile, SimFs};
pub use wrapper::{Language, Wrapper};
