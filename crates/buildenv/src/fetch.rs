//! The simulated source mirror (SC'15 §3.5, Fig. 1 checksums).
//!
//! Real Spack downloads a source archive per (package, version), checks
//! its MD5 against the `version()` directive, and refuses to build on a
//! mismatch. This module reproduces that contract deterministically: the
//! mirror synthesizes archive bytes from the (name, version) pair alone,
//! so every run — and every machine — sees the same archives and the same
//! digests. A [`Mirror::corrupting`] mirror serves tampered bytes to
//! exercise the verification path.

use spack_package::PackageDef;
use spack_spec::sha::{md5_hex, Sha256};
use spack_spec::Version;
use std::fmt;

/// A fetched source archive: URL, bytes, and verification outcome.
#[derive(Debug, Clone)]
pub struct Archive {
    /// Where the archive "came from" — extrapolated from the package's
    /// URL model when it has one, a synthetic mirror URL otherwise.
    pub url: String,
    /// The (simulated) archive contents.
    pub bytes: Vec<u8>,
    /// MD5 digest of `bytes`, lowercase hex.
    pub md5: String,
    /// Whether `md5` matches the checksum declared in the package's
    /// `version()` directive. Versions with no declared checksum verify
    /// trivially (there is nothing to check against).
    pub verified: bool,
}

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The requested version is not declared by the package.
    UnknownVersion {
        /// Package whose versions were consulted.
        package: String,
        /// The version that was requested.
        version: String,
    },
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownVersion { package, version } => {
                write!(f, "no known version {version} of {package}")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// The deterministic source mirror.
#[derive(Debug, Clone, Default)]
pub struct Mirror {
    corrupt: bool,
}

impl Mirror {
    /// A mirror serving pristine archives.
    pub fn new() -> Mirror {
        Mirror { corrupt: false }
    }

    /// A mirror serving tampered archives: fetched bytes differ from the
    /// canonical ones, so any version with a declared checksum fails
    /// verification. Used to test the md5-mismatch install path.
    pub fn corrupting() -> Mirror {
        Mirror { corrupt: true }
    }

    /// The canonical MD5 of the archive for `name` at `version` — what
    /// `spack checksum` would paste into the package file's `version()`
    /// directives (Fig. 1).
    pub fn checksum_of(name: &str, version: &Version) -> String {
        md5_hex(&canonical_bytes(name, &version.to_string()))
    }

    /// Fetch the archive for one declared version of `pkg`, verifying it
    /// against the checksum in the package's `version()` directive.
    pub fn fetch(&self, pkg: &PackageDef, version: &Version) -> Result<Archive, FetchError> {
        if !pkg.has_version(version) {
            return Err(FetchError::UnknownVersion {
                package: pkg.name.clone(),
                version: version.to_string(),
            });
        }
        let mut bytes = canonical_bytes(&pkg.name, &version.to_string());
        if self.corrupt {
            // Flip one byte: same length, different digest.
            bytes[0] ^= 0xff;
        }
        let md5 = md5_hex(&bytes);
        let verified = match pkg.checksum_for(version) {
            Some(declared) => declared == md5,
            None => true,
        };
        Ok(Archive {
            url: url_for(pkg, version),
            bytes,
            md5,
            verified,
        })
    }
}

/// Extrapolate the archive URL from the package's URL model (§3.2.3), or
/// synthesize a mirror path when the package declares none.
fn url_for(pkg: &PackageDef, version: &Version) -> String {
    if let Some(model) = &pkg.url_model {
        if let Some(url) = spack_package::url::extrapolate(model, &pkg.name, version) {
            return url;
        }
    }
    format!(
        "https://mirror.spack.invalid/{0}/{0}-{1}.tar.gz",
        pkg.name, version
    )
}

/// Deterministic pseudo-archive contents for (name, version): a seed
/// digest of the archive name feeds an xorshift stream whose length also
/// depends on the seed, so sizes vary plausibly across packages.
fn canonical_bytes(name: &str, version: &str) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(format!("{name}-{version}.tar.gz").as_bytes());
    let seed = h.finalize();
    let mut state = u64::from_be_bytes(seed[..8].try_into().unwrap()) | 1;
    let len = 4096 + (u64::from_be_bytes(seed[8..16].try_into().unwrap()) % 60_000) as usize;
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        // xorshift64
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        bytes.extend_from_slice(&state.to_le_bytes());
    }
    bytes.truncate(len);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::PackageBuilder;

    fn pkg_with_checksum() -> PackageDef {
        let v = Version::new("1.0").unwrap();
        let md5 = Mirror::checksum_of("demo", &v);
        PackageBuilder::new("demo")
            .version("1.0", &md5)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_mirror_verifies_declared_checksums() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let archive = Mirror::new().fetch(&pkg, &v).unwrap();
        assert!(archive.verified);
        assert_eq!(archive.md5, Mirror::checksum_of("demo", &v));
        assert!(archive.bytes.len() >= 4096);
    }

    #[test]
    fn corrupting_mirror_fails_verification() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let archive = Mirror::corrupting().fetch(&pkg, &v).unwrap();
        assert!(!archive.verified);
    }

    #[test]
    fn fetches_are_deterministic() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let a = Mirror::new().fetch(&pkg, &v).unwrap();
        let b = Mirror::new().fetch(&pkg, &v).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.md5, b.md5);
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let pkg = pkg_with_checksum();
        let v = Version::new("9.9").unwrap();
        assert!(Mirror::new().fetch(&pkg, &v).is_err());
    }

    #[test]
    fn url_model_is_extrapolated() {
        let v = Version::new("2.3").unwrap();
        let md5 = Mirror::checksum_of("mpileaks", &v);
        let pkg = PackageBuilder::new("mpileaks")
            .url_model("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz")
            .version("2.3", &md5)
            .build()
            .unwrap();
        let archive = Mirror::new().fetch(&pkg, &v).unwrap();
        assert!(archive.url.ends_with("mpileaks-2.3.tar.gz"));
        assert!(archive.url.contains("/v2.3/"));
    }
}
