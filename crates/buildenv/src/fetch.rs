//! The simulated source mirror (SC'15 §3.5, Fig. 1 checksums).
//!
//! Real Spack downloads a source archive per (package, version), checks
//! its MD5 against the `version()` directive, and refuses to build on a
//! mismatch. This module reproduces that contract deterministically: the
//! mirror synthesizes archive bytes from the (name, version) pair alone,
//! so every run — and every machine — sees the same archives and the same
//! digests. A [`Mirror::corrupting`] mirror serves tampered bytes to
//! exercise the verification path.
//!
//! [`Mirror`] is one implementation of the [`FetchSource`] trait; the
//! fault-injection wrapper ([`crate::faults::FaultyMirror`]) is another.
//! A [`MirrorChain`] strings sources into an ordered failover list: the
//! install pipeline fetches through the chain, which tries each mirror in
//! turn, skipping transient failures and unverifiable archives, and
//! records every fault it observed for the install report's provenance.

use crate::faults::{FaultEvent, FaultKind};
use spack_package::PackageDef;
use spack_spec::sha::{md5_hex, Sha256};
use spack_spec::Version;
use std::fmt;
use std::sync::Arc;

/// A fetched source archive: URL, bytes, and verification outcome.
#[derive(Debug, Clone)]
pub struct Archive {
    /// Where the archive "came from" — extrapolated from the package's
    /// URL model when it has one, a synthetic mirror URL otherwise.
    pub url: String,
    /// The (simulated) archive contents.
    pub bytes: Vec<u8>,
    /// MD5 digest of `bytes`, lowercase hex.
    pub md5: String,
    /// Whether `md5` matches the checksum declared in the package's
    /// `version()` directive. Versions with no declared checksum verify
    /// trivially (there is nothing to check against).
    pub verified: bool,
    /// When a fault plan tampered with this archive, the kind of injected
    /// fault — provenance for chaos reports. `None` for archives served
    /// as-is (including genuinely corrupt ones).
    pub injected: Option<FaultKind>,
}

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The requested version is not declared by the package. Permanent:
    /// no retry or failover can help.
    UnknownVersion {
        /// Package whose versions were consulted.
        package: String,
        /// The version that was requested.
        version: String,
    },
    /// The mirror dropped the connection mid-fetch. Transient: a retry
    /// or a failover to the next mirror in the chain may succeed.
    Transient {
        /// Package being fetched.
        package: String,
        /// Version being fetched.
        version: String,
        /// Label of the mirror that dropped the connection.
        mirror: String,
        /// 1-based attempt number the drop struck.
        attempt: u32,
    },
}

impl FetchError {
    /// True for failures a retry (or failover) can plausibly fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, FetchError::Transient { .. })
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownVersion { package, version } => {
                write!(f, "no known version {version} of {package}")
            }
            FetchError::Transient {
                package,
                version,
                mirror,
                attempt,
            } => write!(
                f,
                "transient failure fetching {package}@{version} from {mirror} (attempt {attempt})"
            ),
        }
    }
}

impl std::error::Error for FetchError {}

/// Anything that can serve source archives: a plain [`Mirror`], a
/// fault-injected one, or a test double. The `attempt` parameter lets
/// stateless sources vary behaviour across retries deterministically.
pub trait FetchSource: fmt::Debug + Send + Sync {
    /// A short stable label naming this source in reports.
    fn label(&self) -> &str;

    /// Fetch one declared version of `pkg` on the given 1-based attempt.
    fn fetch_version(
        &self,
        pkg: &PackageDef,
        version: &Version,
        attempt: u32,
    ) -> Result<Archive, FetchError>;
}

/// The deterministic source mirror.
#[derive(Debug, Clone)]
pub struct Mirror {
    corrupt: bool,
    name: String,
}

impl Default for Mirror {
    fn default() -> Self {
        Mirror::new()
    }
}

impl Mirror {
    /// A mirror serving pristine archives.
    pub fn new() -> Mirror {
        Mirror::named("mirror")
    }

    /// A pristine mirror with a custom label (distinct labels make the
    /// mirrors of a failover chain fail independently under chaos).
    pub fn named(name: &str) -> Mirror {
        Mirror {
            corrupt: false,
            name: name.to_string(),
        }
    }

    /// A mirror serving tampered archives: fetched bytes differ from the
    /// canonical ones, so any version with a declared checksum fails
    /// verification. Used to test the md5-mismatch install path.
    pub fn corrupting() -> Mirror {
        Mirror {
            corrupt: true,
            name: "corrupt-mirror".to_string(),
        }
    }

    /// This mirror's label.
    pub fn label(&self) -> &str {
        &self.name
    }

    /// The canonical MD5 of the archive for `name` at `version` — what
    /// `spack checksum` would paste into the package file's `version()`
    /// directives (Fig. 1).
    pub fn checksum_of(name: &str, version: &Version) -> String {
        md5_hex(&canonical_bytes(name, &version.to_string()))
    }

    /// Fetch the archive for one declared version of `pkg`, verifying it
    /// against the checksum in the package's `version()` directive.
    pub fn fetch(&self, pkg: &PackageDef, version: &Version) -> Result<Archive, FetchError> {
        if !pkg.has_version(version) {
            return Err(FetchError::UnknownVersion {
                package: pkg.name.clone(),
                version: version.to_string(),
            });
        }
        let mut bytes = canonical_bytes(&pkg.name, &version.to_string());
        if self.corrupt {
            // Flip one byte: same length, different digest.
            bytes[0] ^= 0xff;
        }
        let md5 = md5_hex(&bytes);
        let verified = match pkg.checksum_for(version) {
            Some(declared) => declared == md5,
            None => true,
        };
        Ok(Archive {
            url: url_for(pkg, version),
            bytes,
            md5,
            verified,
            injected: None,
        })
    }
}

impl FetchSource for Mirror {
    fn label(&self) -> &str {
        &self.name
    }

    fn fetch_version(
        &self,
        pkg: &PackageDef,
        version: &Version,
        _attempt: u32,
    ) -> Result<Archive, FetchError> {
        self.fetch(pkg, version)
    }
}

/// An ordered failover list of fetch sources. A fetch walks the chain:
/// the first verified archive wins; transient drops and unverifiable
/// archives fall through to the next mirror. When every mirror fails,
/// the chain surfaces an unverified archive if any mirror produced one
/// (so the caller reports a checksum mismatch over real bytes) and the
/// last transient error otherwise.
#[derive(Debug, Clone)]
pub struct MirrorChain {
    sources: Vec<Arc<dyn FetchSource>>,
}

impl Default for MirrorChain {
    fn default() -> Self {
        MirrorChain::single(Mirror::new())
    }
}

impl MirrorChain {
    /// A chain of one source.
    pub fn single(source: impl FetchSource + 'static) -> MirrorChain {
        MirrorChain {
            sources: vec![Arc::new(source)],
        }
    }

    /// A chain over an explicit ordered source list (must be non-empty).
    pub fn from_sources(sources: Vec<Arc<dyn FetchSource>>) -> MirrorChain {
        assert!(
            !sources.is_empty(),
            "a mirror chain needs at least one source"
        );
        MirrorChain { sources }
    }

    /// Append a fallback source at the end of the chain.
    pub fn push(&mut self, source: impl FetchSource + 'static) {
        self.sources.push(Arc::new(source));
    }

    /// Number of sources in the chain.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// A chain is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fetch through the chain, returning the outcome plus every fault
    /// observed along the way (failover provenance for the report).
    pub fn fetch_with_events(
        &self,
        pkg: &PackageDef,
        version: &Version,
        attempt: u32,
    ) -> (Result<Archive, FetchError>, Vec<FaultEvent>) {
        let mut events = Vec::new();
        let mut last_bad: Option<Archive> = None;
        let mut last_err: Option<FetchError> = None;
        for src in &self.sources {
            match src.fetch_version(pkg, version, attempt) {
                Ok(a) if a.verified => return (Ok(a), events),
                Ok(a) => {
                    events.push(FaultEvent {
                        kind: a.injected.unwrap_or(FaultKind::CorruptArchive),
                        source: src.label().to_string(),
                        attempt,
                        injected: a.injected.is_some(),
                    });
                    last_bad = Some(a);
                }
                Err(e @ FetchError::Transient { .. }) => {
                    events.push(FaultEvent {
                        kind: FaultKind::TransientFetch,
                        source: src.label().to_string(),
                        attempt,
                        injected: true,
                    });
                    last_err = Some(e);
                }
                // Permanent errors (unknown version) end the walk: every
                // mirror serves the same catalogue.
                Err(e) => return (Err(e), events),
            }
        }
        match last_bad {
            Some(a) => (Ok(a), events),
            None => (Err(last_err.expect("non-empty chain")), events),
        }
    }
}

/// Extrapolate the archive URL from the package's URL model (§3.2.3), or
/// synthesize a mirror path when the package declares none.
fn url_for(pkg: &PackageDef, version: &Version) -> String {
    if let Some(model) = &pkg.url_model {
        if let Some(url) = spack_package::url::extrapolate(model, &pkg.name, version) {
            return url;
        }
    }
    format!(
        "https://mirror.spack.invalid/{0}/{0}-{1}.tar.gz",
        pkg.name, version
    )
}

/// Deterministic pseudo-archive contents for (name, version): a seed
/// digest of the archive name feeds an xorshift stream whose length also
/// depends on the seed, so sizes vary plausibly across packages.
fn canonical_bytes(name: &str, version: &str) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(format!("{name}-{version}.tar.gz").as_bytes());
    let seed = h.finalize();
    let mut state = u64::from_be_bytes(seed[..8].try_into().unwrap()) | 1;
    let len = 4096 + (u64::from_be_bytes(seed[8..16].try_into().unwrap()) % 60_000) as usize;
    let mut bytes = Vec::with_capacity(len);
    while bytes.len() < len {
        // xorshift64
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        bytes.extend_from_slice(&state.to_le_bytes());
    }
    bytes.truncate(len);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::PackageBuilder;

    fn pkg_with_checksum() -> PackageDef {
        let v = Version::new("1.0").unwrap();
        let md5 = Mirror::checksum_of("demo", &v);
        PackageBuilder::new("demo")
            .version("1.0", &md5)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_mirror_verifies_declared_checksums() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let archive = Mirror::new().fetch(&pkg, &v).unwrap();
        assert!(archive.verified);
        assert_eq!(archive.md5, Mirror::checksum_of("demo", &v));
        assert!(archive.bytes.len() >= 4096);
    }

    #[test]
    fn corrupting_mirror_fails_verification() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let archive = Mirror::corrupting().fetch(&pkg, &v).unwrap();
        assert!(!archive.verified);
    }

    #[test]
    fn fetches_are_deterministic() {
        let pkg = pkg_with_checksum();
        let v = Version::new("1.0").unwrap();
        let a = Mirror::new().fetch(&pkg, &v).unwrap();
        let b = Mirror::new().fetch(&pkg, &v).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.md5, b.md5);
    }

    #[test]
    fn unknown_versions_are_rejected() {
        let pkg = pkg_with_checksum();
        let v = Version::new("9.9").unwrap();
        assert!(Mirror::new().fetch(&pkg, &v).is_err());
    }

    #[test]
    fn chain_fails_over_past_a_transient_mirror() {
        use crate::faults::{FaultPlan, FaultyMirror};
        let always_down = FaultPlan {
            transient_fetch: 1.0,
            ..FaultPlan::new(5)
        };
        let chain = MirrorChain::from_sources(vec![
            std::sync::Arc::new(FaultyMirror::new(Mirror::named("primary"), always_down)),
            std::sync::Arc::new(Mirror::named("backup")),
        ]);
        let v = Version::new("1.0").unwrap();
        let (res, events) = chain.fetch_with_events(&pkg_with_checksum(), &v, 1);
        let archive = res.unwrap();
        assert!(archive.verified);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::TransientFetch);
        assert_eq!(events[0].source, "primary");
        assert!(events[0].injected);
    }

    #[test]
    fn chain_surfaces_unverified_archive_when_all_mirrors_fail() {
        let chain = MirrorChain::single(Mirror::corrupting());
        let v = Version::new("1.0").unwrap();
        let (res, events) = chain.fetch_with_events(&pkg_with_checksum(), &v, 1);
        let archive = res.unwrap();
        assert!(!archive.verified);
        // A genuinely corrupt mirror is observed but not `injected`.
        assert_eq!(events.len(), 1);
        assert!(!events[0].injected);
        assert_eq!(events[0].kind, FaultKind::CorruptArchive);
    }

    #[test]
    fn chain_returns_last_transient_when_every_mirror_drops() {
        use crate::faults::{FaultPlan, FaultyMirror};
        let always_down = FaultPlan {
            transient_fetch: 1.0,
            ..FaultPlan::new(5)
        };
        let chain = MirrorChain::from_sources(vec![
            std::sync::Arc::new(FaultyMirror::new(Mirror::named("m0"), always_down)),
            std::sync::Arc::new(FaultyMirror::new(Mirror::named("m1"), always_down)),
        ]);
        let v = Version::new("1.0").unwrap();
        let (res, events) = chain.fetch_with_events(&pkg_with_checksum(), &v, 3);
        assert!(matches!(res, Err(FetchError::Transient { attempt: 3, .. })));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn chain_propagates_permanent_errors_immediately() {
        let chain = MirrorChain::from_sources(vec![
            std::sync::Arc::new(Mirror::named("m0")),
            std::sync::Arc::new(Mirror::named("m1")),
        ]);
        let v = Version::new("9.9").unwrap();
        let (res, events) = chain.fetch_with_events(&pkg_with_checksum(), &v, 1);
        assert!(matches!(res, Err(FetchError::UnknownVersion { .. })));
        assert!(events.is_empty());
    }

    #[test]
    fn url_model_is_extrapolated() {
        let v = Version::new("2.3").unwrap();
        let md5 = Mirror::checksum_of("mpileaks", &v);
        let pkg = PackageBuilder::new("mpileaks")
            .url_model("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz")
            .version("2.3", &md5)
            .build()
            .unwrap();
        let archive = Mirror::new().fetch(&pkg, &v).unwrap();
        assert!(archive.url.ends_with("mpileaks-2.3.tar.gz"));
        assert!(archive.url.contains("/v2.3/"));
    }
}
