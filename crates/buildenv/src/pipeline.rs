//! The install pipeline (SC'15 §3.5): fetch → verify → patch → build →
//! register, over a concrete DAG, bottom-up, with sub-DAG reuse (Fig. 9)
//! and fault tolerance (DESIGN.md §8).
//!
//! Every node whose sub-DAG hash is already in the database is reused
//! untouched; everything else is fetched through the mirror failover
//! chain, checksum verified, patched per the package's `patch()`
//! directives, built by the simulated build system, and registered with
//! its build log. Failures are survivable: transient fetch drops,
//! checksum mismatches, and (injected) build deaths are retried under a
//! [`RetryPolicy`] with exponential backoff charged in *virtual* time,
//! and `keep_going` mode isolates a node failure to its dependents —
//! independent subtrees still build, dependents are recorded as
//! [`NodeStatus::Skipped`], and every successful sub-DAG is committed.
//!
//! Installs run on a **parallel frontier scheduler** (DESIGN.md §9): a
//! ready-queue of nodes whose dependencies have all committed, drained by
//! `jobs` real worker threads (scoped threads from the vendored `rayon`
//! shim, coordinated with the vendored `parking_lot` mutex + condvar).
//! Completing a node unlocks its dependents; failing one either cancels
//! the frontier (fail-fast) or poisons only its dependents (`keep_going`).
//!
//! The *report* stays deterministic no matter how the workers interleave:
//! records are emitted in topo order, all accounting is aggregated
//! commutatively from per-node values, fault decisions are pure functions
//! of their coordinates, and timing is virtual — `serial`, `critical
//! path`, and the `jobs`-slot makespan are computed from per-node costs
//! by deterministic simulation, never from the wall clock. The measured
//! wall-clock duration is reported in [`InstallReport::wall_seconds`]
//! but deliberately kept out of [`InstallReport::render`], so two runs
//! with identical inputs render byte-identically at any `jobs` level.

use crate::buildsys::{run_build, BuildOutcome, BuildSettings};
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::fetch::{FetchError, MirrorChain};
use crate::platform::PlatformRegistry;
use parking_lot::{Condvar, Mutex};
use spack_package::RepoStack;
use spack_spec::{ConcreteDag, DagHashes, NodeId};
use spack_store::{Database, NamingScheme};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Deterministic virtual-time exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Wait charged after the first failed attempt.
    pub base_seconds: f64,
    /// Multiplier applied per subsequent failure.
    pub factor: f64,
    /// Ceiling on any single wait.
    pub cap_seconds: f64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_seconds: 1.0,
            factor: 2.0,
            cap_seconds: 60.0,
        }
    }
}

impl Backoff {
    /// Virtual seconds to wait after failed attempt `attempt` (1-based):
    /// `min(base * factor^(attempt-1), cap)`.
    pub fn wait_after(&self, attempt: u32) -> f64 {
        (self.base_seconds * self.factor.powi(attempt.saturating_sub(1) as i32))
            .min(self.cap_seconds)
    }
}

/// How often a node is retried and how long it waits in between.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per node, including the first (min 1).
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` extra attempts beyond the first.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries + 1,
            ..Default::default()
        }
    }
}

/// Options for [`install_dag`].
#[derive(Debug, Clone)]
pub struct InstallOptions {
    /// Worker threads draining the ready queue (min 1). Shapes wall-clock
    /// and the simulated [`InstallReport::makespan_seconds`]; every other
    /// report field is jobs-independent by design.
    pub jobs: usize,
    /// Mirror failover chain to fetch archives through.
    pub source: MirrorChain,
    /// Wrapper and staging-filesystem settings for every build.
    pub settings: BuildSettings,
    /// Retry budget and backoff schedule per node.
    pub retry: RetryPolicy,
    /// Isolate failures: keep building independent subtrees, record
    /// dependents as skipped, and commit every successful sub-DAG.
    /// When false (the default), the first failure aborts the install
    /// and the database is left exactly as found.
    pub keep_going: bool,
    /// Fault plan consulted for injected *build* failures (fetch-side
    /// faults are injected by wrapping mirrors in the chain).
    pub faults: Option<FaultPlan>,
}

impl Default for InstallOptions {
    fn default() -> Self {
        InstallOptions {
            jobs: 4,
            source: MirrorChain::default(),
            settings: BuildSettings::default(),
            retry: RetryPolicy::default(),
            keep_going: false,
            faults: None,
        }
    }
}

/// Why an install failed (fail-fast mode) or why one node failed
/// (recorded in [`NodeStatus::Failed`] under `keep_going`).
#[derive(Debug, Clone)]
pub enum InstallError {
    /// A DAG node names a package absent from every repository.
    UnknownPackage(String),
    /// The package has no install rule matching the concrete node.
    NoRecipe(String),
    /// No mirror could serve an archive within the retry budget.
    Fetch(FetchError),
    /// A fetched archive failed checksum verification (Fig. 1's md5
    /// directives) on every mirror and every attempt.
    ChecksumMismatch {
        /// Package whose archive was corrupt.
        package: String,
        /// Version fetched.
        version: String,
        /// Digest of the bytes actually fetched.
        actual: String,
    },
    /// The build itself died (today: only via fault injection) on every
    /// attempt.
    BuildFailed {
        /// Package whose build died.
        package: String,
        /// Version being built.
        version: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// An invariant broke after the commit point (e.g. a build-log
    /// attachment race). Never a user error.
    Internal(String),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::UnknownPackage(name) => {
                write!(f, "no repository provides package `{name}`")
            }
            InstallError::NoRecipe(name) => {
                write!(f, "package `{name}` has no install rule for this spec")
            }
            InstallError::Fetch(e) => write!(f, "fetch failed: {e}"),
            InstallError::ChecksumMismatch {
                package,
                version,
                actual,
            } => write!(
                f,
                "md5 mismatch for {package}@{version}: archive digests to {actual}, \
                 which does not match the version() directive"
            ),
            InstallError::BuildFailed {
                package,
                version,
                attempts,
            } => write!(
                f,
                "build of {package}@{version} failed after {attempts} attempt(s)"
            ),
            InstallError::Internal(msg) => write!(f, "internal install error: {msg}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<FetchError> for InstallError {
    fn from(e: FetchError) -> Self {
        InstallError::Fetch(e)
    }
}

/// Per-node outcome of an install.
#[derive(Debug, Clone)]
pub enum NodeStatus {
    /// Freshly built and committed.
    Built(BuildOutcome),
    /// An existing install satisfied this node untouched.
    Reused,
    /// Every attempt failed; nothing committed for this node.
    Failed {
        /// Rendered final error.
        error: String,
    },
    /// Never attempted: one or more dependencies failed or were skipped.
    Skipped {
        /// Names of the direct dependencies that blocked this node.
        blocked_on: Vec<String>,
    },
}

/// What happened to one DAG node during an install.
#[derive(Debug, Clone)]
pub struct BuildRecord {
    /// Package name.
    pub name: String,
    /// Sub-DAG hash identifying the exact configuration (Fig. 9).
    pub hash: String,
    /// Outcome of this node.
    pub status: NodeStatus,
    /// Names of the patches applied (§3.2.4 `patch()` directives).
    pub patches: Vec<String>,
    /// Fetch/build attempts consumed (0 for reused/skipped nodes).
    pub attempts: u32,
    /// Virtual seconds spent waiting between attempts.
    pub backoff_seconds: f64,
    /// Every fault observed while processing this node, in order.
    pub faults: Vec<FaultEvent>,
}

impl BuildRecord {
    /// True if an existing install satisfied this node untouched.
    pub fn reused(&self) -> bool {
        matches!(self.status, NodeStatus::Reused)
    }

    /// True if this node was freshly built.
    pub fn built(&self) -> bool {
        matches!(self.status, NodeStatus::Built(_))
    }

    /// Build cost breakdown; `None` unless freshly built.
    pub fn outcome(&self) -> Option<&BuildOutcome> {
        match &self.status {
            NodeStatus::Built(o) => Some(o),
            _ => None,
        }
    }
}

/// The result of installing one concrete DAG.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// One record per DAG node, in bottom-up build order.
    pub builds: Vec<BuildRecord>,
    /// Total simulated seconds if every build ran back-to-back,
    /// including retry backoff and wasted failed-attempt work.
    pub serial_seconds: f64,
    /// Simulated seconds on the DAG's critical path: the wall-clock floor
    /// with unlimited parallel build slots.
    pub critical_path_seconds: f64,
    /// Simulated seconds the install takes on `jobs` build slots under
    /// topo-priority list scheduling over the same per-node costs.
    /// Deterministic (it is computed by simulation, not measured), always
    /// within `[critical_path_seconds, serial_seconds]`, and the only
    /// report field that depends on `jobs` — which is why it is excluded
    /// from [`InstallReport::render`].
    pub makespan_seconds: f64,
    /// Build slots the makespan was simulated for (= `options.jobs`, min 1).
    pub jobs: usize,
    /// Measured wall-clock seconds of this install. The one
    /// nondeterministic field; excluded from [`InstallReport::render`].
    pub wall_seconds: f64,
    /// Extra attempts consumed beyond each node's first.
    pub retries: u32,
    /// Total virtual seconds charged to backoff waits.
    pub backoff_seconds: f64,
    /// Virtual seconds that produced nothing committed: backoff waits
    /// plus the build cost of failed attempts.
    pub wasted_seconds: f64,
}

impl InstallReport {
    /// How many nodes were actually built.
    pub fn built_count(&self) -> usize {
        self.builds.iter().filter(|b| b.built()).count()
    }

    /// How many nodes were satisfied by existing installs (Fig. 9).
    pub fn reused_count(&self) -> usize {
        self.builds.iter().filter(|b| b.reused()).count()
    }

    /// How many nodes failed outright.
    pub fn failed_count(&self) -> usize {
        self.builds
            .iter()
            .filter(|b| matches!(b.status, NodeStatus::Failed { .. }))
            .count()
    }

    /// How many nodes were skipped because a dependency failed.
    pub fn skipped_count(&self) -> usize {
        self.builds
            .iter()
            .filter(|b| matches!(b.status, NodeStatus::Skipped { .. }))
            .count()
    }

    /// Nodes committed to the database by this install (built + reused).
    pub fn committed_count(&self) -> usize {
        self.built_count() + self.reused_count()
    }

    /// Total faults observed (injected or genuine) across all nodes.
    pub fn fault_count(&self) -> usize {
        self.builds.iter().map(|b| b.faults.len()).sum()
    }

    /// Did every node commit?
    pub fn is_complete(&self) -> bool {
        self.failed_count() == 0 && self.skipped_count() == 0
    }

    /// Deterministic plain-text rendering: per-node lines (with fault
    /// provenance) plus the virtual-time accounting footer. Two installs
    /// with identical inputs render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for b in &self.builds {
            let status = match &b.status {
                NodeStatus::Built(o) => format!(
                    "built in {:.1}s ({} attempt{})",
                    o.total(),
                    b.attempts,
                    if b.attempts == 1 { "" } else { "s" }
                ),
                NodeStatus::Reused => "reused".to_string(),
                NodeStatus::Failed { error } => {
                    format!(
                        "FAILED after {} attempt{}: {error}",
                        b.attempts,
                        if b.attempts == 1 { "" } else { "s" }
                    )
                }
                NodeStatus::Skipped { blocked_on } => {
                    format!("skipped (blocked on {})", blocked_on.join(", "))
                }
            };
            out.push_str(&format!("{:<16} [{}] {status}\n", b.name, &b.hash[..8]));
            for fault in &b.faults {
                out.push_str(&format!("                 fault: {fault}\n"));
            }
        }
        out.push_str(&format!(
            "{} built, {} reused, {} failed, {} skipped; \
             {} retries, {:.1}s backoff, {:.1}s wasted; \
             {:.1}s serial, {:.1}s critical path\n",
            self.built_count(),
            self.reused_count(),
            self.failed_count(),
            self.skipped_count(),
            self.retries,
            self.backoff_seconds,
            self.wasted_seconds,
            self.serial_seconds,
            self.critical_path_seconds,
        ));
        out
    }
}

/// A node that survived fetch+build, ready to commit.
struct NodeSuccess {
    outcome: BuildOutcome,
    attempts: u32,
    backoff: f64,
    wasted: f64,
    faults: Vec<FaultEvent>,
    patches: Vec<String>,
    log: String,
}

/// A node that exhausted its retry budget (or hit a permanent error).
struct NodeFailure {
    error: InstallError,
    attempts: u32,
    backoff: f64,
    wasted: f64,
    faults: Vec<FaultEvent>,
}

/// Fetch, verify, patch, and build one node under the retry policy.
/// Charges backoff and wasted attempt cost in virtual time; never
/// touches the database.
#[allow(clippy::too_many_arguments)]
fn build_node(
    dag: &ConcreteDag,
    id: NodeId,
    repos: &RepoStack,
    platforms: &PlatformRegistry,
    root_dir: &str,
    hashes: &DagHashes,
    options: &InstallOptions,
) -> Result<NodeSuccess, Box<NodeFailure>> {
    let node = dag.node(id);
    let max_attempts = options.retry.max_attempts.max(1);
    let mut faults: Vec<FaultEvent> = Vec::new();
    let mut backoff = 0.0_f64;
    let mut wasted = 0.0_f64;

    let fail = |error, attempts, backoff, wasted, faults| {
        Err(Box::new(NodeFailure {
            error,
            attempts,
            backoff,
            wasted,
            faults,
        }))
    };

    // Repository and recipe lookups are permanent: no retry can help.
    let Some(pkg) = repos.get(&node.name) else {
        return fail(
            InstallError::UnknownPackage(node.name.clone()),
            0,
            backoff,
            wasted,
            faults,
        );
    };
    let node_spec = node.as_node_spec();
    let patches: Vec<String> = pkg
        .patches_for(&node_spec)
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let Some(recipe) = pkg.recipe_for(&node_spec) else {
        return fail(
            InstallError::NoRecipe(node.name.clone()),
            0,
            backoff,
            wasted,
            faults,
        );
    };

    // Dependency prefixes feed the wrapper's -I/-L/-rpath injection.
    let dep_prefixes: Vec<String> = node
        .deps
        .iter()
        .map(|&dep| NamingScheme::SpackDefault.prefix_for(root_dir, dag, dep, hashes))
        .collect();
    let wrapper = platforms.wrapper_for(node, &dep_prefixes);

    let mut attempt = 1u32;
    loop {
        let (fetched, mut events) = options
            .source
            .fetch_with_events(pkg, &node.version, attempt);
        faults.append(&mut events);
        // Retryable outcomes wait out the backoff and go around again;
        // permanent errors and exhausted budgets fail the node.
        let error = match fetched {
            Err(e) if e.is_transient() && attempt < max_attempts => None,
            Err(e) => Some(InstallError::Fetch(e)),
            Ok(archive) if !archive.verified => {
                if attempt < max_attempts {
                    None
                } else {
                    Some(InstallError::ChecksumMismatch {
                        package: node.name.clone(),
                        version: node.version.to_string(),
                        actual: archive.md5,
                    })
                }
            }
            Ok(archive) => {
                // Fetch verified: build (and maybe die to an injected
                // build fault, charging the full attempt cost as waste).
                let outcome = run_build(recipe, &pkg.workload, &wrapper, options.settings);
                let died = options.faults.as_ref().is_some_and(|p| {
                    p.decide(
                        FaultKind::BuildFailure,
                        &node.name,
                        &node.version.to_string(),
                        attempt,
                        "build",
                    )
                });
                if !died {
                    let log = render_log(
                        dag,
                        id,
                        &archive,
                        &outcome,
                        &patches,
                        &dep_prefixes,
                        attempt,
                    );
                    return Ok(NodeSuccess {
                        outcome,
                        attempts: attempt,
                        backoff,
                        wasted,
                        faults,
                        patches,
                        log,
                    });
                }
                wasted += outcome.total();
                faults.push(FaultEvent {
                    kind: FaultKind::BuildFailure,
                    source: "build".to_string(),
                    attempt,
                    injected: true,
                });
                if attempt < max_attempts {
                    None
                } else {
                    Some(InstallError::BuildFailed {
                        package: node.name.clone(),
                        version: node.version.to_string(),
                        attempts: attempt,
                    })
                }
            }
        };
        match error {
            Some(e) => return fail(e, attempt, backoff, wasted, faults),
            None => {
                backoff += options.retry.backoff.wait_after(attempt);
                attempt += 1;
            }
        }
    }
}

/// Build-log text for one successful node.
fn render_log(
    dag: &ConcreteDag,
    id: NodeId,
    archive: &crate::fetch::Archive,
    outcome: &BuildOutcome,
    patches: &[String],
    dep_prefixes: &[String],
    attempts: u32,
) -> String {
    let node = dag.node(id);
    let mut log = String::new();
    log.push_str(&format!("==> building {}@{}\n", node.name, node.version));
    if attempts > 1 {
        log.push_str(&format!("==> succeeded on attempt {attempts}\n"));
    }
    log.push_str(&format!(
        "==> fetched {} ({} bytes), md5 {} verified\n",
        archive.url,
        archive.bytes.len(),
        archive.md5
    ));
    for p in patches {
        log.push_str(&format!("==> applied patch {p}\n"));
    }
    for (&dep, prefix) in node.deps.iter().zip(dep_prefixes) {
        log.push_str(&format!(
            "==> dependency {} at {prefix}\n",
            dag.node(dep).name
        ));
    }
    log.push_str(&format!(
        "==> {} installed successfully in {:.1}s (simulated, {} compiler invocations)\n",
        node.name,
        outcome.total(),
        outcome.compiler_invocations
    ));
    log
}

/// One finalized node, as the workers hand it back to the report.
struct Finished {
    record: BuildRecord,
    /// Simulated cost charged to this node (0 for reused/skipped).
    cost: f64,
    /// Virtual seconds that produced nothing committed for this node.
    wasted: f64,
    /// Build log awaiting the batch commit (fail-fast mode only;
    /// keep-going attaches logs at the per-node commit).
    log: Option<String>,
    /// Failed or skipped: poisons dependents under `keep_going`.
    dead: bool,
}

/// Shared state of the frontier scheduler, guarded by one mutex. Workers
/// hold the lock only to claim ready nodes and to finalize completed
/// ones — every fetch/patch/build runs lock-free.
struct Frontier {
    /// Topo positions of nodes whose dependencies have all finalized,
    /// lowest position first (a min-heap via `Reverse`).
    ready: BinaryHeap<Reverse<usize>>,
    /// Per node: dependencies not yet finalized.
    waiting: Vec<usize>,
    /// Per node: failed or skipped (poisons dependents).
    dead: Vec<bool>,
    /// Per node: the finalized result.
    done: Vec<Option<Finished>>,
    /// Nodes not yet finalized; 0 means the frontier is drained.
    outstanding: usize,
    /// Fail-fast: every failure observed, with its topo position. The
    /// scheduler reports the one the serial loop would have hit first.
    failures: Vec<(usize, InstallError)>,
    /// Fail-fast: stop dispatching; workers drain and exit.
    cancelled: bool,
}

/// Deterministic list-scheduling simulation: run the DAG's per-node
/// virtual costs on `jobs` slots, dispatching the lowest topo position
/// first whenever a slot frees up. Returns the simulated makespan —
/// always within `[critical path, serial]`, and equal to those bounds at
/// `jobs = ∞` and `jobs = 1` respectively.
fn simulate_makespan(
    dag: &ConcreteDag,
    order: &[NodeId],
    topo_pos: &[usize],
    dependents: &[Vec<NodeId>],
    costs: &[f64],
    jobs: usize,
) -> f64 {
    /// f64 with a total order, so finish events sort in a BinaryHeap.
    #[derive(PartialEq)]
    struct Time(f64);
    impl Eq for Time {}
    impl PartialOrd for Time {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Time {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    let jobs = jobs.max(1);
    let mut waiting: Vec<usize> = (0..dag.len()).map(|id| dag.node(id).deps.len()).collect();
    let mut ready: BinaryHeap<Reverse<usize>> = (0..dag.len())
        .filter(|&id| waiting[id] == 0)
        .map(|id| Reverse(topo_pos[id]))
        .collect();
    // Running builds, earliest finish first (ties broken by topo position
    // so the simulation is deterministic even with equal costs).
    let mut running: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut now = 0.0_f64;
    let mut free = jobs;
    let mut remaining = dag.len();
    while remaining > 0 {
        while free > 0 {
            let Some(Reverse(pos)) = ready.pop() else {
                break;
            };
            free -= 1;
            running.push(Reverse((Time(now + costs[order[pos]]), pos)));
        }
        let Reverse((Time(t), pos)) = running.pop().expect("acyclic DAG never starves");
        now = t;
        free += 1;
        remaining -= 1;
        for &d in &dependents[order[pos]] {
            waiting[d] -= 1;
            if waiting[d] == 0 {
                ready.push(Reverse(topo_pos[d]));
            }
        }
    }
    now
}

/// Install a concrete DAG on the parallel frontier scheduler: `jobs`
/// worker threads drain a ready-queue of nodes whose dependencies have
/// committed, building missing nodes concurrently; completing a node
/// unlocks its dependents.
///
/// Fail-fast mode (the default): the first node failure cancels the
/// frontier — in-flight builds drain, nothing is dispatched afterwards,
/// the database is left exactly as found, and the error returned is the
/// one the serial loop would have hit first (deterministic under any
/// interleaving). With `keep_going`, failures are isolated — independent
/// subtrees still build, dependents are recorded as
/// [`NodeStatus::Skipped`], and every successful node is committed at
/// completion time under a narrow per-hash database lock (implicit, so
/// `gc` semantics survive a partial install). The report is byte-identical
/// across `jobs` values and interleavings; see the module docs for the
/// determinism contract.
pub fn install_dag(
    dag: &ConcreteDag,
    repos: &RepoStack,
    db: &Mutex<Database>,
    options: &InstallOptions,
) -> Result<InstallReport, InstallError> {
    let wall_start = std::time::Instant::now();
    let hashes = DagHashes::compute(dag);
    let platforms = PlatformRegistry::with_defaults();
    let jobs = options.jobs.max(1);

    let order = dag.topo_order();
    let mut topo_pos = vec![0usize; dag.len()];
    for (pos, &id) in order.iter().enumerate() {
        topo_pos[id] = pos;
    }
    let mut dependents: Vec<Vec<NodeId>> = vec![Vec::new(); dag.len()];
    for id in 0..dag.len() {
        for &dep in &dag.node(id).deps {
            dependents[dep].push(id);
        }
    }

    // One narrow lock up front: the store root plus the reuse probe for
    // every node. Probing against the *initial* database state matches
    // the serial semantics exactly (nothing this run commits can satisfy
    // its own nodes), so the probe is interleaving-independent.
    let (root_dir, reuse) = {
        let db = db.lock();
        let reuse: Vec<bool> = (0..dag.len())
            .map(|id| db.get(hashes.node_hash(id)).is_some())
            .collect();
        (db.root().to_string(), reuse)
    };

    let state = Mutex::new(Frontier {
        ready: (0..dag.len())
            .filter(|&id| dag.node(id).deps.is_empty())
            .map(|id| Reverse(topo_pos[id]))
            .collect(),
        waiting: (0..dag.len()).map(|id| dag.node(id).deps.len()).collect(),
        dead: vec![false; dag.len()],
        done: (0..dag.len()).map(|_| None).collect(),
        outstanding: dag.len(),
        failures: Vec::new(),
        cancelled: false,
    });
    let frontier_cv = Condvar::new();

    // Mark a node finished and unlock any dependents that become ready.
    // Called with the frontier lock held.
    let finalize = |st: &mut Frontier, id: NodeId, fin: Finished| {
        st.dead[id] = fin.dead;
        st.done[id] = Some(fin);
        st.outstanding -= 1;
        for &d in &dependents[id] {
            st.waiting[d] -= 1;
            if st.waiting[d] == 0 {
                st.ready.push(Reverse(topo_pos[d]));
            }
        }
    };

    let idle_record = |name: &str, hash: String, status: NodeStatus| BuildRecord {
        name: name.to_string(),
        hash,
        status,
        patches: Vec::new(),
        attempts: 0,
        backoff_seconds: 0.0,
        faults: Vec::new(),
    };

    let worker = || {
        loop {
            // Claim phase: take the lowest ready topo position. Nodes
            // blocked by a dead dependency are finalized as skipped
            // without ever leaving the lock (they do no work).
            let id = {
                let mut st = state.lock();
                loop {
                    if st.cancelled || st.outstanding == 0 {
                        frontier_cv.notify_all();
                        return;
                    }
                    let Some(Reverse(pos)) = st.ready.pop() else {
                        frontier_cv.wait(&mut st);
                        continue;
                    };
                    let id = order[pos];
                    let node = dag.node(id);
                    // All deps are finalized here, so `blocked_on` is the
                    // same list the serial loop would compute.
                    let blocked_on: Vec<String> = node
                        .deps
                        .iter()
                        .filter(|&&d| st.dead[d])
                        .map(|&d| dag.node(d).name.clone())
                        .collect();
                    if blocked_on.is_empty() {
                        break id;
                    }
                    let record = idle_record(
                        &node.name,
                        hashes.node_hash(id).to_string(),
                        NodeStatus::Skipped { blocked_on },
                    );
                    finalize(
                        &mut st,
                        id,
                        Finished {
                            record,
                            cost: 0.0,
                            wasted: 0.0,
                            log: None,
                            dead: true,
                        },
                    );
                    frontier_cv.notify_all();
                }
            };

            let node = dag.node(id);
            let hash = hashes.node_hash(id).to_string();

            // Work phase: no scheduler lock held.
            let fin = if reuse[id] {
                Finished {
                    record: idle_record(&node.name, hash, NodeStatus::Reused),
                    cost: 0.0,
                    wasted: 0.0,
                    log: None,
                    dead: false,
                }
            } else {
                match build_node(dag, id, repos, &platforms, &root_dir, &hashes, options) {
                    Ok(done) => {
                        let cost = done.outcome.total() + done.backoff + done.wasted;
                        let mut status = NodeStatus::Built(done.outcome);
                        let mut log = Some(done.log);
                        let mut dead = false;
                        if options.keep_going {
                            // Per-hash commit at completion time: the lock
                            // covers one record insert plus its log. If
                            // another session committed this exact hash
                            // first, our build lost the race — reuse theirs.
                            let mut db = db.lock();
                            if db.commit_node(dag, id, &hashes) {
                                if let Err(e) = db.attach_build_log(&hash, log.take().unwrap()) {
                                    status = NodeStatus::Failed {
                                        error: InstallError::Internal(format!(
                                            "attaching build log for {hash}: {e}"
                                        ))
                                        .to_string(),
                                    };
                                    dead = true;
                                }
                            } else {
                                status = NodeStatus::Reused;
                                log = None;
                            }
                        }
                        Finished {
                            record: BuildRecord {
                                name: node.name.clone(),
                                hash,
                                status,
                                patches: done.patches,
                                attempts: done.attempts,
                                backoff_seconds: done.backoff,
                                faults: done.faults,
                            },
                            cost,
                            wasted: done.backoff + done.wasted,
                            log,
                            dead,
                        }
                    }
                    Err(failure) => {
                        if !options.keep_going {
                            // Cancel the frontier; record the failure with
                            // its topo position so the winner is the same
                            // one the serial loop would have returned.
                            let mut st = state.lock();
                            st.failures.push((topo_pos[id], failure.error));
                            st.cancelled = true;
                            frontier_cv.notify_all();
                            return;
                        }
                        Finished {
                            record: BuildRecord {
                                name: node.name.clone(),
                                hash,
                                status: NodeStatus::Failed {
                                    error: failure.error.to_string(),
                                },
                                patches: Vec::new(),
                                attempts: failure.attempts,
                                backoff_seconds: failure.backoff,
                                faults: failure.faults,
                            },
                            cost: failure.backoff + failure.wasted,
                            wasted: failure.backoff + failure.wasted,
                            log: None,
                            dead: true,
                        }
                    }
                }
            };

            let mut st = state.lock();
            finalize(&mut st, id, fin);
            frontier_cv.notify_all();
        }
    };

    // The worker pool: `jobs` real scoped threads (vendored rayon shim).
    rayon::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|_| worker());
        }
    });

    let mut state = state.into_inner();
    if !state.failures.is_empty() {
        // Fail-fast: nothing was committed, database as found. Several
        // in-flight nodes may have failed concurrently; surface the one
        // earliest in topo order — exactly the serial loop's error.
        let min = state
            .failures
            .iter()
            .enumerate()
            .min_by_key(|(_, (pos, _))| *pos)
            .map(|(i, _)| i)
            .expect("non-empty");
        return Err(state.failures.swap_remove(min).1);
    }

    // Report assembly, in topo order: deterministic record order and
    // deterministic (commutative-by-construction) accounting sums.
    let mut builds = Vec::with_capacity(dag.len());
    let mut logs: Vec<(String, String)> = Vec::new();
    let mut costs = vec![0.0_f64; dag.len()];
    let mut retries = 0u32;
    let mut backoff_seconds = 0.0_f64;
    let mut wasted_seconds = 0.0_f64;
    for &id in &order {
        let fin = state.done[id].take().expect("every node finalized");
        costs[id] = fin.cost;
        retries += fin.record.attempts.saturating_sub(1);
        backoff_seconds += fin.record.backoff_seconds;
        wasted_seconds += fin.wasted;
        if let Some(log) = fin.log {
            logs.push((fin.record.hash.clone(), log));
        }
        builds.push(fin.record);
    }
    let complete = !state.dead.iter().any(|&d| d);

    // Commit phase. Keep-going already committed per node; a complete
    // install additionally claims the requested root as explicit.
    // Fail-fast commits everything here, in one batch.
    {
        let mut db = db.lock();
        if !options.keep_going {
            db.install_dag_as(dag, true);
            for (hash, log) in logs {
                db.attach_build_log(&hash, log).map_err(|e| {
                    InstallError::Internal(format!("attaching build log for {hash}: {e}"))
                })?;
            }
        } else if complete {
            db.install_dag_as(dag, true);
        }
    }

    let serial_seconds = costs.iter().sum();
    // finish[id] = cost[id] + max(finish[dep]); topo order is bottom-up.
    let mut finish = vec![0.0_f64; dag.len()];
    for &id in &order {
        let slowest_dep =
            dag.node(id).deps.iter().fold(
                0.0_f64,
                |acc, &d| {
                    if finish[d] > acc {
                        finish[d]
                    } else {
                        acc
                    }
                },
            );
        finish[id] = costs[id] + slowest_dep;
    }
    let critical_path_seconds = finish[dag.root()];
    let makespan_seconds = simulate_makespan(dag, &order, &topo_pos, &dependents, &costs, jobs);

    Ok(InstallReport {
        builds,
        serial_seconds,
        critical_path_seconds,
        makespan_seconds,
        jobs,
        wall_seconds: wall_start.elapsed().as_secs_f64(),
        retries,
        backoff_seconds,
        wasted_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultyMirror;
    use crate::fetch::{Archive, FetchSource, Mirror};
    use spack_package::{PackageBuilder, PackageDef, Repository};
    use spack_spec::dag::node;
    use spack_spec::{DagBuilder, Version};

    fn test_repo_with(names: &[&str]) -> RepoStack {
        let mut repo = Repository::new("test");
        for &name in names {
            let v = Version::new("1.0").unwrap();
            repo.register(
                PackageBuilder::new(name)
                    .version("1.0", &Mirror::checksum_of(name, &v))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        RepoStack::with_builtin(repo)
    }

    fn test_repo() -> RepoStack {
        test_repo_with(&["leaf", "mid", "root-pkg"])
    }

    fn chain_dag() -> ConcreteDag {
        // root-pkg -> mid -> leaf
        let mut b = DagBuilder::new();
        let leaf = b
            .add_node(node("leaf", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let mid = b
            .add_node(node("mid", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let root = b
            .add_node(node("root-pkg", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        b.add_edge(mid, leaf);
        b.add_edge(root, mid);
        b.build(root).unwrap()
    }

    /// root-pkg -> {left, right} -> leaf
    fn diamond_dag() -> ConcreteDag {
        let mut b = DagBuilder::new();
        let leaf = b
            .add_node(node("leaf", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let left = b
            .add_node(node("left", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let right = b
            .add_node(node("right", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let root = b
            .add_node(node("root-pkg", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        b.add_edge(left, leaf);
        b.add_edge(right, leaf);
        b.add_edge(root, left);
        b.add_edge(root, right);
        b.build(root).unwrap()
    }

    fn diamond_repo() -> RepoStack {
        test_repo_with(&["leaf", "left", "right", "root-pkg"])
    }

    /// A fetch source that always drops the connection for one package
    /// and serves everything else pristinely.
    #[derive(Debug)]
    struct BlackholeFor {
        package: String,
        inner: Mirror,
    }

    impl BlackholeFor {
        fn new(package: &str) -> BlackholeFor {
            BlackholeFor {
                package: package.to_string(),
                inner: Mirror::new(),
            }
        }
    }

    impl FetchSource for BlackholeFor {
        fn label(&self) -> &str {
            "blackhole"
        }

        fn fetch_version(
            &self,
            pkg: &PackageDef,
            version: &Version,
            attempt: u32,
        ) -> Result<Archive, FetchError> {
            if pkg.name == self.package {
                return Err(FetchError::Transient {
                    package: pkg.name.clone(),
                    version: version.to_string(),
                    mirror: "blackhole".to_string(),
                    attempt,
                });
            }
            self.inner.fetch(pkg, version)
        }
    }

    /// Drops the connection on attempt 1 only — succeeds on retry.
    #[derive(Debug)]
    struct FlakyOnce {
        inner: Mirror,
    }

    impl FetchSource for FlakyOnce {
        fn label(&self) -> &str {
            "flaky"
        }

        fn fetch_version(
            &self,
            pkg: &PackageDef,
            version: &Version,
            attempt: u32,
        ) -> Result<Archive, FetchError> {
            if attempt == 1 {
                return Err(FetchError::Transient {
                    package: pkg.name.clone(),
                    version: version.to_string(),
                    mirror: "flaky".to_string(),
                    attempt,
                });
            }
            self.inner.fetch(pkg, version)
        }
    }

    #[test]
    fn installs_bottom_up_and_reuses_on_reinstall() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let report = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(report.built_count(), 3);
        assert_eq!(report.reused_count(), 0);
        assert!(report.serial_seconds > 0.0);
        // A chain has no parallelism: critical path == serial time.
        assert!((report.critical_path_seconds - report.serial_seconds).abs() < 1e-9);

        let again = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(again.built_count(), 0);
        assert_eq!(again.reused_count(), 3);
        assert_eq!(again.serial_seconds, 0.0);
    }

    #[test]
    fn corrupt_archives_abort_without_registering() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let opts = InstallOptions {
            source: MirrorChain::single(Mirror::corrupting()),
            ..Default::default()
        };
        let err = install_dag(&dag, &repos, &db, &opts).unwrap_err();
        assert!(err.to_string().contains("md5 mismatch"), "{err}");
        assert_eq!(db.lock().len(), 0);
    }

    #[test]
    fn build_logs_are_attached() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        let db = db.lock();
        let hashes = DagHashes::compute(&dag);
        let rec = db.get(hashes.node_hash(dag.root())).unwrap();
        let log = rec.build_log.as_ref().unwrap();
        assert!(log.contains("==> building root-pkg@1.0"));
        assert!(log.contains("==> dependency mid at /spack/opt/"));
        assert!(log.contains("installed successfully"));
    }

    #[test]
    fn diamond_critical_path_is_max_over_parallel_arms() {
        let repos = diamond_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = diamond_dag();
        let report = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(report.built_count(), 4);

        // Reconstruct per-node costs from the report.
        let cost = |name: &str| -> f64 {
            report
                .builds
                .iter()
                .find(|b| b.name == name)
                .and_then(|b| b.outcome())
                .map(|o| o.total())
                .unwrap()
        };
        let (leaf, left, right, root) =
            (cost("leaf"), cost("left"), cost("right"), cost("root-pkg"));
        let expected_cp = leaf + left.max(right) + root;
        assert!(
            (report.critical_path_seconds - expected_cp).abs() < 1e-9,
            "cp {} != max-over-arms {}",
            report.critical_path_seconds,
            expected_cp
        );
        let serial = leaf + left + right + root;
        assert!((report.serial_seconds - serial).abs() < 1e-9);
        // The two arms overlap, so the critical path is strictly shorter.
        assert!(report.critical_path_seconds < report.serial_seconds);
    }

    #[test]
    fn transient_fetches_succeed_after_retry_with_backoff_charged() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let opts = InstallOptions {
            source: MirrorChain::single(FlakyOnce {
                inner: Mirror::new(),
            }),
            retry: RetryPolicy::with_retries(2),
            ..Default::default()
        };
        let report = install_dag(&dag, &repos, &db, &opts).unwrap();
        assert_eq!(report.built_count(), 3);
        assert_eq!(report.retries, 3, "each node retried once");
        // Each node waited out one base backoff.
        let base = opts.retry.backoff.base_seconds;
        assert!((report.backoff_seconds - 3.0 * base).abs() < 1e-9);
        assert!((report.wasted_seconds - 3.0 * base).abs() < 1e-9);
        for b in &report.builds {
            assert_eq!(b.attempts, 2);
            assert_eq!(b.faults.len(), 1);
            assert!(b.faults[0].injected);
        }
        // Backoff is charged to virtual time.
        let build_only: f64 = report
            .builds
            .iter()
            .filter_map(|b| b.outcome())
            .map(|o| o.total())
            .sum();
        assert!((report.serial_seconds - (build_only + 3.0 * base)).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retry_budget_fails_fast_with_attempt_count() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let opts = InstallOptions {
            source: MirrorChain::single(BlackholeFor::new("leaf")),
            retry: RetryPolicy::with_retries(2),
            ..Default::default()
        };
        let err = install_dag(&dag, &repos, &db, &opts).unwrap_err();
        assert!(matches!(
            err,
            InstallError::Fetch(FetchError::Transient { attempt: 3, .. })
        ));
        assert_eq!(db.lock().len(), 0, "fail-fast commits nothing");
    }

    #[test]
    fn keep_going_isolates_failure_commits_subtree_and_rerun_completes() {
        let repos = diamond_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = diamond_dag();

        // `left` is unfetchable: leaf and right still build and commit;
        // root is blocked on left.
        let opts = InstallOptions {
            source: MirrorChain::single(BlackholeFor::new("left")),
            keep_going: true,
            ..Default::default()
        };
        let report = install_dag(&dag, &repos, &db, &opts).unwrap();
        assert_eq!(report.built_count(), 2);
        assert_eq!(report.failed_count(), 1);
        assert_eq!(report.skipped_count(), 1);
        let by_name = |n: &str| report.builds.iter().find(|b| b.name == n).unwrap();
        assert!(matches!(by_name("leaf").status, NodeStatus::Built(_)));
        assert!(matches!(by_name("right").status, NodeStatus::Built(_)));
        assert!(matches!(by_name("left").status, NodeStatus::Failed { .. }));
        match &by_name("root-pkg").status {
            NodeStatus::Skipped { blocked_on } => assert_eq!(blocked_on, &["left".to_string()]),
            other => panic!("root should be skipped, got {other:?}"),
        }

        // The successful sub-DAG is committed — implicit, with build logs.
        {
            let db = db.lock();
            assert_eq!(db.len(), 2);
            for rec in db.iter() {
                assert!(!rec.explicit, "partial commits are never explicit");
                assert!(rec.build_log.is_some());
            }
        }

        // Rerun against a clean mirror: committed nodes are reused, only
        // the previously failed/skipped ones build, root goes explicit.
        let rerun = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(rerun.reused_count(), 2);
        assert_eq!(rerun.built_count(), 2);
        assert!(rerun.is_complete());
        let db = db.lock();
        assert_eq!(db.len(), 4);
        let hashes = DagHashes::compute(&dag);
        assert!(db.get(hashes.node_hash(dag.root())).unwrap().explicit);
    }

    #[test]
    fn chaos_reports_are_bit_identical_across_runs() {
        let repos = diamond_repo();
        let dag = diamond_dag();
        let run = || {
            let plan = FaultPlan::uniform(11, 0.3);
            let opts = InstallOptions {
                source: MirrorChain::from_sources(vec![
                    std::sync::Arc::new(FaultyMirror::new(Mirror::named("m0"), plan)),
                    std::sync::Arc::new(FaultyMirror::new(Mirror::named("m1"), plan)),
                ]),
                faults: Some(plan),
                retry: RetryPolicy::with_retries(2),
                keep_going: true,
                ..Default::default()
            };
            let db = Mutex::new(Database::new("/spack/opt"));
            install_dag(&dag, &repos, &db, &opts).unwrap().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn injected_build_failures_charge_wasted_work() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let plan = FaultPlan {
            build_failure: 1.0,
            ..FaultPlan::new(1)
        };
        let opts = InstallOptions {
            faults: Some(plan),
            retry: RetryPolicy::with_retries(1),
            keep_going: true,
            ..Default::default()
        };
        let report = install_dag(&dag, &repos, &db, &opts).unwrap();
        // The leaf fails both attempts; everything above is skipped.
        assert_eq!(report.failed_count(), 1);
        assert_eq!(report.skipped_count(), 2);
        let leaf = &report.builds[0];
        assert_eq!(leaf.attempts, 2);
        assert_eq!(leaf.faults.len(), 2);
        // Wasted = two dead build attempts + one backoff wait.
        assert!(report.wasted_seconds > report.backoff_seconds);
        assert!((report.serial_seconds - report.wasted_seconds).abs() < 1e-9);
        assert_eq!(db.lock().len(), 0);
    }

    #[test]
    fn makespan_interpolates_between_serial_and_critical_path() {
        let repos = diamond_repo();
        let dag = diamond_dag();
        let run = |jobs: usize| {
            let db = Mutex::new(Database::new("/spack/opt"));
            let opts = InstallOptions {
                jobs,
                ..Default::default()
            };
            install_dag(&dag, &repos, &db, &opts).unwrap()
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        // One slot degenerates to the serial walk.
        assert!((one.makespan_seconds - one.serial_seconds).abs() < 1e-9);
        // The diamond's only parallelism is its two arms: two slots
        // already achieve the critical path, more slots sit idle.
        assert!((two.makespan_seconds - two.critical_path_seconds).abs() < 1e-9);
        assert!((eight.makespan_seconds - two.makespan_seconds).abs() < 1e-9);
        // More workers never hurt, and the bounds always hold.
        assert!(two.makespan_seconds <= one.makespan_seconds + 1e-9);
        for r in [&one, &two, &eight] {
            assert!(r.makespan_seconds >= r.critical_path_seconds - 1e-9);
            assert!(r.makespan_seconds <= r.serial_seconds + 1e-9);
        }
    }

    #[test]
    fn render_is_independent_of_jobs_and_wall_clock() {
        let repos = diamond_repo();
        let dag = diamond_dag();
        let render = |jobs: usize| {
            let db = Mutex::new(Database::new("/spack/opt"));
            let opts = InstallOptions {
                jobs,
                ..Default::default()
            };
            let report = install_dag(&dag, &repos, &db, &opts).unwrap();
            assert_eq!(report.jobs, jobs.max(1));
            assert!(report.wall_seconds >= 0.0);
            report.render()
        };
        let serial = render(1);
        for jobs in [2, 4, 8] {
            assert_eq!(render(jobs), serial, "render drifted at jobs={jobs}");
        }
    }

    #[test]
    fn fail_fast_under_concurrency_reports_first_topo_failure() {
        // Both diamond arms are unfetchable; whichever worker loses the
        // race, the reported error must be the serial loop's: the arm
        // earlier in topo order (left).
        #[derive(Debug)]
        struct BlackholePair {
            inner: Mirror,
        }
        impl FetchSource for BlackholePair {
            fn label(&self) -> &str {
                "blackhole-pair"
            }
            fn fetch_version(
                &self,
                pkg: &PackageDef,
                version: &Version,
                attempt: u32,
            ) -> Result<Archive, FetchError> {
                if pkg.name == "left" || pkg.name == "right" {
                    return Err(FetchError::Transient {
                        package: pkg.name.clone(),
                        version: version.to_string(),
                        mirror: "blackhole-pair".to_string(),
                        attempt,
                    });
                }
                self.inner.fetch(pkg, version)
            }
        }
        let repos = diamond_repo();
        let dag = diamond_dag();
        let topo_names: Vec<&str> = dag
            .topo_order()
            .iter()
            .map(|&id| dag.node(id).name.as_str())
            .collect();
        let first_arm = *topo_names
            .iter()
            .find(|n| **n == "left" || **n == "right")
            .unwrap();
        for _ in 0..16 {
            let db = Mutex::new(Database::new("/spack/opt"));
            let opts = InstallOptions {
                source: MirrorChain::single(BlackholePair {
                    inner: Mirror::new(),
                }),
                jobs: 8,
                ..Default::default()
            };
            let err = install_dag(&dag, &repos, &db, &opts).unwrap_err();
            match &err {
                InstallError::Fetch(FetchError::Transient { package, .. }) => {
                    assert_eq!(package, first_arm, "fail-fast picked a later failure");
                }
                other => panic!("unexpected error {other}"),
            }
            assert_eq!(db.lock().len(), 0, "fail-fast commits nothing");
        }
    }
}
