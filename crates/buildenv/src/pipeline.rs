//! The install pipeline (SC'15 §3.5): fetch → verify → patch → build →
//! register, over a concrete DAG, bottom-up, with sub-DAG reuse (Fig. 9).
//!
//! Every node whose sub-DAG hash is already in the database is reused
//! untouched; everything else is fetched from the mirror, checksum
//! verified, patched per the package's `patch()` directives, built by the
//! simulated build system, and registered with its build log. Timing is
//! virtual, so the report is bit-identical regardless of `jobs`: the
//! `jobs` knob models wall-clock parallelism, which the report exposes as
//! the DAG's serial vs. critical-path seconds instead.

use crate::buildsys::{run_build, BuildOutcome, BuildSettings};
use crate::fetch::{FetchError, Mirror};
use crate::platform::PlatformRegistry;
use parking_lot::Mutex;
use spack_package::RepoStack;
use spack_spec::{ConcreteDag, DagHashes};
use spack_store::{Database, NamingScheme};
use std::fmt;

/// Options for [`install_dag`].
#[derive(Debug, Clone)]
pub struct InstallOptions {
    /// Maximum concurrent build slots. Affects only (hypothetical)
    /// wall-clock; virtual-time results are jobs-independent by design.
    pub jobs: usize,
    /// Source mirror to fetch archives from.
    pub mirror: Mirror,
    /// Wrapper and staging-filesystem settings for every build.
    pub settings: BuildSettings,
}

impl Default for InstallOptions {
    fn default() -> Self {
        InstallOptions {
            jobs: 4,
            mirror: Mirror::new(),
            settings: BuildSettings::default(),
        }
    }
}

/// Why an install failed. No partial state is committed: the database is
/// untouched unless every node of the DAG succeeded.
#[derive(Debug, Clone)]
pub enum InstallError {
    /// A DAG node names a package absent from every repository.
    UnknownPackage(String),
    /// The package has no install rule matching the concrete node.
    NoRecipe(String),
    /// The mirror could not serve an archive.
    Fetch(FetchError),
    /// A fetched archive failed checksum verification (Fig. 1's md5
    /// directives): the build is aborted before anything is registered.
    ChecksumMismatch {
        /// Package whose archive was corrupt.
        package: String,
        /// Version fetched.
        version: String,
        /// Digest of the bytes actually fetched.
        actual: String,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::UnknownPackage(name) => {
                write!(f, "no repository provides package `{name}`")
            }
            InstallError::NoRecipe(name) => {
                write!(f, "package `{name}` has no install rule for this spec")
            }
            InstallError::Fetch(e) => write!(f, "fetch failed: {e}"),
            InstallError::ChecksumMismatch {
                package,
                version,
                actual,
            } => write!(
                f,
                "md5 mismatch for {package}@{version}: archive digests to {actual}, \
                 which does not match the version() directive"
            ),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<FetchError> for InstallError {
    fn from(e: FetchError) -> Self {
        InstallError::Fetch(e)
    }
}

/// What happened to one DAG node during an install.
#[derive(Debug, Clone)]
pub struct BuildRecord {
    /// Package name.
    pub name: String,
    /// Sub-DAG hash identifying the exact configuration (Fig. 9).
    pub hash: String,
    /// True if an existing install satisfied this node untouched.
    pub reused: bool,
    /// Build cost breakdown; `None` for reused nodes.
    pub outcome: Option<BuildOutcome>,
    /// Names of the patches applied (§3.2.4 `patch()` directives).
    pub patches: Vec<String>,
}

/// The result of installing one concrete DAG.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// One record per DAG node, in bottom-up build order.
    pub builds: Vec<BuildRecord>,
    /// Total simulated seconds if every build ran back-to-back.
    pub serial_seconds: f64,
    /// Simulated seconds on the DAG's critical path: the wall-clock floor
    /// with unlimited parallel build slots.
    pub critical_path_seconds: f64,
}

impl InstallReport {
    /// How many nodes were actually built.
    pub fn built_count(&self) -> usize {
        self.builds.iter().filter(|b| !b.reused).count()
    }

    /// How many nodes were satisfied by existing installs (Fig. 9).
    pub fn reused_count(&self) -> usize {
        self.builds.iter().filter(|b| b.reused).count()
    }
}

/// Install a concrete DAG: build every missing node bottom-up, then
/// register the DAG (root marked explicit) and attach build logs.
///
/// All-or-nothing: any failure leaves the database exactly as found.
pub fn install_dag(
    dag: &ConcreteDag,
    repos: &RepoStack,
    db: &Mutex<Database>,
    options: &InstallOptions,
) -> Result<InstallReport, InstallError> {
    let mut db = db.lock();
    let hashes = DagHashes::compute(dag);
    let platforms = PlatformRegistry::with_defaults();
    let root_dir = db.root().to_string();

    let mut builds = Vec::with_capacity(dag.len());
    let mut logs: Vec<(String, String)> = Vec::new();
    // Per-node simulated cost (0 for reused nodes), indexed by NodeId.
    let mut costs = vec![0.0_f64; dag.len()];

    for id in dag.topo_order() {
        let node = dag.node(id);
        let hash = hashes.node_hash(id).to_string();
        if db.get(&hash).is_some() {
            builds.push(BuildRecord {
                name: node.name.clone(),
                hash,
                reused: true,
                outcome: None,
                patches: Vec::new(),
            });
            continue;
        }

        let pkg = repos
            .get(&node.name)
            .ok_or_else(|| InstallError::UnknownPackage(node.name.clone()))?;

        // Fetch and verify (Fig. 1 checksums) before anything else.
        let archive = options.mirror.fetch(pkg, &node.version)?;
        if !archive.verified {
            return Err(InstallError::ChecksumMismatch {
                package: node.name.clone(),
                version: node.version.to_string(),
                actual: archive.md5,
            });
        }

        let node_spec = node.as_node_spec();
        let patches: Vec<String> = pkg
            .patches_for(&node_spec)
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let recipe = pkg
            .recipe_for(&node_spec)
            .ok_or_else(|| InstallError::NoRecipe(node.name.clone()))?;

        // Dependency prefixes feed the wrapper's -I/-L/-rpath injection.
        let dep_prefixes: Vec<String> = node
            .deps
            .iter()
            .map(|&dep| NamingScheme::SpackDefault.prefix_for(&root_dir, dag, dep, &hashes))
            .collect();
        let wrapper = platforms.wrapper_for(node, &dep_prefixes);
        let outcome = run_build(recipe, &pkg.workload, &wrapper, options.settings);
        costs[id] = outcome.total();

        let mut log = String::new();
        log.push_str(&format!("==> building {}@{}\n", node.name, node.version));
        log.push_str(&format!(
            "==> fetched {} ({} bytes), md5 {} verified\n",
            archive.url,
            archive.bytes.len(),
            archive.md5
        ));
        for p in &patches {
            log.push_str(&format!("==> applied patch {p}\n"));
        }
        for (&dep, prefix) in node.deps.iter().zip(&dep_prefixes) {
            log.push_str(&format!(
                "==> dependency {} at {prefix}\n",
                dag.node(dep).name
            ));
        }
        log.push_str(&format!(
            "==> {} installed successfully in {:.1}s (simulated, {} compiler invocations)\n",
            node.name,
            outcome.total(),
            outcome.compiler_invocations
        ));
        logs.push((hash.clone(), log));

        builds.push(BuildRecord {
            name: node.name.clone(),
            hash,
            reused: false,
            outcome: Some(outcome),
            patches,
        });
    }

    // Every node succeeded: commit the DAG and its logs atomically.
    db.install_dag_as(dag, true);
    for (hash, log) in logs {
        db.attach_build_log(&hash, log).expect("just registered");
    }

    let serial_seconds = costs.iter().sum();
    // finish[id] = cost[id] + max(finish[dep]); topo order is bottom-up.
    let mut finish = vec![0.0_f64; dag.len()];
    for id in dag.topo_order() {
        let slowest_dep =
            dag.node(id).deps.iter().fold(
                0.0_f64,
                |acc, &d| {
                    if finish[d] > acc {
                        finish[d]
                    } else {
                        acc
                    }
                },
            );
        finish[id] = costs[id] + slowest_dep;
    }
    let critical_path_seconds = finish[dag.root()];

    Ok(InstallReport {
        builds,
        serial_seconds,
        critical_path_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_package::{PackageBuilder, Repository};
    use spack_spec::dag::node;
    use spack_spec::{DagBuilder, Version};

    fn test_repo() -> RepoStack {
        let mut repo = Repository::new("test");
        for name in ["leaf", "mid", "root-pkg"] {
            let v = Version::new("1.0").unwrap();
            repo.register(
                PackageBuilder::new(name)
                    .version("1.0", &Mirror::checksum_of(name, &v))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        RepoStack::with_builtin(repo)
    }

    fn chain_dag() -> ConcreteDag {
        // root-pkg -> mid -> leaf
        let mut b = DagBuilder::new();
        let leaf = b
            .add_node(node("leaf", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let mid = b
            .add_node(node("mid", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        let root = b
            .add_node(node("root-pkg", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
            .unwrap();
        b.add_edge(mid, leaf);
        b.add_edge(root, mid);
        b.build(root).unwrap()
    }

    #[test]
    fn installs_bottom_up_and_reuses_on_reinstall() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let report = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(report.built_count(), 3);
        assert_eq!(report.reused_count(), 0);
        assert!(report.serial_seconds > 0.0);
        // A chain has no parallelism: critical path == serial time.
        assert!((report.critical_path_seconds - report.serial_seconds).abs() < 1e-9);

        let again = install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        assert_eq!(again.built_count(), 0);
        assert_eq!(again.reused_count(), 3);
        assert_eq!(again.serial_seconds, 0.0);
    }

    #[test]
    fn corrupt_archives_abort_without_registering() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        let opts = InstallOptions {
            mirror: Mirror::corrupting(),
            ..Default::default()
        };
        let err = install_dag(&dag, &repos, &db, &opts).unwrap_err();
        assert!(err.to_string().contains("md5 mismatch"), "{err}");
        assert_eq!(db.lock().len(), 0);
    }

    #[test]
    fn build_logs_are_attached() {
        let repos = test_repo();
        let db = Mutex::new(Database::new("/spack/opt"));
        let dag = chain_dag();
        install_dag(&dag, &repos, &db, &InstallOptions::default()).unwrap();
        let db = db.lock();
        let hashes = DagHashes::compute(&dag);
        let rec = db.get(hashes.node_hash(dag.root())).unwrap();
        let log = rec.build_log.as_ref().unwrap();
        assert!(log.contains("==> building root-pkg@1.0"));
        assert!(log.contains("==> dependency mid at /spack/opt/"));
        assert!(log.contains("installed successfully"));
    }
}
