//! Scheduler equivalence suite (ISSUE 4): the parallel frontier
//! scheduler must produce a byte-identical [`InstallReport::render`] for
//! every `jobs` level and every thread interleaving — with and without
//! chaos — and per-hash commits must stay correct under contention.

use parking_lot::Mutex;
use spack_buildenv::{
    install_dag, FaultKind, FaultPlan, FaultyMirror, InstallOptions, InstallReport, Mirror,
    MirrorChain, NodeStatus, RetryPolicy,
};
use spack_package::{PackageBuilder, RepoStack, Repository};
use spack_spec::dag::node;
use spack_spec::{ConcreteDag, DagBuilder, DagHashes, Version};
use spack_store::Database;

/// A layered synthetic DAG: `width` nodes per layer, each depending on
/// every node of the layer below, plus a single root on top. Wide layers
/// give the frontier real concurrency to mis-order if it is going to.
fn layered_dag(layers: usize, width: usize) -> (ConcreteDag, RepoStack) {
    let mut names = Vec::new();
    let mut b = DagBuilder::new();
    let mut below = Vec::new();
    for layer in 0..layers {
        let mut current = Vec::new();
        for i in 0..width {
            let name = format!("pkg-l{layer}-n{i}");
            let id = b
                .add_node(node(&name, "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
                .unwrap();
            for &dep in &below {
                b.add_edge(id, dep);
            }
            current.push(id);
            names.push(name);
        }
        below = current;
    }
    let root = b
        .add_node(node("stack-root", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
        .unwrap();
    for &dep in &below {
        b.add_edge(root, dep);
    }
    names.push("stack-root".to_string());

    let mut repo = Repository::new("equiv");
    for name in &names {
        let v = Version::new("1.0").unwrap();
        repo.register(
            PackageBuilder::new(name)
                .version("1.0", &Mirror::checksum_of(name, &v))
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    (b.build(root).unwrap(), RepoStack::with_builtin(repo))
}

fn install_at(dag: &ConcreteDag, repos: &RepoStack, jobs: usize, chaos: bool) -> InstallReport {
    let db = Mutex::new(Database::new("/spack/opt"));
    let mut opts = InstallOptions {
        jobs,
        ..Default::default()
    };
    if chaos {
        let plan = FaultPlan::uniform(42, 0.25);
        opts.source = MirrorChain::from_sources(vec![
            std::sync::Arc::new(FaultyMirror::new(Mirror::named("m0"), plan)),
            std::sync::Arc::new(FaultyMirror::new(Mirror::named("m1"), plan)),
        ]);
        opts.faults = Some(plan);
        opts.retry = RetryPolicy::with_retries(2);
        opts.keep_going = true;
    }
    install_dag(dag, repos, &db, &opts).unwrap()
}

#[test]
fn render_is_byte_identical_across_jobs_without_chaos() {
    let (dag, repos) = layered_dag(4, 5);
    let baseline = install_at(&dag, &repos, 1, false);
    assert_eq!(baseline.jobs, 1);
    for jobs in [2, 4, 8] {
        let report = install_at(&dag, &repos, jobs, false);
        assert_eq!(report.jobs, jobs);
        assert_eq!(
            report.render(),
            baseline.render(),
            "render drifted at jobs={jobs}"
        );
    }
}

#[test]
fn render_is_byte_identical_across_jobs_under_chaos() {
    let (dag, repos) = layered_dag(4, 5);
    let baseline = install_at(&dag, &repos, 1, true);
    for jobs in [2, 4, 8] {
        assert_eq!(
            install_at(&dag, &repos, jobs, true).render(),
            baseline.render(),
            "chaos render drifted at jobs={jobs}"
        );
    }
}

#[test]
fn repeated_parallel_chaos_runs_do_not_flap() {
    // Same seed, same jobs, many runs: the report may never depend on
    // which worker got there first.
    let (dag, repos) = layered_dag(3, 4);
    let first = install_at(&dag, &repos, 8, true).render();
    for run in 1..8 {
        assert_eq!(
            install_at(&dag, &repos, 8, true).render(),
            first,
            "run {run} diverged"
        );
    }
}

#[test]
fn makespan_shrinks_with_jobs_but_respects_critical_path() {
    let (dag, repos) = layered_dag(4, 6);
    let one = install_at(&dag, &repos, 1, false);
    let four = install_at(&dag, &repos, 4, false);
    assert!((one.makespan_seconds - one.serial_seconds).abs() < 1e-9);
    assert!(
        four.makespan_seconds < one.makespan_seconds,
        "4 workers must beat 1 on a 6-wide DAG"
    );
    assert!(four.makespan_seconds >= four.critical_path_seconds - 1e-9);
}

#[test]
fn two_sessions_racing_the_same_hash_yield_one_built_one_reused() {
    // Two concurrent install sessions share one database and install the
    // same single-node DAG under keep-going: per-hash commits serialize
    // on the store lock, so exactly one session registers the build and
    // the other reuses it — in every interleaving.
    let mut b = DagBuilder::new();
    let root = b
        .add_node(node("contended", "1.0", ("gcc", "4.9.3"), "linux-x86_64"))
        .unwrap();
    let dag = b.build(root).unwrap();
    let mut repo = Repository::new("race");
    let v = Version::new("1.0").unwrap();
    repo.register(
        PackageBuilder::new("contended")
            .version("1.0", &Mirror::checksum_of("contended", &v))
            .build()
            .unwrap(),
    )
    .unwrap();
    let repos = RepoStack::with_builtin(repo);

    for round in 0..16 {
        let db = Mutex::new(Database::new("/spack/opt"));
        let opts = InstallOptions {
            keep_going: true,
            jobs: 2,
            ..Default::default()
        };
        let (a, z) = std::thread::scope(|s| {
            let ta = s.spawn(|| install_dag(&dag, &repos, &db, &opts).unwrap());
            let tz = s.spawn(|| install_dag(&dag, &repos, &db, &opts).unwrap());
            (ta.join().unwrap(), tz.join().unwrap())
        });
        let statuses = [&a.builds[0].status, &z.builds[0].status];
        let built = statuses
            .iter()
            .filter(|s| matches!(s, NodeStatus::Built(_)))
            .count();
        let reused = statuses
            .iter()
            .filter(|s| matches!(s, NodeStatus::Reused))
            .count();
        assert_eq!((built, reused), (1, 1), "round {round}: {statuses:?}");

        let db = db.lock();
        assert_eq!(db.len(), 1, "exactly one record despite the race");
        let hashes = DagHashes::compute(&dag);
        let rec = db.get(hashes.node_hash(dag.root())).unwrap();
        assert!(rec.build_log.is_some(), "the winner's log is attached");
    }
}

#[test]
fn fault_decisions_are_identical_from_every_thread() {
    // The chaos plan is a pure function of its coordinates: eight
    // threads hammering the same coordinates must read the same fates,
    // in any order.
    let plan = FaultPlan::uniform(7, 0.5);
    let coords: Vec<(FaultKind, String, u32, String)> = (0..64)
        .flat_map(|i| {
            [
                (
                    FaultKind::TransientFetch,
                    format!("pkg{}", i % 13),
                    i % 4 + 1,
                    format!("m{}", i % 3),
                ),
                (
                    FaultKind::BuildFailure,
                    format!("pkg{}", i % 13),
                    i % 4 + 1,
                    "build".to_string(),
                ),
            ]
        })
        .collect();
    let fates = |order_hint: usize| -> Vec<bool> {
        let mut idx: Vec<usize> = (0..coords.len()).collect();
        // Visit in a different order per thread; collect by position.
        idx.rotate_left(order_hint % coords.len());
        let mut out = vec![false; coords.len()];
        for &i in &idx {
            let (kind, pkg, attempt, scope) = &coords[i];
            out[i] = plan.decide(*kind, pkg, "1.0", *attempt, scope);
        }
        out
    };
    let baseline = fates(0);
    assert!(
        baseline.iter().any(|&f| f) && baseline.iter().any(|&f| !f),
        "the 0.5 plan should mix fates"
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let baseline = &baseline;
                let fates = &fates;
                s.spawn(move || assert_eq!(&fates(t * 17 + 1), baseline))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
