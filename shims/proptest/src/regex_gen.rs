//! Random string generation from a regex subset.
//!
//! Supports the constructs the workspace's string strategies use:
//! literals, character classes with ranges (`[a-z0-9@%. -]`), groups,
//! alternation, the quantifiers `?`, `*`, `+`, `{n}`, `{n,m}`, `{n,}`,
//! and the proptest idiom `\PC` ("any non-control character"). Unbounded
//! quantifiers are capped at 8 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// One of several alternatives.
    Alt(Vec<Node>),
    /// Concatenation.
    Seq(Vec<Node>),
    /// `node{lo,hi}` (inclusive).
    Repeat(Box<Node>, u32, u32),
    /// Character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
    /// `\PC`: any non-control character.
    AnyPrintable,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex `{}`: {what}", self.pattern)
    }

    fn parse_alt(&mut self) -> Node {
        let mut alts = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alts.push(self.parse_seq());
        }
        if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            Node::Alt(alts)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            items.push(self.parse_repeat());
        }
        Node::Seq(items)
    }

    fn parse_repeat(&mut self) -> Node {
        let atom = self.parse_atom();
        let (lo, hi) = match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.chars.next();
                let lo = self.parse_number();
                match self.chars.next() {
                    Some('}') => (lo, lo),
                    Some(',') => {
                        let hi = if self.chars.peek() == Some(&'}') {
                            lo + UNBOUNDED_CAP
                        } else {
                            self.parse_number()
                        };
                        if self.chars.next() != Some('}') {
                            self.fail("unclosed {n,m}");
                        }
                        (lo, hi)
                    }
                    _ => self.fail("malformed {n,m}"),
                }
            }
            _ => return atom,
        };
        Node::Repeat(Box::new(atom), lo, hi)
    }

    fn parse_number(&mut self) -> u32 {
        let mut n = 0u32;
        let mut any = false;
        while let Some(&c) = self.chars.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.chars.next();
            n = n * 10 + d;
            any = true;
        }
        if !any {
            self.fail("expected number");
        }
        n
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.chars.next() {
                // proptest's `\PC`: complement of Unicode category C.
                Some('P') => match self.chars.next() {
                    Some('C') => Node::AnyPrintable,
                    _ => self.fail("only \\PC is supported"),
                },
                Some('d') => Node::Class(vec![('0', '9')]),
                Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some(c) => Node::Literal(c),
                None => self.fail("dangling backslash"),
            },
            Some('.') => Node::AnyPrintable,
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated classes are not supported");
        }
        loop {
            let c = match self.chars.next() {
                Some(']') => break,
                Some('\\') => self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.fail("class escape")),
                Some(c) => c,
                None => self.fail("unclosed class"),
            };
            // `a-z` range, unless `-` is the last char before `]`.
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&n| n != ']') {
                    self.chars.next();
                    let hi = self.chars.next().unwrap_or_else(|| self.fail("open range"));
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }
}

fn parse(pattern: &str) -> Node {
    let mut p = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let node = p.parse_alt();
    if p.chars.next().is_some() {
        p.fail("trailing input");
    }
    node
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(alts) => {
            let pick = rng.below(alts.len() as u64) as usize;
            emit(&alts[pick], rng, out);
        }
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap_or(lo));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick within total");
        }
        Node::Literal(c) => out.push(*c),
        Node::AnyPrintable => {
            // Mostly printable ASCII; occasionally multi-byte, to keep
            // lexers honest about UTF-8 boundaries.
            if rng.below(8) == 0 {
                const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '\u{2603}', '\u{1F980}'];
                out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
            } else {
                out.push(char::from_u32(rng.in_range(0x20, 0x7f) as u32).unwrap());
            }
        }
    }
}

/// Generate one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let node = parse(pattern);
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: &str) -> String {
        generate(pattern, &mut TestRng::for_test(seed))
    }

    #[test]
    fn classes_ranges_and_quantifiers() {
        for i in 0..50 {
            let s = gen("[a-z][a-z0-9]{0,6}", &format!("s{i}"));
            assert!((1..=7).contains(&s.chars().count()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn optional_groups_and_literals() {
        for i in 0..50 {
            let s = gen("[a-z]{2,4}(-[0-9]{1,2})?", &format!("g{i}"));
            if let Some((head, tail)) = s.split_once('-') {
                assert!(head.chars().all(|c| c.is_ascii_lowercase()));
                assert!(tail.chars().all(|c| c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn printable_any_never_emits_control_chars() {
        for i in 0..100 {
            let s = gen("\\PC*", &format!("p{i}"));
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literal_dash_and_space_in_class() {
        for i in 0..100 {
            let s = gen("[a-z0-9@%+~^=:., -]{0,40}", &format!("d{i}"));
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "@%+~^=:., -".contains(c),
                    "{c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn alternation_picks_each_branch() {
        let mut saw_a = false;
        let mut saw_b = false;
        for i in 0..50 {
            match gen("(aa|bb)", &format!("alt{i}")).as_str() {
                "aa" => saw_a = true,
                "bb" => saw_b = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw_a && saw_b);
    }
}
