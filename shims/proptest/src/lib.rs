//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crate registry, so the workspace's
//! property tests compile against this subset: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, collection/option/tuple/range
//! strategies, regex-literal string strategies (see [`regex_gen`]), and
//! the [`proptest!`]/[`prop_compose!`] macros. Test cases are generated
//! from a per-test deterministic seed, so failures reproduce exactly;
//! there is no shrinking — the failing inputs are printed instead.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;

pub mod regex_gen;

/// Deterministic per-test RNG (xorshift64*, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary label (typically the test path).
    pub fn for_test(label: &str) -> TestRng {
        // FNV-1a over the label, then force a nonzero state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw from a half-open range.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }
}

/// Something that can generate random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Use a generated value to pick a follow-on strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A strategy from a plain generation function (used by
/// [`prop_compose!`]).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wrap a generation closure as a [`Strategy`].
pub fn strategy_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BTreeMap, Range, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.in_range(self.size.start as u64, self.size.end as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` with `size`-many draws (deduplicated by key).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.in_range(self.size.start as u64, self.size.end as u64) as usize
            };
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some(inner)` about three quarters of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Per-run configuration, accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything a property-test file needs, as in real proptest.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        ArbitraryValue, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property; failure reports the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip cases whose inputs do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)` body
/// runs for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Define a named strategy from component strategies, as in proptest's
/// `prop_compose!`: `fn name()(a in sa, b in sb) -> T { expr }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($param:ident : $pty:ty),* $(,)? )
        ( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy_fn(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let mut a = TestRng::for_test("demo");
        let mut b = TestRng::for_test("demo");
        let s = crate::collection::vec(0u32..100, 1..8);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn ranges_and_options_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let o = crate::option::of(0u8..5).generate(&mut rng);
            if let Some(v) = o {
                assert!(v < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_binds_arguments(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }

        #[test]
        fn regex_strategies_match_shape(s in "[a-z]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "{s}");
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    prop_compose! {
        fn pair()(a in 0u32..5, b in 0u32..5) -> (u32, u32) { (a, b) }
    }

    proptest! {
        #[test]
        fn composed_strategies_work(p in pair()) {
            prop_assert!(p.0 < 5 && p.1 < 5);
        }
    }
}
