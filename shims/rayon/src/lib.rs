//! Offline stand-in for the `rayon` crate.
//!
//! The build container cannot reach a crate registry, so `par_iter()`
//! here hands back the plain sequential iterator. Callers keep their
//! data-parallel shape (`.par_iter().map(...).collect()`) and lose only
//! the thread pool — results are identical, just computed on one core.

/// `use rayon::prelude::*` — the parallel-iterator entry points.
pub mod prelude {
    /// Sequential re-implementation of `rayon`'s `par_iter()`.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type; here, the ordinary borrowing iterator.
        type Iter;
        /// "Parallel" iteration over `&self` (sequential in this shim).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
