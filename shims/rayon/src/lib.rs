//! Offline stand-in for the `rayon` crate.
//!
//! The build container cannot reach a crate registry, so `par_iter()`
//! here hands back the plain sequential iterator. Callers keep their
//! data-parallel shape (`.par_iter().map(...).collect()`) and lose only
//! the thread pool — results are identical, just computed on one core.
//!
//! [`scope`], by contrast, is *real*: it is a thin wrapper over
//! `std::thread::scope`, so `scope(|s| s.spawn(...))` runs genuinely
//! concurrent OS threads that may borrow from the enclosing stack. The
//! install pipeline's frontier scheduler uses it for its worker pool.

/// A fork-join scope whose spawned closures run on real OS threads and
/// may borrow anything that outlives the [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task on a new scoped thread. Mirrors rayon's signature:
    /// the task receives the scope so it can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Run `f` with a scope handle; every thread spawned through the handle
/// is joined before `scope` returns (a panic in any task propagates).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// `use rayon::prelude::*` — the parallel-iterator entry points.
pub mod prelude {
    /// Sequential re-implementation of `rayon`'s `par_iter()`.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type; here, the ordinary borrowing iterator.
        type Iter;
        /// "Parallel" iteration over `&self` (sequential in this shim).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn scope_runs_spawns_on_real_threads_and_joins_them() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let main_thread = std::thread::current().id();
        let mut saw_other_thread = false;
        crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    // Nested spawn through the scope handle works too.
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
            saw_other_thread = std::thread::current().id() == main_thread;
        });
        // All 8 tasks joined before scope returned.
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert!(saw_other_thread, "closure itself runs on the caller");
    }
}
