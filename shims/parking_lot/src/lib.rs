//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships this minimal API-compatible subset instead of the
//! real crate: a `Mutex` whose `lock()` returns the guard directly
//! (poisoning is swallowed, as parking_lot does by design) and a
//! `Condvar` whose `wait()` borrows the guard instead of consuming it.

use std::sync::TryLockError;

/// RAII guard for [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while locked does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A condition variable with parking_lot's borrow-the-guard `wait()`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the lock while waiting. Unlike
    /// `std::sync::Condvar::wait`, the guard is borrowed, not consumed —
    /// on return the same guard is locked again.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait takes the guard by value and hands it back; bridge to
        // the borrowing API by moving it out and writing it back in.
        // Sound: `wait` is only called with the lock held (the &mut proves
        // it), and the relocked guard is always restored before returning.
        unsafe {
            let taken = std::ptr::read(guard);
            let relocked = self.0.wait(taken).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, relocked);
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter_and_restores_the_guard() {
        let state = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut done = state.lock();
                while !*done {
                    cv.wait(&mut done);
                }
                // The guard still protects the same data after waking.
                assert!(*done);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            *state.lock() = true;
            cv.notify_all();
        });
    }
}
