//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container cannot reach a crate registry, so this shim
//! provides the pieces the workspace actually uses: `StdRng` (a
//! splitmix64-seeded xorshift), `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over the standard range types. Deterministic by
//! construction — which the harnesses rely on anyway.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`; panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: splitmix64 seeding into xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 to spread poor seeds over the state space.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=4u32);
            assert!((1..=4).contains(&y));
        }
    }
}
