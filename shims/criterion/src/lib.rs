//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crate registry, so the workspace's
//! benches compile against this API-compatible subset. Measurement is
//! deliberately simple — a fixed-iteration timing loop with a mean —
//! because the repository's quantitative claims run on a *virtual* clock;
//! these microbenches only need relative, human-readable numbers. When a
//! bench binary is executed by `cargo test` (any `--test`-style harness
//! arguments present), every routine runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Re-export point so `criterion::black_box` also works.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to every benchmark closure; drives the timing loop.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.elapsed = total;
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Smoke-test mode under `cargo test`: harness arguments such as
        // `--test` or a filter are present; run each routine once.
        let test_mode = std::env::args().skip(1).any(|a| a.starts_with("--"));
        Criterion {
            iters: if test_mode { 1 } else { 30 },
        }
    }
}

impl Criterion {
    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.as_ref();
        let mut elapsed = Duration::ZERO;
        let mut b = Bencher {
            iters: self.iters,
            elapsed: &mut elapsed,
        };
        f(&mut b);
        let mean = elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "{id:48} {:>12.3} us/iter ({} iters)",
            mean * 1e6,
            self.iters
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup { criterion: self }
    }
}

/// A named group of benchmarks; same API shape as criterion's.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's throughput (ignored by this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run and report one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.criterion.bench_function(id, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion { iters: 3 };
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion { iters: 2 };
        let mut setups = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 2);
    }
}
