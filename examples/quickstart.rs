//! Quickstart: the paper's running example end to end.
//!
//! Parses the spec expressions of Table 2, concretizes the mpileaks DAG
//! of Figs. 2 and 7, and installs it (simulated), printing the same views
//! the paper shows.
//!
//! Run with: `cargo run --example quickstart`

use spack_rs::spec::{DagHashes, Spec};
use spack_rs::Session;

fn main() {
    // --- Table 2: the spec syntax ----------------------------------------
    println!("== Table 2: spec expressions ==");
    for text in [
        "mpileaks",
        "mpileaks@1.1",
        "mpileaks@1.1 %gcc",
        "mpileaks@1.1 %intel@14.1 +debug",
        "mpileaks@1.1 =bgq",
        "mpileaks@1.1 ^mvapich2@1.9",
        "mpileaks @1.2:1.4 %gcc@4.7.4 -debug =bgq ^callpath @1.1 %gcc@4.7.4 ^openmpi @1.4.7",
    ] {
        let spec = Spec::parse(text).expect("valid Table 2 spec");
        println!("  {text:68} -> {spec}");
    }

    // --- Fig. 2a -> Fig. 7: abstract spec to concrete DAG ----------------
    let mut session = Session::new();
    println!("\n== spack install mpileaks (Figs. 2a, 7) ==");
    let dag = session.concretize("mpileaks").expect("concretizes");
    print!("{dag}");
    let hashes = DagHashes::compute(&dag);
    println!("unique install hash: {}", hashes.short(dag.root()));

    // --- Fig. 2c: recursive constraints ----------------------------------
    println!("\n== spack install mpileaks@2.3 ^callpath@1.0+debug ^libelf@0.8.11 (Fig. 2c) ==");
    let constrained = session
        .concretize("mpileaks@2.3 ^callpath@1.0+debug ^libelf@0.8.11")
        .expect("concretizes");
    print!("{constrained}");

    // --- Install, bottom-up, with wrapper-based builds -------------------
    println!("\n== installing (simulated builds) ==");
    let report = session.install("mpileaks").expect("installs");
    for b in &report.builds {
        match b.outcome() {
            Some(o) => println!(
                "  {:12} built in {:6.1}s  ({} wrapper invocations)",
                b.name,
                o.total(),
                o.compiler_invocations
            ),
            None => println!("  {:12} reused", b.name),
        }
    }
    println!(
        "  total: {:.1}s serial, {:.1}s on the DAG's critical path",
        report.serial_seconds, report.critical_path_seconds
    );

    // --- Fig. 9: a second MPI shares the dyninst sub-DAG ------------------
    println!("\n== spack install mpileaks ^mpich (Fig. 9 sharing) ==");
    let report = session.install("mpileaks ^mpich").expect("installs");
    println!(
        "  built {} new packages, reused {} existing sub-DAGs",
        report.built_count(),
        report.reused_count()
    );
    for b in report.builds.iter().filter(|b| b.reused()) {
        println!("  reused {:12} [{}]", b.name, &b.hash[..8]);
    }
}
