//! The ARES production stack (SC'15 §4.4, Fig. 13, Table 3).
//!
//! Concretizes the 47-package ARES DAG, classifies its nodes the way
//! Fig. 13 colors them, and sweeps the Table 3 configuration matrix —
//! 36 build configurations across architectures, compilers, and MPIs.
//!
//! Run with: `cargo run --example ares_stack`

use spack_rs::concretize::Concretizer;
use spack_rs::Session;

fn main() {
    let mut session = Session::new();

    // --- Fig. 13: the dependency DAG -------------------------------------
    let dag = session.concretize("ares").expect("ares concretizes");
    println!("== ARES dependency DAG (Fig. 13) ==");
    println!("packages: {}   edges: {}", dag.len(), dag.edge_count());
    let mut counts = std::collections::BTreeMap::new();
    for node in dag.nodes() {
        let category = session
            .repos()
            .get(&node.name)
            .and_then(|p| p.category.clone())
            .unwrap_or_else(|| "external".to_string());
        *counts.entry(category).or_insert(0usize) += 1;
    }
    for (cat, n) in &counts {
        println!("  {cat:10} {n}");
    }

    // --- Table 3: the nightly configuration matrix -----------------------
    // (C)urrent and (P)revious production, (L)ite, (D)evelopment.
    let config_spec = |c: char| match c {
        'C' => "@2015.06~lite",
        'P' => "@2014.11~lite",
        'L' => "@2015.06+lite",
        _ => "@develop~lite",
    };
    // (arch, compiler, mpi, configs) — the filled cells of Table 3.
    let cells: &[(&str, &str, &str, &str)] = &[
        ("linux-x86_64", "gcc", "mvapich", "CPLD"),
        ("bgq", "gcc", "bgq-mpi", "CPLD"),
        ("linux-x86_64", "intel@14.0.4", "mvapich2", "CPLD"),
        ("linux-x86_64", "intel@15.0.1", "mvapich2", "CPLD"),
        ("cray-xe6", "intel@15.0.1", "cray-mpich", "D"),
        ("linux-x86_64", "pgi", "mvapich", "D"),
        ("bgq", "pgi", "bgq-mpi", "CPLD"),
        ("cray-xe6", "pgi", "cray-mpich", "CLD"),
        ("linux-x86_64", "clang", "mvapich", "CPLD"),
        ("bgq", "clang", "bgq-mpi", "CLD"),
        ("bgq", "xl", "bgq-mpi", "CPLD"),
    ];

    // Register the cross-compilation toolchains Table 3 needs.
    let config = session.config_mut();
    for (name, ver, archs) in [
        ("gcc", "4.9.3", vec!["bgq"]),
        ("pgi", "15.4", vec!["bgq", "cray-xe6"]),
        ("clang", "3.6.2", vec!["bgq"]),
        ("intel", "15.0.1", vec!["cray-xe6"]),
    ] {
        config.register_compiler(name, ver, &archs);
    }

    println!("\n== Table 3: ARES configurations built nightly ==");
    let repos = session.repos().clone();
    let concretizer = Concretizer::new(&repos, session.config());
    let mut total = 0;
    for (arch, compiler, mpi, configs) in cells {
        let mut row = String::new();
        for c in configs.chars() {
            let text = format!("ares{} %{compiler} ={arch} ^{mpi}", config_spec(c));
            match concretizer.concretize(&spack_rs::spec::Spec::parse(&text).unwrap()) {
                Ok(dag) => {
                    row.push(c);
                    row.push(' ');
                    total += 1;
                    assert!(dag.by_name(mpi).is_some());
                }
                Err(e) => {
                    row.push_str(&format!("({c}: {e}) "));
                }
            }
        }
        println!("  {arch:13} {compiler:14} {mpi:10} {row}");
    }
    println!("  => {total} configurations concretized (paper: 36)");
}
