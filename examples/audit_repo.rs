//! Audit package repositories for latent metadata bugs.
//!
//! Run with: `cargo run --example audit_repo`
//!
//! Part one audits the builtin repository (which ships clean). Part two
//! stacks a deliberately-broken site repository on top — the same way a
//! site would overlay its own recipes — and shows the diagnostics the
//! auditor raises before any user ever hits them at concretization time.

use spack_rs::audit::audit_repo;
use spack_rs::package::{PackageBuilder, Repository};
use spack_rs::Session;

fn main() {
    // --- The shipped repository -----------------------------------------
    let session = Session::new();
    let report = session.audit();
    println!("builtin repository ({} packages):", session.repos().len());
    print!("{}", report.render_text());

    // --- A site overlay with real-world recipe mistakes -----------------
    let mut site = Repository::new("site");
    site.register(
        PackageBuilder::new("site-app")
            .version_unchecked("2.1")
            // Typo in a dependency name: AUD001.
            .depends_on("boots")
            // Version range no declared boost release satisfies: AUD003.
            .depends_on("boost@99:")
            // Condition on a variant site-app never declares: AUD004.
            .depends_on_when("zlib", "+compression")
            .build()
            .unwrap(),
    )
    .unwrap();

    let mut stack = spack_rs::repo::repo_stack();
    stack.push_front(site);
    let report = audit_repo(&stack);

    println!("\nwith the broken site overlay:");
    print!("{}", report.render_text());

    println!("\nmachine-readable form:");
    println!("{}", report.to_json());
}
