//! Python extension management (SC'15 §4.2).
//!
//! Installs two Python stacks, activates numpy/scipy into an interpreter
//! prefix, demonstrates conflict rollback, and deactivates back to a
//! pristine interpreter.
//!
//! Run with: `cargo run --example python_extensions`

use spack_rs::store::{ConflictPolicy, ExtensionRegistry, FsTree};
use spack_rs::Session;

fn main() {
    let mut session = Session::new();

    // Install the interpreter and two extensions.
    println!("== installing python, py-numpy, py-scipy ==");
    session.install("python@2.7.9").expect("python installs");
    session
        .install("py-numpy ^python@2.7.9")
        .expect("numpy installs");
    session
        .install("py-scipy ^python@2.7.9")
        .expect("scipy installs");

    let (py_hash, py_prefix, np_hash, np_prefix, sp_hash, sp_prefix) = {
        let db = session.database();
        let q = |text: &str| {
            let rec = db.query(&spack_rs::spec::Spec::parse(text).unwrap())[0];
            (rec.hash.clone(), rec.prefix.clone())
        };
        let (a, b) = q("python");
        let (c, d) = q("py-numpy");
        let (e, f) = q("py-scipy");
        (a, b, c, d, e, f)
    };
    println!("python prefix: {py_prefix}");
    println!("numpy  prefix: {np_prefix}");

    // Each extension lives in its own prefix; activation symlinks it into
    // the interpreter, as if installed directly.
    let mut fs = FsTree::new();
    fs.write_file(&format!("{py_prefix}/bin/python"), 4096);
    fs.write_file(&format!("{py_prefix}/lib/python2.7/site.py"), 512);
    for (prefix, module) in [(&np_prefix, "numpy"), (&sp_prefix, "scipy")] {
        fs.write_file(
            &format!("{prefix}/lib/python2.7/site-packages/{module}/__init__.py"),
            256,
        );
        fs.write_file(
            &format!("{prefix}/lib/python2.7/site-packages/{module}/core.py"),
            8192,
        );
    }

    let mut registry = ExtensionRegistry::new();
    println!("\n== activating extensions ==");
    let n = registry
        .activate(
            &mut fs,
            &py_hash,
            &py_prefix,
            &np_hash,
            &np_prefix,
            ConflictPolicy::Error,
        )
        .expect("numpy activates");
    println!("activated py-numpy: {n} links");
    let n = registry
        .activate(
            &mut fs,
            &py_hash,
            &py_prefix,
            &sp_hash,
            &sp_prefix,
            ConflictPolicy::Error,
        )
        .expect("scipy activates");
    println!("activated py-scipy: {n} links");
    println!(
        "python now sees: {:?}",
        fs.list(&format!("{py_prefix}/lib/python2.7/site-packages"))
    );

    // Conflicts roll back atomically.
    println!("\n== conflicting extension rolls back ==");
    let rogue = "/spack/opt/rogue-numpy";
    fs.write_file(
        &format!("{rogue}/lib/python2.7/site-packages/numpy/__init__.py"),
        1,
    );
    let err = registry
        .activate(
            &mut fs,
            &py_hash,
            &py_prefix,
            "roguehash",
            rogue,
            ConflictPolicy::Error,
        )
        .unwrap_err();
    println!("activation refused: {err}");

    // Deactivation restores the pristine interpreter.
    println!("\n== deactivating ==");
    registry
        .deactivate(&mut fs, &py_hash, &sp_hash)
        .expect("scipy deactivates");
    registry
        .deactivate(&mut fs, &py_hash, &np_hash)
        .expect("numpy deactivates");
    println!(
        "python sees after deactivate: {:?}",
        fs.list(&format!("{py_prefix}/lib/python2.7/site-packages"))
    );
}
