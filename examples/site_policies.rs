//! Site and user policies (SC'15 §3.4.4, §4.3).
//!
//! Shows layered configuration scopes steering concretization (compiler
//! order, provider order, version preferences), site package repositories
//! shadowing builtin recipes (§4.3.2), views with conflict-resolution
//! policies (§4.3.1), and generated environment modules (§3.5.4).
//!
//! Run with: `cargo run --example site_policies`

use spack_rs::concretize::Concretizer;
use spack_rs::package::{PackageBuilder, Repository};
use spack_rs::spec::{CompilerSpec, Spec};
use spack_rs::store::{dotkit, View, ViewPolicy, ViewRule};
use spack_rs::Session;

fn main() {
    // --- Policy scopes ----------------------------------------------------
    let mut session = Session::new();
    println!("== default policy ==");
    let dag = session.concretize("mpileaks").unwrap();
    let mpi = ["mpich", "openmpi", "mvapich2"]
        .iter()
        .find(|m| dag.by_name(m).is_some())
        .unwrap();
    println!(
        "  default MPI: {mpi}, compiler {}",
        dag.root_node().compiler
    );

    // §4.3.1: "compiler_order = icc,gcc@4.9.3" — the paper's own example.
    session
        .config_mut()
        .push_scope_text(
            "user",
            "compiler_order = intel,gcc@4.9.3\nproviders mpi = openmpi\nprefer libelf = 0.8.12\n",
        )
        .unwrap();
    let dag = session.concretize("mpileaks").unwrap();
    println!("== with user scope (intel first, openmpi, libelf 0.8.12) ==");
    println!("  compiler now: {}", dag.root_node().compiler);
    println!("  MPI now: openmpi? {}", dag.by_name("openmpi").is_some());
    let libelf = dag.node(dag.by_name("libelf").unwrap());
    println!("  libelf version: {}", libelf.version);

    // --- Site repository shadowing (§4.3.2) -------------------------------
    println!("\n== site repository overrides builtin python ==");
    let mut site = Repository::new("llnl.site");
    site.register(
        PackageBuilder::new("python")
            .describe("Site python with proprietary patches")
            .version("2.7.9", &spack_rs::repo::helpers::cks("python", "2.7.9"))
            .patch("llnl-site-ssl.patch")
            .depends_on("zlib")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut repos = session.repos().clone();
    repos.push_front(site);
    let concretizer = Concretizer::new(&repos, session.config());
    let dag = concretizer
        .concretize(&Spec::parse("python").unwrap())
        .unwrap();
    println!(
        "  python resolved from namespace `{}` with {} deps",
        dag.root_node().namespace,
        dag.root_node().deps.len()
    );

    // --- Views and modules -------------------------------------------------
    println!("\n== views (4.3.1) and modules (3.5.4) ==");
    session.install("mpileaks ^openmpi").unwrap();
    session.install("mpileaks ^mpich %gcc@4.7.4").unwrap();
    let db = session.database();
    let rules = [
        ViewRule::for_spec(
            "/opt/${PACKAGE}-${VERSION}-${MPINAME}",
            Spec::parse("mpileaks").unwrap(),
        ),
        ViewRule::for_spec(
            "/opt/${PACKAGE}-${MPINAME}",
            Spec::parse("mpileaks").unwrap(),
        ),
    ];
    let policy = ViewPolicy {
        compiler_order: vec![CompilerSpec::by_name("gcc")],
    };
    let view = View::compute(&rules, db.iter(), &policy);
    for (link, (target, _)) in view.links() {
        println!("  {link} -> {target}");
    }

    let rec = db.query(&Spec::parse("mpileaks").unwrap())[0];
    println!(
        "\n  dotkit module for {}:",
        rec.dag.root_node().format_node()
    );
    for line in dotkit(rec, "tools", "MPI leak detector").lines().take(5) {
        println!("    {line}");
    }
}
