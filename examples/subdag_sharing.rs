//! Sub-DAG sharing across configurations (SC'15 §3.4.2, Fig. 9).
//!
//! Installs mpileaks against three different MPI implementations and
//! shows that the dyninst sub-DAG — identical in all three — is installed
//! exactly once, while MPI-dependent packages get distinct prefixes.
//!
//! Run with: `cargo run --example subdag_sharing`

use spack_rs::spec::Spec;
use spack_rs::Session;

fn main() {
    let mut session = Session::new();

    for mpi in ["mpich", "openmpi", "mvapich2"] {
        let report = session
            .install(&format!("mpileaks ^{mpi}"))
            .expect("install succeeds");
        println!(
            "mpileaks ^{mpi:9} -> built {:2}, reused {:2}",
            report.built_count(),
            report.reused_count()
        );
    }

    let db = session.database();
    println!("\ninstalled configurations: {}", db.len());

    // dyninst and everything below it is shared (one prefix each)...
    for pkg in ["dyninst", "libdwarf", "libelf", "boost"] {
        let n = db.query(&Spec::parse(pkg).unwrap()).len();
        println!("  {pkg:10} installs: {n} (shared across all three builds)");
        assert_eq!(n, 1, "{pkg} must be shared");
    }
    // ...while MPI-facing packages have one install per MPI.
    for pkg in ["mpileaks", "callpath", "adept-utils"] {
        let n = db.query(&Spec::parse(pkg).unwrap()).len();
        println!("  {pkg:10} installs: {n} (one per MPI)");
        assert_eq!(n, 3, "{pkg} must be rebuilt per MPI");
    }

    // Every configuration still has a unique, hash-suffixed prefix.
    println!("\nmpileaks prefixes (Table 1, Spack scheme):");
    for rec in db.query(&Spec::parse("mpileaks").unwrap()) {
        println!("  {}", rec.prefix);
    }
}
