//! Use case 1: combinatorial naming for gperftools (SC'15 §4.1).
//!
//! gperftools is a C++ library; with no standard C++ ABI it "must be
//! rebuilt with each compiler and compiler version used by client
//! applications", and BG/Q builds need per-compiler patches and configure
//! lines. One Spack package maintains the whole matrix; each build lands
//! in its own hashed prefix.
//!
//! Run: `cargo run --example gperftools_matrix`

use spack_rs::spec::{DagHashes, Spec};
use spack_rs::Session;

fn main() {
    let mut session = Session::new();
    // BG/Q toolchains for the cross-compiled builds.
    for (name, ver) in [("gcc", "4.9.3"), ("clang", "3.6.2")] {
        session.config_mut().register_compiler(name, ver, &["bgq"]);
    }

    println!("== central gperftools installs across compilers (4.1) ==");
    let matrix = [
        "gperftools@2.4 %gcc@4.9.3",
        "gperftools@2.4 %gcc@4.7.4",
        "gperftools@2.4 %intel@14.0.4",
        "gperftools@2.4 %intel@15.0.1",
        "gperftools@2.4 %clang",
        "gperftools@2.3 %gcc@4.9.3",
        "gperftools@2.4 %xl =bgq",
        "gperftools@2.4 %clang =bgq",
    ];
    for text in matrix {
        let report = session.install(text).expect("matrix entry installs");
        let build = report
            .builds
            .iter()
            .find(|b| b.name == "gperftools")
            .expect("gperftools in report");
        println!(
            "  {text:34} -> [{}]{}",
            &build.hash[..8],
            if build.patches.is_empty() {
                String::new()
            } else {
                format!("  patches: {}", build.patches.join(", "))
            }
        );
    }

    let db = session.database();
    let installs = db.query(&Spec::parse("gperftools").unwrap());
    println!("\n{} coexisting gperftools installs:", installs.len());
    for rec in &installs {
        println!("  {}", rec.prefix);
    }

    // The package file is the institutional knowledge repository: the
    // XL-on-BG/Q build carries its patch without any user action.
    let bgq_xl = db.query(&Spec::parse("gperftools%xl").unwrap());
    assert_eq!(bgq_xl.len(), 1);
    println!("\nBG/Q XL build verified: prefix {}", bgq_xl[0].prefix);

    // Every prefix is unique: the combinatorial naming problem is gone.
    let mut prefixes: Vec<&str> = installs.iter().map(|r| r.prefix.as_str()).collect();
    let total = prefixes.len();
    prefixes.dedup();
    assert_eq!(prefixes.len(), total);
    let rec = &installs[0];
    let hashes = DagHashes::compute(&rec.dag);
    println!("hash identity example: {}", hashes.short(rec.dag.root()));
}
