//! Property-based tests (proptest) on the spec layer's core invariants:
//! the grammar round-trips, version ordering is a total order consistent
//! with range semantics, and the constraint algebra (satisfies /
//! intersects / constrain) is internally coherent.

use proptest::prelude::*;
use spack_rs::spec::version::parse_range;
use spack_rs::spec::{Spec, Version, VersionList};

// ---------- generators ------------------------------------------------------

fn version_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..30, 1..4).prop_map(|parts| {
        parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(".")
    })
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}(-[a-z0-9]{1,4})?".prop_map(|s| s)
}

prop_compose! {
    fn spec_strategy()(
        name in name_strategy(),
        version in proptest::option::of(version_strategy()),
        compiler in proptest::option::of(("[a-z]{2,5}", proptest::option::of(version_strategy()))),
        variants in proptest::collection::btree_map("[a-z]{2,6}", any::<bool>(), 0..3),
        arch in proptest::option::of("[a-z]{3,6}(-[a-z0-9]{2,6})?"),
        deps in proptest::collection::vec(
            (name_strategy(), proptest::option::of(version_strategy())),
            0..3
        ),
    ) -> String {
        let mut s = name;
        if let Some(v) = version {
            s.push('@');
            s.push_str(&v);
        }
        if let Some((c, cv)) = compiler {
            s.push('%');
            s.push_str(&c);
            if let Some(cv) = cv {
                s.push('@');
                s.push_str(&cv);
            }
        }
        for (var, on) in variants {
            s.push(if on { '+' } else { '~' });
            s.push_str(&var);
        }
        if let Some(a) = arch {
            s.push('=');
            s.push_str(&a);
        }
        for (dep, dv) in deps {
            s.push_str(" ^");
            s.push_str(&dep);
            if let Some(dv) = dv {
                s.push('@');
                s.push_str(&dv);
            }
        }
        s
    }
}

// ---------- grammar properties ----------------------------------------------

proptest! {
    #[test]
    fn parse_format_roundtrip(text in spec_strategy()) {
        // Generated specs can carry duplicate variant/dep names that the
        // parser legitimately rejects as conflicts; only successful parses
        // must round-trip.
        if let Ok(spec) = Spec::parse(&text) {
            let formatted = spec.to_string();
            let reparsed = Spec::parse(&formatted)
                .expect("canonical form must re-parse");
            prop_assert_eq!(&spec, &reparsed, "text: {} formatted: {}", text, formatted);
            // Formatting is a fixpoint.
            prop_assert_eq!(formatted.clone(), reparsed.to_string());
        }
    }

    #[test]
    fn version_roundtrip_and_identity(a in version_strategy()) {
        let v = Version::new(&a).unwrap();
        prop_assert_eq!(v.to_string(), a);
        let again = Version::new(&v.to_string()).unwrap();
        prop_assert_eq!(v, again);
    }

    #[test]
    fn version_ordering_is_total_and_antisymmetric(
        a in version_strategy(),
        b in version_strategy(),
    ) {
        let (va, vb) = (Version::new(&a).unwrap(), Version::new(&b).unwrap());
        let ab = va.version_cmp(&vb);
        let ba = vb.version_cmp(&va);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == std::cmp::Ordering::Equal, va == vb);
    }

    #[test]
    fn version_ordering_transitive(
        a in version_strategy(),
        b in version_strategy(),
        c in version_strategy(),
    ) {
        let mut vs = [
            Version::new(&a).unwrap(),
            Version::new(&b).unwrap(),
            Version::new(&c).unwrap(),
        ];
        vs.sort();
        prop_assert!(vs[0] <= vs[1] && vs[1] <= vs[2] && vs[0] <= vs[2]);
    }

    // ---------- range semantics ----------

    #[test]
    fn point_version_within_its_own_range(v in version_strategy()) {
        let version = Version::new(&v).unwrap();
        let range = parse_range(&v).unwrap();
        prop_assert!(range.contains(&version));
        let open_up = parse_range(&format!("{v}:")).unwrap();
        prop_assert!(open_up.contains(&version));
        let open_down = parse_range(&format!(":{v}")).unwrap();
        prop_assert!(open_down.contains(&version));
    }

    #[test]
    fn range_intersection_soundness(
        a in version_strategy(),
        b in version_strategy(),
        probe in version_strategy(),
    ) {
        let (lo, hi) = {
            let va = Version::new(&a).unwrap();
            let vb = Version::new(&b).unwrap();
            if va <= vb { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) }
        };
        let r1 = parse_range(&format!("{lo}:")).unwrap();
        let r2 = parse_range(&format!(":{hi}")).unwrap();
        let p = Version::new(&probe).unwrap();
        match r1.intersect(&r2) {
            Some(meet) => {
                // Membership in the intersection == membership in both.
                prop_assert_eq!(meet.contains(&p), r1.contains(&p) && r2.contains(&p));
            }
            None => {
                prop_assert!(!(r1.contains(&p) && r2.contains(&p)));
            }
        }
    }

    #[test]
    fn version_list_intersection_agrees_with_membership(
        xs in proptest::collection::vec(version_strategy(), 1..4),
        ys in proptest::collection::vec(version_strategy(), 1..4),
        probe in version_strategy(),
    ) {
        let la = VersionList::parse(&xs.join(",")).unwrap();
        let lb = VersionList::parse(&ys.join(",")).unwrap();
        let p = Version::new(&probe).unwrap();
        let mut meet = la.clone();
        match meet.intersect_with(&lb) {
            Ok(_) => {
                // The intersection accepts exactly the common versions,
                // modulo prefix-inclusive upper bounds which can only
                // widen point matches consistently in both lists.
                if meet.contains(&p) {
                    prop_assert!(la.contains(&p) && lb.contains(&p));
                }
            }
            Err(_) => {
                prop_assert!(!(la.contains(&p) && lb.contains(&p)));
            }
        }
    }

    // ---------- constraint algebra ----------

    #[test]
    fn satisfies_implies_intersects(a in spec_strategy(), b in spec_strategy()) {
        if let (Ok(sa), Ok(sb)) = (Spec::parse(&a), Spec::parse(&b)) {
            if sa.satisfies(&sb) {
                prop_assert!(sa.intersects(&sb), "{} satisfies but not intersects {}", sa, sb);
            }
        }
    }

    #[test]
    fn constrain_result_satisfies_inputs_versionwise(
        name in name_strategy(),
        v1 in version_strategy(),
        v2 in version_strategy(),
    ) {
        let a = Spec::parse(&format!("{name}@{v1}:")).unwrap();
        let b = Spec::parse(&format!("{name}@:{v2}")).unwrap();
        let mut merged = a.clone();
        if merged.constrain(&b).is_ok() {
            prop_assert!(merged.versions.is_subset_of(&a.versions));
            prop_assert!(merged.versions.is_subset_of(&b.versions));
        }
    }

    #[test]
    fn constrain_is_idempotent(a in spec_strategy(), b in spec_strategy()) {
        if let (Ok(sa), Ok(sb)) = (Spec::parse(&a), Spec::parse(&b)) {
            let mut once = sa.clone();
            if once.constrain(&sb).is_ok() {
                let mut twice = once.clone();
                let changed = twice.constrain(&sb).expect("second apply cannot conflict");
                prop_assert!(!changed, "constrain not idempotent for {} + {}", sa, sb);
                prop_assert_eq!(once, twice);
            }
        }
    }

    #[test]
    fn self_satisfaction(a in spec_strategy()) {
        if let Ok(spec) = Spec::parse(&a) {
            prop_assert!(spec.satisfies(&spec));
            prop_assert!(spec.intersects(&spec));
        }
    }
}
