//! Cross-crate integration: the full pipeline from spec text through
//! concretization, simulated building, the install database, views,
//! modules, and extensions — exercised through the `Session` façade.

use spack_rs::spec::{DagHashes, Spec};
use spack_rs::store::{dotkit, module_name, tcl_module, NamingScheme, View, ViewPolicy, ViewRule};
use spack_rs::Session;

#[test]
fn install_queries_and_reuse() {
    let mut session = Session::new();
    let report = session.install("mpileaks ^mpich").unwrap();
    assert!(report.built_count() >= 6);
    assert_eq!(report.reused_count(), 0);

    // Installing the same spec reuses everything.
    let report = session.install("mpileaks ^mpich").unwrap();
    assert_eq!(report.built_count(), 0);

    // A different MPI shares the dyninst sub-DAG (Fig. 9).
    let report = session.install("mpileaks ^openmpi").unwrap();
    assert!(
        report.reused_count() >= 3,
        "reused {}",
        report.reused_count()
    );

    let db = session.database();
    assert_eq!(db.query(&Spec::parse("mpileaks").unwrap()).len(), 2);
    assert_eq!(db.query(&Spec::parse("dyninst").unwrap()).len(), 1);
    assert_eq!(db.query(&Spec::parse("mpileaks^openmpi").unwrap()).len(), 1);
}

#[test]
fn provenance_specfiles_reproduce_installs() {
    let mut session = Session::new();
    session.install("libdwarf").unwrap();
    let db = session.database();
    let rec = db.query(&Spec::parse("libdwarf").unwrap())[0];
    // §3.4.3: the stored spec file reproduces the exact build.
    let dag = spack_rs::spec::serial::from_specfile(&rec.specfile).unwrap();
    assert_eq!(spack_rs::spec::dag_hash(&dag), rec.hash);
    assert!(dag.by_name("libelf").is_some());
}

#[test]
fn views_and_modules_from_real_installs() {
    let mut session = Session::new();
    session.install("mpileaks ^mpich").unwrap();
    session.install("mpileaks ^openmpi").unwrap();
    let db = session.database();

    let rules = [ViewRule::for_spec(
        "/opt/${PACKAGE}-${VERSION}-${MPINAME}",
        Spec::parse("mpileaks").unwrap(),
    )];
    let view = View::compute(&rules, db.iter(), &ViewPolicy::default());
    assert_eq!(view.links().len(), 2, "one link per MPI");
    assert!(view
        .links()
        .keys()
        .any(|k| k.contains("mpich") && !k.contains("openmpi")));

    let rec = db.query(&Spec::parse("mpileaks^mpich").unwrap())[0];
    let dk = dotkit(rec, "tools", "leak detector");
    assert!(dk.contains(&rec.prefix));
    let tcl = tcl_module(rec, "leak detector");
    assert!(tcl.contains("prepend-path PATH"));
    assert!(module_name(rec).starts_with("mpileaks/"));
}

#[test]
fn naming_schemes_agree_with_database_prefixes() {
    let mut session = Session::new();
    session.install("libelf").unwrap();
    let db = session.database();
    let rec = db.query(&Spec::parse("libelf").unwrap())[0];
    let hashes = DagHashes::compute(&rec.dag);
    let expected =
        NamingScheme::SpackDefault.prefix_for("/spack/opt", &rec.dag, rec.dag.root(), &hashes);
    assert_eq!(rec.prefix, expected);
    assert!(rec.prefix.contains("linux-x86_64"));
    assert!(rec.prefix.ends_with(hashes.short(rec.dag.root())));
}

#[test]
fn corrupted_downloads_abort_install() {
    let mut session = Session::new();
    session.options_mut().source =
        spack_rs::buildenv::MirrorChain::single(spack_rs::buildenv::Mirror::corrupting());
    let err = session.install("zlib").unwrap_err();
    assert!(err.to_string().contains("md5 mismatch"), "{err}");
    assert_eq!(session.database().len(), 0);
}

/// A fetch source that permanently drops one package's downloads and
/// serves everything else from a pristine mirror.
#[derive(Debug)]
struct Blackhole {
    package: &'static str,
    inner: spack_rs::buildenv::Mirror,
}

impl spack_rs::buildenv::FetchSource for Blackhole {
    fn label(&self) -> &str {
        "blackhole"
    }

    fn fetch_version(
        &self,
        pkg: &spack_rs::package::PackageDef,
        version: &spack_rs::spec::Version,
        attempt: u32,
    ) -> Result<spack_rs::buildenv::Archive, spack_rs::buildenv::fetch::FetchError> {
        if pkg.name == self.package {
            return Err(spack_rs::buildenv::fetch::FetchError::Transient {
                package: pkg.name.clone(),
                version: version.to_string(),
                mirror: "blackhole".to_string(),
                attempt,
            });
        }
        self.inner.fetch(pkg, version)
    }
}

#[test]
fn keep_going_commits_partial_stack_and_rerun_finishes() {
    use spack_rs::buildenv::{Mirror, MirrorChain, NodeStatus};

    let mut session = Session::new();
    session.options_mut().keep_going = true;
    session.options_mut().source = MirrorChain::single(Blackhole {
        package: "libdwarf",
        inner: Mirror::new(),
    });

    // libdwarf is unfetchable: libelf and the MPI stack still build, but
    // dyninst -> callpath -> mpileaks are all blocked on it.
    let report = session.install("mpileaks ^mpich").unwrap();
    assert_eq!(report.failed_count(), 1);
    assert!(report.skipped_count() >= 3);
    let by_name = |n: &str| report.builds.iter().find(|b| b.name == n).unwrap();
    assert!(matches!(by_name("libelf").status, NodeStatus::Built(_)));
    assert!(matches!(
        by_name("libdwarf").status,
        NodeStatus::Failed { .. }
    ));
    match &by_name("dyninst").status {
        NodeStatus::Skipped { blocked_on } => {
            assert_eq!(blocked_on, &["libdwarf".to_string()])
        }
        other => panic!("dyninst should be skipped, got {other:?}"),
    }
    {
        let db = session.database();
        assert_eq!(db.len(), report.built_count());
        assert!(db.iter().all(|r| !r.explicit), "partial commits implicit");
        assert!(db.query(&Spec::parse("mpileaks").unwrap()).is_empty());
    }

    // Rerun against a clean mirror: committed nodes are reused, only the
    // failed/skipped remainder builds, and the request goes explicit.
    *session.options_mut() = spack_rs::buildenv::InstallOptions::default();
    let rerun = session.install("mpileaks ^mpich").unwrap();
    assert!(rerun.is_complete());
    assert_eq!(rerun.reused_count(), report.built_count());
    assert_eq!(
        rerun.built_count(),
        report.failed_count() + report.skipped_count()
    );
    let db = session.database();
    let root = db.query(&Spec::parse("mpileaks").unwrap());
    assert_eq!(root.len(), 1);
    assert!(root[0].explicit);
}

#[test]
fn bgq_python_gets_platform_patches() {
    // §3.2.4/§4.4: Python on BG/Q with XL needs platform patches.
    let mut session = Session::new();
    session
        .config_mut()
        .register_compiler("gcc", "4.9.3", &["bgq"]);
    let dag = session.concretize("python@2.7.9 %xl =bgq").unwrap();
    assert_eq!(dag.root_node().architecture, "bgq");
    let report = session.install_concrete(&dag).unwrap();
    let python = report
        .builds
        .iter()
        .find(|b| b.name == "python")
        .expect("python built");
    assert_eq!(python.patches, vec!["python-bgq-xlc.patch".to_string()]);
}

#[test]
fn uninstall_protects_dependents() {
    let mut session = Session::new();
    session.install("libdwarf").unwrap();
    let (libelf_hash, libdwarf_hash) = {
        let db = session.database();
        (
            db.query(&Spec::parse("libelf").unwrap())[0].hash.clone(),
            db.query(&Spec::parse("libdwarf").unwrap())[0].hash.clone(),
        )
    };
    let mut db = session.database();
    assert!(
        db.uninstall(&libelf_hash).is_err(),
        "libdwarf still needs it"
    );
    db.uninstall(&libdwarf_hash).unwrap();
    db.uninstall(&libelf_hash).unwrap();
    assert!(db.is_empty());
}

#[test]
fn parallel_installs_are_deterministic_in_virtual_time() {
    let mut one = Session::new();
    one.options_mut().jobs = 1;
    let mut many = Session::new();
    many.options_mut().jobs = 8;
    let a = one.install("openspeedshop").unwrap();
    let b = many.install("openspeedshop").unwrap();
    assert_eq!(a.builds.len(), b.builds.len());
    assert!((a.serial_seconds - b.serial_seconds).abs() < 1e-9);
    assert!((a.critical_path_seconds - b.critical_path_seconds).abs() < 1e-9);
}

#[test]
fn build_logs_are_stored_for_provenance() {
    // §3.4.3: the prefix keeps the build log alongside the spec file.
    let mut session = Session::new();
    session.install("libdwarf").unwrap();
    let db = session.database();
    let rec = db.query(&Spec::parse("libdwarf").unwrap())[0];
    let log = rec.build_log.as_ref().expect("log attached");
    assert!(log.contains("==> building libdwarf@"));
    assert!(log.contains("verified"));
    assert!(log.contains("==> dependency libelf at /spack/opt/"));
    assert!(log.contains("installed successfully"));
    // Dependencies get their own logs too.
    let libelf = db.query(&Spec::parse("libelf").unwrap())[0];
    assert!(libelf.build_log.is_some());
}

#[test]
fn bgq_builds_carry_platform_flags_in_wrapper() {
    // §4.5 platform descriptions + Fig. 12: XL on BG/Q links dynamically.
    use spack_rs::buildenv::PlatformRegistry;
    let mut session = Session::new();
    session
        .config_mut()
        .register_compiler("gcc", "4.9.3", &["bgq"]);
    let dag = session.concretize("libelf %xl =bgq").unwrap();
    let wrapper = PlatformRegistry::with_defaults().wrapper_for(dag.root_node(), &[]);
    let argv = wrapper.rewrite(
        spack_rs::buildenv::Language::C,
        &["-o".to_string(), "x".to_string(), "x.c".to_string()],
    );
    assert!(argv.contains(&"-qnostaticlink".to_string()));
}

#[test]
fn session_materializes_prefixes_and_activates_extensions() {
    // §4.2 through the façade: install python + numpy, activate, inspect
    // the interpreter's site-packages, deactivate back to pristine.
    let mut session = Session::new();
    session.install("python@2.7.9").unwrap();
    session.install("py-numpy ^python@2.7.9").unwrap();

    let py_prefix = {
        let db = session.database();
        db.query(&Spec::parse("python").unwrap())[0].prefix.clone()
    };
    // The install materialized canonical prefix content.
    {
        let fs = session.filesystem();
        assert!(fs.exists(&format!("{py_prefix}/bin/python")));
        assert!(fs.exists(&format!("{py_prefix}/.spack/spec")));
    }

    let linked = session.activate("py-numpy", "python").unwrap();
    assert!(linked >= 1);
    {
        let fs = session.filesystem();
        let site = format!("{py_prefix}/lib/python2.7/site-packages");
        assert!(
            fs.list(&site).iter().any(|f| f.contains("numpy")),
            "numpy visible in the interpreter: {:?}",
            fs.list(&site)
        );
    }

    // Double activation fails; deactivation restores pristine state.
    assert!(session.activate("py-numpy", "python").is_err());
    let removed = session.deactivate("py-numpy", "python").unwrap();
    assert_eq!(removed, linked);
    let fs = session.filesystem();
    let site = format!("{py_prefix}/lib/python2.7/site-packages");
    assert!(fs.list(&site).is_empty());
}

#[test]
fn activating_a_non_extension_is_refused() {
    let mut session = Session::new();
    session.install("libelf").unwrap();
    session.install("python@2.7.9").unwrap();
    let err = session.activate("libelf", "python").unwrap_err();
    assert!(err.to_string().contains("not an extension"), "{err}");
    let err = session.activate("py-numpy", "python").unwrap_err();
    assert!(err.to_string().contains("not installed"), "{err}");
}

#[test]
fn detected_toolchains_feed_the_concretizer() {
    // §3.2.3: "Spack can auto-detect compiler toolchains in the user's
    // PATH" — detection output plugs straight into the configuration.
    use spack_rs::buildenv::detect_toolchains;
    use spack_rs::concretize::{Concretizer, Config};
    let exes = [
        "/opt/compilers/bin/gcc-5.2.0".to_string(),
        "/opt/compilers/bin/g++-5.2.0".to_string(),
        "/opt/compilers/bin/gfortran-5.2.0".to_string(),
    ];
    let toolchains = detect_toolchains(&exes, |_| None);
    assert_eq!(toolchains.len(), 1);

    let mut config = Config::new();
    for tc in toolchains {
        config.register_concrete_compiler(tc.compiler, &[]);
    }
    config
        .push_scope_text("site", "arch = linux-x86_64\ncompiler = gcc\n")
        .unwrap();
    let session = Session::new();
    let repos = session.repos().clone();
    let dag = Concretizer::new(&repos, &config)
        .concretize(&Spec::parse("libelf").unwrap())
        .unwrap();
    assert_eq!(dag.root_node().compiler.to_string(), "gcc@5.2.0");
}
