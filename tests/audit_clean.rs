//! The shipped repository must stay audit-clean, reachable through both
//! the `spack_rs::audit` re-export and the `Session` façade.

use spack_rs::audit::{audit_repo, Severity};
use spack_rs::package::{PackageBuilder, Repository};
use spack_rs::Session;

#[test]
fn builtin_repository_is_audit_clean() {
    let report = Session::new().audit();
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.warn_count(), 0, "{}", report.render_text());
}

#[test]
fn a_broken_site_recipe_dirties_the_stack() {
    // Stack a site repo with a bad recipe over the builtin one: the
    // auditor sees the merged view exactly as the concretizer would.
    let mut site = Repository::new("site");
    site.register(
        PackageBuilder::new("site-app")
            .version_unchecked("1.0")
            .depends_on("no-such-library")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut stack = spack_rs::repo::repo_stack();
    stack.push_front(site);

    let report = audit_repo(&stack);
    assert!(!report.is_clean());
    let hits = report.with_code("AUD001");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].package, "site-app");
}
