//! The paper's headline quantitative claims, asserted as tests. Each test
//! names the section of the paper it reproduces; EXPERIMENTS.md records
//! the measured values next to the published ones.

use std::time::Instant;

use spack_rs::buildenv::{run_build, BuildSettings, FsProfile, Wrapper};
use spack_rs::concretize::Concretizer;
use spack_rs::spec::{ConcreteCompiler, Spec, Version};
use spack_rs::Session;

/// §1/abstract: "It automates 36 different build configurations of an
/// LLNL production code with 46 dependencies."
#[test]
fn abstract_claim_36_configurations_46_dependencies() {
    let mut session = Session::new();
    for (name, ver, archs) in [
        ("gcc", "4.9.3", vec!["bgq"]),
        ("pgi", "15.4", vec!["bgq", "cray-xe6"]),
        ("clang", "3.6.2", vec!["bgq"]),
        ("intel", "15.0.1", vec!["cray-xe6"]),
    ] {
        session.config_mut().register_compiler(name, ver, &archs);
    }
    let repos = session.repos().clone();
    let concretizer = Concretizer::new(&repos, session.config());

    let cells: &[(&str, &str, &str, &str)] = &[
        ("linux-x86_64", "gcc", "mvapich", "CPLD"),
        ("linux-x86_64", "intel@14.0.4", "mvapich2", "CPLD"),
        ("linux-x86_64", "intel@15.0.1", "mvapich2", "CPLD"),
        ("linux-x86_64", "pgi", "mvapich", "D"),
        ("linux-x86_64", "clang", "mvapich", "CPLD"),
        ("bgq", "gcc", "bgq-mpi", "CPLD"),
        ("bgq", "pgi", "bgq-mpi", "CPLD"),
        ("bgq", "clang", "bgq-mpi", "CLD"),
        ("bgq", "xl", "bgq-mpi", "CPLD"),
        ("cray-xe6", "intel@15.0.1", "cray-mpich", "D"),
        ("cray-xe6", "pgi", "cray-mpich", "CLD"),
    ];
    let mut total = 0;
    for (arch, compiler, mpi, configs) in cells {
        for c in configs.chars() {
            let version = match c {
                'C' => "@2015.06~lite",
                'P' => "@2014.11~lite",
                'L' => "@2015.06+lite",
                _ => "@develop~lite",
            };
            let text = format!("ares{version} %{compiler} ={arch} ^{mpi}");
            concretizer
                .concretize(&Spec::parse(&text).unwrap())
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            total += 1;
        }
    }
    assert_eq!(total, 36);

    // "46 dependencies": the full ARES DAG minus the root.
    let dag = session.concretize("ares").unwrap();
    assert_eq!(dag.len() - 1, 46);
}

/// §3.4.1/abstract: "Spack's concretization algorithm for managing
/// constraints runs in seconds, even for large packages." (Ours is
/// compiled Rust, so the bound we assert is far tighter; shape is what
/// matters — see the fig8 harness.)
#[test]
fn concretization_runs_in_seconds() {
    let session = Session::new();
    let start = Instant::now();
    let dag = session.concretize("ares").unwrap();
    let elapsed = start.elapsed();
    assert_eq!(dag.len(), 47);
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "largest package took {elapsed:?}; the paper's own bound is seconds"
    );
}

/// §3.4.1: the whole 245-package repository concretizes, with a growth
/// trend in DAG size (the Fig. 8 quadratic tendency).
#[test]
fn whole_repository_concretizes_with_size_trend() {
    let session = Session::new();
    let repos = session.repos().clone();
    let concretizer = Concretizer::new(&repos, session.config());
    let mut samples: Vec<(usize, f64)> = Vec::new();
    for name in repos.package_names() {
        let request = Spec::named(&name);
        let dag = concretizer.concretize(&request).unwrap();
        let start = Instant::now();
        for _ in 0..3 {
            concretizer.concretize(&request).unwrap();
        }
        samples.push((dag.len(), start.elapsed().as_secs_f64() / 3.0));
    }
    assert!(samples.len() >= 240, "paper: 245 packages");
    // Larger DAGs must cost more on average (monotone trend by quartile).
    samples.sort_by_key(|s| s.0);
    let q = samples.len() / 4;
    let mean = |xs: &[(usize, f64)]| xs.iter().map(|s| s.1).sum::<f64>() / xs.len() as f64;
    let small = mean(&samples[..q]);
    let large = mean(&samples[samples.len() - q..]);
    assert!(
        large > 5.0 * small,
        "expected growth with DAG size: small {small} vs large {large}"
    );
}

/// Abstract/§3.5.3: "Spack's install environment incurs only around 10%
/// build-time overhead compared to a native install."
#[test]
fn wrapper_overhead_is_around_ten_percent() {
    let session = Session::new();
    let wrapper = Wrapper::new(
        ConcreteCompiler {
            name: "gcc".into(),
            version: Version::new("4.9.3").unwrap(),
        },
        &["/opt/a".to_string(), "/opt/b".to_string()],
    );
    let packages = [
        "libelf",
        "libpng",
        "mpileaks",
        "libdwarf",
        "python",
        "dyninst",
        "netlib-lapack",
    ];
    let mut overheads = Vec::new();
    for name in packages {
        let pkg = session.repos().get(name).unwrap();
        let node = Spec::parse(&format!("{name}%gcc@4.9.3=linux-x86_64")).unwrap();
        let recipe = pkg.recipe_for(&node).unwrap();
        let with = run_build(recipe, &pkg.workload, &wrapper, BuildSettings::default());
        let without = run_build(
            recipe,
            &pkg.workload,
            &wrapper,
            BuildSettings {
                use_wrappers: false,
                stage_fs: FsProfile::TmpFs,
            },
        );
        overheads.push((with.total() - without.total()) / without.total());
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    assert!(
        (0.05..0.15).contains(&mean),
        "mean wrapper overhead {mean} should be around 10%"
    );
}

/// §3.5.3: "building this way [on NFS] can be as much as 62.7% slower
/// than using a temporary file system and 33% slower on average."
#[test]
fn nfs_overhead_matches_paper_shape() {
    let session = Session::new();
    let wrapper = Wrapper::new(
        ConcreteCompiler {
            name: "gcc".into(),
            version: Version::new("4.9.3").unwrap(),
        },
        &["/opt/a".to_string()],
    );
    let packages = [
        ("libelf", 48.0),
        ("libpng", 62.7),
        ("mpileaks", 35.6),
        ("libdwarf", 17.7),
        ("python", 46.4),
        ("dyninst", 4.9),
        ("netlib-lapack", 16.6),
    ];
    let mut measured = Vec::new();
    for (name, _) in packages {
        let pkg = session.repos().get(name).unwrap();
        let node = Spec::parse(&format!("{name}%gcc@4.9.3=linux-x86_64")).unwrap();
        let recipe = pkg.recipe_for(&node).unwrap();
        let run = |fs| {
            run_build(
                recipe,
                &pkg.workload,
                &wrapper,
                BuildSettings {
                    use_wrappers: true,
                    stage_fs: fs,
                },
            )
            .total()
        };
        let nfs = run(FsProfile::Nfs);
        let tmp = run(FsProfile::TmpFs);
        measured.push((nfs - tmp) / tmp * 100.0);
    }
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    assert!(
        (25.0..45.0).contains(&mean),
        "mean NFS overhead {mean}%, paper ~33%"
    );
    let max = measured.iter().cloned().fold(0.0, f64::max);
    assert!(
        (50.0..80.0).contains(&max),
        "max NFS overhead {max}%, paper 62.7%"
    );
    // Per-package ordering: libpng worst, dyninst most insensitive.
    let worst_idx = measured
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let best_idx = measured
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(packages[worst_idx].0, "libpng");
    assert_eq!(packages[best_idx].0, "dyninst");
}

/// §4.4/Fig. 13: the ARES census — 11 physics, 4 math, 8 utility,
/// 23 external packages around the root.
#[test]
fn fig13_census() {
    let session = Session::new();
    let dag = session.concretize("ares").unwrap();
    let mut physics = 0;
    let mut math = 0;
    let mut utility = 0;
    let mut external = 0;
    for node in dag.nodes() {
        if node.name == "ares" {
            continue;
        }
        match session
            .repos()
            .get(&node.name)
            .and_then(|p| p.category.as_deref())
        {
            Some("physics") => physics += 1,
            Some("math") => math += 1,
            Some("utility") => utility += 1,
            _ => external += 1,
        }
    }
    assert_eq!((physics, math, utility, external), (11, 4, 8, 23));
}

/// Table 1: only the hashed Spack scheme is injective over a sweep of
/// configurations (asserted in miniature; the table1_naming harness
/// prints the full table).
#[test]
fn table1_spack_scheme_is_injective() {
    use spack_rs::spec::DagHashes;
    use spack_rs::store::NamingScheme;
    let session = Session::new();
    let variants = [
        "mpileaks ^mpich ^libelf@0.8.11",
        "mpileaks ^mpich ^libelf@0.8.12",
    ];
    let dags: Vec<_> = variants
        .iter()
        .map(|v| session.concretize(v).unwrap())
        .collect();
    let spack_paths: Vec<String> = dags
        .iter()
        .map(|d| NamingScheme::SpackDefault.prefix_for("/opt", d, d.root(), &DagHashes::compute(d)))
        .collect();
    assert_ne!(spack_paths[0], spack_paths[1], "hash distinguishes them");
    for scheme in [
        NamingScheme::LlnlGlobal,
        NamingScheme::LlnlLocal,
        NamingScheme::Ornl,
        NamingScheme::Tacc,
    ] {
        let paths: Vec<String> = dags
            .iter()
            .map(|d| scheme.prefix_for("/opt", d, d.root(), &DagHashes::compute(d)))
            .collect();
        assert_eq!(
            paths[0],
            paths[1],
            "{} cannot express the libelf difference",
            scheme.site()
        );
    }
}
