//! # spack-rs
//!
//! A from-scratch Rust reproduction of the Spack package manager
//! (Gamblin et al., *The Spack Package Manager: Bringing Order to HPC
//! Software Chaos*, SC '15): parameterized package templates, the
//! recursive spec syntax, versioned virtual dependencies, greedy
//! fixed-point concretization, hashed install layouts with sub-DAG
//! sharing, and an isolated build environment with RPATH-injecting
//! compiler wrappers — plus a simulated build substrate that regenerates
//! every table and figure of the paper's evaluation (see EXPERIMENTS.md).
//!
//! The crates compose bottom-up:
//!
//! * [`spec`] — versions, the Fig. 3 grammar, concrete DAGs, hashing;
//! * [`package`] — the package DSL, `@when` multimethods, repositories;
//! * [`concretize`] — provider index, policies, the Fig. 6 algorithm;
//! * [`store`] — layouts (Table 1), install database (Fig. 9), views,
//!   modules, extensions (§4.2);
//! * [`buildenv`] — wrappers (§3.5.2), isolation (§3.5.1), the simulated
//!   filesystem and build systems (Figs. 10/11), parallel installs;
//! * [`repo`] — ~260 builtin packages including the mpileaks and ARES
//!   stacks.
//!
//! [`Session`] bundles them into the two-line happy path:
//!
//! ```
//! use spack_rs::Session;
//!
//! let mut session = Session::new();
//! let report = session.install("libelf@0.8.12:").unwrap();
//! assert_eq!(report.builds.len(), 1);
//! ```

pub use spack_audit as audit;
pub use spack_buildenv as buildenv;
pub use spack_concretize as concretize;
pub use spack_package as package;
pub use spack_repo_builtin as repo;
pub use spack_spec as spec;
pub use spack_store as store;

use parking_lot::Mutex;
use spack_buildenv::{install_dag, InstallOptions, InstallReport};
use spack_concretize::{ConcretizeError, Concretizer, Config};
use spack_package::RepoStack;
use spack_spec::{ConcreteDag, DagHashes, Spec, SpecError};
use spack_store::{ConflictPolicy, Database, ExtensionRegistry, FsTree, StoreError};

/// Errors from the high-level session API.
#[derive(Debug)]
pub enum Error {
    /// Spec text failed to parse.
    Spec(SpecError),
    /// Concretization failed.
    Concretize(ConcretizeError),
    /// The (simulated) build failed.
    Install(spack_buildenv::InstallError),
    /// A store operation (uninstall, view, activation) failed.
    Store(StoreError),
    /// The request matched no installed spec.
    NotInstalled(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Spec(e) => write!(f, "{e}"),
            Error::Concretize(e) => write!(f, "{e}"),
            Error::Install(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "{e}"),
            Error::NotInstalled(s) => write!(f, "`{s}` is not installed"),
        }
    }
}

impl std::error::Error for Error {}

/// A ready-to-use Spack instance: builtin repository, a default site
/// configuration (gcc/intel/clang toolchains, mvapich2-first MPI policy),
/// and an in-memory install database.
pub struct Session {
    repos: RepoStack,
    config: Config,
    db: Mutex<Database>,
    options: InstallOptions,
    fs: Mutex<FsTree>,
    extensions: Mutex<ExtensionRegistry>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session with the builtin repository and default configuration.
    pub fn new() -> Session {
        Session::with_config(Session::default_config())
    }

    /// The default site configuration used by [`Session::new`].
    pub fn default_config() -> Config {
        let mut c = Config::new();
        c.register_compiler("gcc", "4.9.3", &[]);
        c.register_compiler("gcc", "4.7.4", &[]);
        c.register_compiler("intel", "14.0.4", &[]);
        c.register_compiler("intel", "15.0.1", &[]);
        c.register_compiler("clang", "3.6.2", &[]);
        c.register_compiler("pgi", "15.4", &[]);
        c.register_compiler("xl", "12.1", &["bgq"]);
        c.push_scope_text(
            "defaults",
            "arch = linux-x86_64\n\
             compiler = gcc\n\
             providers mpi = mvapich2,openmpi,mpich\n\
             providers blas = netlib-blas\n\
             providers lapack = netlib-lapack\n\
             providers fft = fftw\n",
        )
        .expect("valid default config");
        c
    }

    /// A session with a custom configuration.
    pub fn with_config(config: Config) -> Session {
        Session {
            repos: spack_repo_builtin::repo_stack(),
            config,
            db: Mutex::new(Database::new("/spack/opt")),
            options: InstallOptions::default(),
            fs: Mutex::new(FsTree::new()),
            extensions: Mutex::new(ExtensionRegistry::new()),
        }
    }

    /// The repository stack.
    pub fn repos(&self) -> &RepoStack {
        &self.repos
    }

    /// Statically audit every visible package recipe (and the
    /// cross-package dependency graph) for defects: unknown dependency
    /// names, unprovidable virtuals, unsatisfiable version constraints,
    /// dead `when=` conditions, cycles, and more. See [`audit`] for the
    /// diagnostic-code table.
    pub fn audit(&self) -> spack_audit::AuditReport {
        spack_audit::audit_repo(&self.repos)
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Mutable configuration access (add scopes, compilers).
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// Mutable install options (jobs, wrappers, stage filesystem).
    pub fn options_mut(&mut self) -> &mut InstallOptions {
        &mut self.options
    }

    /// The install database.
    pub fn database(&self) -> parking_lot::MutexGuard<'_, Database> {
        self.db.lock()
    }

    /// Concretize a spec string into a concrete DAG (Fig. 6/7).
    pub fn concretize(&self, spec: &str) -> Result<ConcreteDag, Error> {
        let request = Spec::parse(spec).map_err(Error::Spec)?;
        Concretizer::new(&self.repos, &self.config)
            .concretize(&request)
            .map_err(Error::Concretize)
    }

    /// Concretize and install (simulated), reusing existing sub-DAGs.
    pub fn install(&mut self, spec: &str) -> Result<InstallReport, Error> {
        let dag = self.concretize(spec)?;
        self.install_concrete(&dag)
    }

    /// Install an already-concretized DAG, materializing each new
    /// prefix's file tree in the session store filesystem so views and
    /// extension activation operate on real content.
    pub fn install_concrete(&mut self, dag: &ConcreteDag) -> Result<InstallReport, Error> {
        let report =
            install_dag(dag, &self.repos, &self.db, &self.options).map_err(Error::Install)?;
        let hashes = DagHashes::compute(dag);
        let mut fs = self.fs.lock();
        let db = self.db.lock();
        for id in dag.topo_order() {
            let node = dag.node(id);
            let Some(rec) = db.get(hashes.node_hash(id)) else {
                continue;
            };
            let prefix = &rec.prefix;
            if fs.exists(&format!("{prefix}/.spack/spec")) {
                continue; // already materialized
            }
            fs.write_file(&format!("{prefix}/.spack/spec"), rec.specfile.len() as u64);
            // An executable, a library, and headers — the canonical prefix
            // shape module files and wrappers expect.
            fs.write_file(&format!("{prefix}/bin/{}", node.name), 64 * 1024);
            fs.write_file(&format!("{prefix}/lib/lib{}.so", node.name), 256 * 1024);
            fs.write_file(&format!("{prefix}/include/{}.h", node.name), 4 * 1024);
            // Extensions install their modules under the interpreter's
            // site-packages-relative layout (§4.2).
            if let Some(pkg) = self.repos.get(&node.name) {
                if pkg.extends.as_deref() == Some("python") {
                    let module = node.name.strip_prefix("py-").unwrap_or(&node.name);
                    fs.write_file(
                        &format!("{prefix}/lib/python2.7/site-packages/{module}/__init__.py"),
                        8 * 1024,
                    );
                }
            }
        }
        Ok(report)
    }

    /// The session store filesystem (prefix contents, views, activations).
    pub fn filesystem(&self) -> parking_lot::MutexGuard<'_, FsTree> {
        self.fs.lock()
    }

    fn find_installed(&self, spec: &str) -> Result<(String, String, String), Error> {
        let request = Spec::parse(spec).map_err(Error::Spec)?;
        let db = self.db.lock();
        let rec = db
            .query(&request)
            .first()
            .copied()
            .ok_or_else(|| Error::NotInstalled(spec.to_string()))?;
        Ok((
            rec.hash.clone(),
            rec.prefix.clone(),
            rec.dag.root_node().name.clone(),
        ))
    }

    /// Activate an installed extension into an installed extendable
    /// package (§4.2): `session.activate("py-numpy", "python")`.
    pub fn activate(&mut self, extension: &str, target: &str) -> Result<usize, Error> {
        let (ext_hash, ext_prefix, ext_name) = self.find_installed(extension)?;
        let (tgt_hash, tgt_prefix, _) = self.find_installed(target)?;
        let pkg = self
            .repos
            .get(&ext_name)
            .ok_or_else(|| Error::NotInstalled(ext_name.clone()))?;
        if pkg.extends.is_none() {
            return Err(Error::Store(StoreError::NotAnExtension(ext_name)));
        }
        self.extensions
            .lock()
            .activate(
                &mut self.fs.lock(),
                &tgt_hash,
                &tgt_prefix,
                &ext_hash,
                &ext_prefix,
                ConflictPolicy::Error,
            )
            .map_err(Error::Store)
    }

    /// Deactivate a previously activated extension.
    pub fn deactivate(&mut self, extension: &str, target: &str) -> Result<usize, Error> {
        let (ext_hash, _, _) = self.find_installed(extension)?;
        let (tgt_hash, _, _) = self.find_installed(target)?;
        self.extensions
            .lock()
            .deactivate(&mut self.fs.lock(), &tgt_hash, &ext_hash)
            .map_err(Error::Store)
    }
}
