#!/usr/bin/env bash
# CI gate for spack-rs. Run locally before pushing; the GitHub workflow
# in .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check
# The repository must stay audit-clean: exit code is the error count.
run cargo run -q -p spack-cli --bin spack-rs -- audit

echo "==> CI green"
