#!/usr/bin/env bash
# CI gate for spack-rs. Run locally before pushing; the GitHub workflow
# in .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check
# The repository must stay audit-clean: exit code is the error count.
run cargo run -q -p spack-cli --bin spack-rs -- audit
# Chaos determinism gate: the fault-injected sweep must reproduce the
# checked-in golden file byte for byte on any machine.
echo "==> chaos_sweep determinism gate"
cargo run -q --release -p spack-bench --bin chaos_sweep > target/chaos_sweep.ci.txt
run diff -u results/chaos_sweep.txt target/chaos_sweep.ci.txt

echo "==> CI green"
