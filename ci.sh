#!/usr/bin/env bash
# CI gate for spack-rs. Run locally before pushing; the GitHub workflow
# in .github/workflows/ci.yml runs the same subcommands as separate
# matrix jobs.
#
#   ./ci.sh lint     cargo fmt + clippy
#   ./ci.sh test     release build + full workspace test suite + audit
#   ./ci.sh golden   regenerate every results/*.txt and diff, then the
#                    parallel-install determinism stress
#   ./ci.sh all      everything above (the default)
#
# Every step prints its elapsed time, and a failing golden names the
# bench binary that produced it plus the command to regenerate.
set -euo pipefail
cd "$(dirname "$0")"

# run <label> <cmd...> — echo, time, and fail with the label on error.
run() {
    local label=$1
    shift
    echo "==> ${label}: $*"
    local start=$SECONDS
    if ! "$@"; then
        echo "!!! ${label} failed after $((SECONDS - start))s" >&2
        return 1
    fi
    echo "    ${label}: $((SECONDS - start))s"
}

# Benches whose measured wall-clock columns are stripped via --golden so
# the checked-in file is byte-stable on any machine.
golden_flag() {
    case "$1" in
    ablations | fig8_concretization | fig8_synthetic) echo "--golden" ;;
    *) echo "" ;;
    esac
}

lint() {
    run "fmt" cargo fmt --check
    run "clippy" cargo clippy --workspace --all-targets -- -D warnings
}

test_suite() {
    run "build" cargo build --release
    run "test" cargo test -q --workspace
    # The repository must stay audit-clean: exit code is the error count.
    run "audit" cargo run -q -p spack-cli --bin spack-rs -- audit
}

# Regenerate every golden in results/ from its bench binary and diff it
# byte for byte. A mismatch names the failing bench and the regeneration
# command, so the source of the drift is never a mystery.
golden_check() {
    run "golden-build" cargo build -q --release -p spack-bench
    local failed=0
    for golden in results/*.txt; do
        local bench flag start
        bench=$(basename "$golden" .txt)
        flag=$(golden_flag "$bench")
        start=$SECONDS
        # shellcheck disable=SC2086  # $flag is intentionally word-split
        if ! cargo run -q --release -p spack-bench --bin "$bench" -- $flag \
            >"target/${bench}.ci.txt"; then
            echo "!!! golden-check: bench \`${bench}\` crashed" >&2
            failed=1
            continue
        fi
        if ! diff -u "$golden" "target/${bench}.ci.txt"; then
            echo "!!! golden-check: \`${bench}\` drifted from ${golden}." >&2
            echo "    regenerate: cargo run --release -p spack-bench --bin ${bench} -- ${flag} > ${golden}" >&2
            failed=1
        else
            echo "    golden ${bench}: $((SECONDS - start))s"
        fi
    done
    return "$failed"
}

# Determinism stress: the parallel frontier scheduler must produce a
# byte-identical install transcript (a) across two fresh runs at the
# same jobs level under chaos, and (b) across every jobs level.
sched_stress() {
    run "stress-build" cargo build -q --release -p spack-cli
    local bin=target/release/spack-rs
    local args=(install --keep-going --retries 2 --mirrors 2 --chaos 42:0.2 ares)
    local homes=() out
    for tag in j8a j8b j1 j2 j4; do
        homes+=("$(mktemp -d "${TMPDIR:-/tmp}/spack-ci-${tag}.XXXXXX")")
    done
    trap 'rm -rf "${homes[@]}"' RETURN
    local jobs=(8 8 1 2 4)
    for i in "${!homes[@]}"; do
        out="${homes[$i]}/transcript.txt"
        # Chaos leaves the install incomplete by design: exit 1 is fine,
        # anything else is a crash.
        SPACK_RS_HOME="${homes[$i]}" "$bin" install --jobs "${jobs[$i]}" \
            "${args[@]:1}" >"$out" || [ $? -eq 1 ]
    done
    if ! diff -u "${homes[0]}/transcript.txt" "${homes[1]}/transcript.txt"; then
        echo "!!! sched-stress: two --jobs 8 chaos runs diverged" >&2
        return 1
    fi
    for i in 2 3 4; do
        if ! diff -u "${homes[0]}/transcript.txt" "${homes[$i]}/transcript.txt"; then
            echo "!!! sched-stress: --jobs ${jobs[$i]} diverged from --jobs 8" >&2
            return 1
        fi
    done
    echo "    sched-stress: byte-identical across runs and jobs {1,2,4,8}"
}

golden() {
    golden_check
    run "sched-stress" sched_stress
}

all() {
    lint
    test_suite
    golden
}

case "${1:-all}" in
lint) lint ;;
test) test_suite ;;
golden) golden ;;
all) all ;;
*)
    echo "usage: $0 [lint|test|golden|all]" >&2
    exit 2
    ;;
esac

echo "==> CI green (${1:-all})"
